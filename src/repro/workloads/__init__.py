"""Query and update workload generators for the experiments.

Two layers: the Section VII-B pair/update samplers (``pairs.py``,
``updates.py``) used by the original experiments, and the streaming
engine (``streams.py`` + ``runner.py``) that drives the hot-cache and
adaptive-tuning benchmarks with ordered, seeded, read/write op streams.
"""

from .pairs import common_neighbor_pairs, mixed_pairs, random_pairs
from .runner import RunResult, run_stream
from .streams import (
    OP_DELETE,
    OP_INSERT,
    OP_PROBE,
    STREAM_KINDS,
    WorkloadStream,
    churn_stream,
    edge_stream,
    make_stream,
    mixed_stream,
    uniform_stream,
    zipfian_stream,
)
from .updates import sample_deletions, sample_insertions

__all__ = [
    "random_pairs",
    "common_neighbor_pairs",
    "mixed_pairs",
    "sample_deletions",
    "sample_insertions",
    "OP_PROBE",
    "OP_INSERT",
    "OP_DELETE",
    "WorkloadStream",
    "STREAM_KINDS",
    "make_stream",
    "uniform_stream",
    "zipfian_stream",
    "edge_stream",
    "churn_stream",
    "mixed_stream",
    "RunResult",
    "run_stream",
]
