"""Query and update workload generators for the experiments."""

from .pairs import common_neighbor_pairs, mixed_pairs, random_pairs
from .updates import sample_deletions, sample_insertions

__all__ = [
    "random_pairs",
    "common_neighbor_pairs",
    "mixed_pairs",
    "sample_deletions",
    "sample_insertions",
]
