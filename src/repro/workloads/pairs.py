"""Edge-query workload generators — Section VII-B.

The paper evaluates on two pair distributions:

- **RandPair** — uniformly random vertex pairs.  Most are far apart,
  so even naive VEND ideas detect them (Fig. 7's small gaps).
- **CommPair** — pairs sharing at least one common neighbor (distance
  ≤ 2), the locality pattern of triangle counting and subgraph
  matching, where solution quality separates (Fig. 8).
"""

from __future__ import annotations

import random

from ..graph import Graph

__all__ = ["random_pairs", "common_neighbor_pairs", "mixed_pairs"]


def random_pairs(graph: Graph, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """``count`` uniformly random distinct-vertex pairs (with repeats)."""
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise ValueError("need at least two vertices to form pairs")
    rng = random.Random(seed)
    pairs = []
    n = len(vertices)
    while len(pairs) < count:
        u = vertices[rng.randrange(n)]
        v = vertices[rng.randrange(n)]
        if u != v:
            pairs.append((u, v))
    return pairs


def common_neighbor_pairs(graph: Graph, count: int,
                          seed: int = 0) -> list[tuple[int, int]]:
    """``count`` pairs that share at least one common neighbor.

    Sampling: pick a pivot vertex with degree >= 2 (weighted by its
    presence in the vertex list), then two distinct neighbors of it —
    the sampled pair is at distance <= 2 by construction.
    """
    pivots = [v for v in graph.vertices() if graph.degree(v) >= 2]
    if not pivots:
        raise ValueError("graph has no vertex with two neighbors")
    rng = random.Random(seed)
    pairs = []
    while len(pairs) < count:
        pivot = pivots[rng.randrange(len(pivots))]
        u, v = rng.sample(graph.sorted_neighbors(pivot), 2)
        pairs.append((u, v))
    return pairs


def mixed_pairs(graph: Graph, count: int, local_fraction: float = 0.5,
                seed: int = 0) -> list[tuple[int, int]]:
    """A blend of RandPair and CommPair traffic (example workloads)."""
    if not 0.0 <= local_fraction <= 1.0:
        raise ValueError("local_fraction must be within [0, 1]")
    local = round(count * local_fraction)
    pairs = common_neighbor_pairs(graph, local, seed=seed)
    pairs += random_pairs(graph, count - local, seed=seed + 1)
    rng = random.Random(seed + 2)
    rng.shuffle(pairs)
    return pairs
