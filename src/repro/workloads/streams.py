"""Seeded streaming workloads: the traffic the hot cache must survive.

The Section VII-B pair samplers (:mod:`~repro.workloads.pairs`) answer
"which pairs", one batch at a time.  A *stream* answers the harder
question a cache and its tuner face: which pairs, **in what order,
mixed with which writes, drifting how fast**.  Every generator here
returns a :class:`WorkloadStream` — three parallel numpy arrays
``(kinds, us, vs)`` — and is deterministic in ``seed`` alone: numpy
``default_rng`` end to end, vertices taken in sorted order, no Python
``hash()`` anywhere, so the same seed yields the byte-identical stream
under any ``PYTHONHASHSEED`` and on any run.

The roster maps one-to-one onto cache failure modes:

- :func:`uniform_stream` — no hot set at all; an admission policy that
  churns on this is broken (the TinyLFU floor exists for exactly this).
- :func:`zipfian_stream` — the headline: a tunable-``skew`` hot set,
  optional ``burst_len`` temporal clustering and ``rotate_every``
  drift (the hot set slides along a seeded rank permutation, so a
  frequency estimate that never decays goes stale).
- :func:`edge_stream` — adversarial probes of **real edges only**:
  every probe is a positive, the NDF filters nothing, and the full
  probe volume lands on storage decode.
- :func:`churn_stream` — probe runs alternating with write storms
  (inserts of fresh non-edges, deletes of live edges, tracked against
  a shadow edge set so every write is valid when it executes); each
  storm invalidates cached blobs and forces re-warm.
- :func:`mixed_stream` — fine-grained interleaving of Zipfian probes
  and writes at a controlled ``write_ratio``; no long probe runs to
  batch, the worst case for batch-oriented serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph import Graph

__all__ = [
    "OP_PROBE",
    "OP_INSERT",
    "OP_DELETE",
    "WorkloadStream",
    "uniform_stream",
    "zipfian_stream",
    "edge_stream",
    "churn_stream",
    "mixed_stream",
    "make_stream",
    "STREAM_KINDS",
]

OP_PROBE = 0
OP_INSERT = 1
OP_DELETE = 2

_OP_NAMES = {OP_PROBE: "probe", OP_INSERT: "insert", OP_DELETE: "delete"}


@dataclass(frozen=True)
class WorkloadStream:
    """An ordered op stream: ``kinds[i]`` applied to ``(us[i], vs[i])``.

    Immutable-by-convention; generators hand out freshly built arrays.
    ``meta`` records the generator's parameters for reports.
    """

    name: str
    kinds: np.ndarray
    us: np.ndarray
    vs: np.ndarray
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.kinds)

    def op_counts(self) -> dict[str, int]:
        """``{"probe": n, "insert": n, "delete": n}`` totals."""
        counts = np.bincount(self.kinds, minlength=3)
        return {_OP_NAMES[k]: int(counts[k]) for k in _OP_NAMES}

    def segments(self):
        """Yield ``(kind, start, end)`` runs of consecutive same-kind ops.

        The runner batches each probe run into vectorized
        ``has_edge_batch`` calls; runs are the unit of batching.
        """
        kinds = self.kinds
        n = len(kinds)
        if n == 0:
            return
        bounds = np.flatnonzero(np.diff(kinds)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
        for start, end in zip(starts.tolist(), ends.tolist()):
            yield int(kinds[start]), start, end

    def checksum(self) -> str:
        """Content digest for cross-run determinism assertions."""
        import hashlib
        h = hashlib.sha256()
        h.update(self.kinds.astype(np.uint8).tobytes())
        h.update(self.us.astype(np.int64).tobytes())
        h.update(self.vs.astype(np.int64).tobytes())
        return h.hexdigest()


def _stored_vertices(graph: Graph) -> np.ndarray:
    verts = np.asarray(sorted(graph.vertices()), dtype=np.int64)
    if len(verts) < 2:
        raise ValueError("need at least two vertices for a workload")
    return verts


def _zipf_indices(n: int, universe: int, skew: float,
                  rng: np.random.Generator) -> np.ndarray:
    """``n`` bounded-Zipf(skew) draws over ``range(universe)``.

    Inverse-CDF sampling: cumulative rank weights, one ``searchsorted``
    per batch.  ``skew=0`` degenerates to uniform.
    """
    if skew <= 0.0:
        return rng.integers(0, universe, n)
    weights = np.arange(1, universe + 1, dtype=np.float64) ** -skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(n), side="left")


def uniform_stream(graph: Graph, n: int, seed: int = 0) -> WorkloadStream:
    """``n`` uniform probes over stored vertex pairs (no hot set)."""
    verts = _stored_vertices(graph)
    rng = np.random.default_rng(seed)
    us = verts[rng.integers(0, len(verts), n)]
    vs = verts[rng.integers(0, len(verts), n)]
    return WorkloadStream("uniform", np.zeros(n, dtype=np.uint8), us, vs,
                          {"seed": seed, "n": n})


def zipfian_stream(graph: Graph, n: int, skew: float = 1.0, seed: int = 0,
                   burst_len: int = 1,
                   rotate_every: int = 0) -> WorkloadStream:
    """``n`` probes whose left endpoints follow bounded Zipf(``skew``).

    Ranks are assigned by a seeded permutation of the sorted vertex
    array, so "which vertices are hot" is itself deterministic in the
    seed and uncorrelated with vertex IDs or degrees.

    burst_len:
        Temporal clustering: keys are drawn for every ``burst_len``-th
        slot and repeated to fill the burst, so a hot key's accesses
        arrive back-to-back instead of spread through the stream.
    rotate_every:
        Hot-set drift: after every ``rotate_every`` ops the rank
        permutation rolls by one ``burst_len``-independent step, so
        rank 0 moves to a new vertex — a time-varying graph workload
        in the sense of the tuner's decay window.
    """
    if burst_len < 1:
        raise ValueError("burst_len must be >= 1")
    verts = _stored_vertices(graph)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(verts))
    draws = -(-n // burst_len)  # ceil
    idx = np.repeat(_zipf_indices(draws, len(verts), skew, rng),
                    burst_len)[:n]
    if rotate_every > 0:
        # Rank r at op t maps to perm[(r + t // rotate_every) % V]:
        # the whole hot set slides one slot per rotation period.
        shift = (np.arange(n, dtype=np.int64) // rotate_every) % len(verts)
        idx = (idx + shift) % len(verts)
    us = verts[perm[idx]]
    vs = verts[rng.integers(0, len(verts), n)]
    return WorkloadStream(
        "zipfian", np.zeros(n, dtype=np.uint8), us, vs,
        {"seed": seed, "n": n, "skew": skew, "burst_len": burst_len,
         "rotate_every": rotate_every})


def edge_stream(graph: Graph, n: int, seed: int = 0,
                skew: float = 0.0) -> WorkloadStream:
    """``n`` probes of **existing** edges only (the all-positive adversary).

    Every verdict is True, the NDF filters nothing, and the entire
    stream pays a storage lookup — the worst case the paper's filter
    cannot help with and the hot cache exists to absorb.  ``skew``
    optionally concentrates traffic on a Zipf-weighted subset of edges.
    """
    edges = np.asarray(sorted(graph.edges()), dtype=np.int64)
    if len(edges) == 0:
        raise ValueError("graph has no edges to probe")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(edges))
    idx = perm[_zipf_indices(n, len(edges), skew, rng)]
    flip = rng.random(n) < 0.5
    us = np.where(flip, edges[idx, 1], edges[idx, 0])
    vs = np.where(flip, edges[idx, 0], edges[idx, 1])
    return WorkloadStream("edges", np.zeros(n, dtype=np.uint8), us, vs,
                          {"seed": seed, "n": n, "skew": skew})


class _ShadowEdges:
    """Tracks the live edge set so generated writes are always valid.

    Inserts draw fresh non-edges, deletes draw currently live edges —
    checked against this shadow copy, which replays the stream's own
    writes, so the emitted ops hold regardless of execution order
    relative to other streams.
    """

    def __init__(self, graph: Graph, rng: np.random.Generator):
        self._verts = _stored_vertices(graph)
        self._rng = rng
        self._live = [tuple(sorted(e)) for e in sorted(graph.edges())]
        self._index = {e: i for i, e in enumerate(self._live)}

    def draw_insert(self) -> tuple[int, int]:
        verts, rng = self._verts, self._rng
        while True:
            u = int(verts[rng.integers(0, len(verts))])
            v = int(verts[rng.integers(0, len(verts))])
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in self._index:
                continue
            self._index[edge] = len(self._live)
            self._live.append(edge)
            return edge

    def draw_delete(self) -> tuple[int, int] | None:
        if not self._live:
            return None
        pos = int(self._rng.integers(0, len(self._live)))
        edge = self._live[pos]
        last = self._live[-1]
        self._live[pos] = last
        self._index[last] = pos
        self._live.pop()
        del self._index[edge]
        return edge


def churn_stream(graph: Graph, n: int, seed: int = 0, skew: float = 1.0,
                 probe_len: int = 2048,
                 storm_len: int = 256) -> WorkloadStream:
    """Probe runs alternating with write storms (the churn adversary).

    The stream cycles ``probe_len`` Zipfian probes then a ``storm_len``
    burst of writes (alternating inserts of fresh non-edges and
    deletes of live edges).  Each storm invalidates hot-cache entries
    for the touched vertices and moves the mutation counter the tuner
    watches — the workload that separates hooks from rebuild
    maintenance.
    """
    if probe_len < 1 or storm_len < 1:
        raise ValueError("probe_len and storm_len must be >= 1")
    verts = _stored_vertices(graph)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(verts))
    shadow = _ShadowEdges(graph, rng)
    kinds = np.zeros(n, dtype=np.uint8)
    us = np.zeros(n, dtype=np.int64)
    vs = np.zeros(n, dtype=np.int64)
    pos = 0
    while pos < n:
        run = min(probe_len, n - pos)
        idx = _zipf_indices(run, len(verts), skew, rng)
        us[pos:pos + run] = verts[perm[idx]]
        vs[pos:pos + run] = verts[rng.integers(0, len(verts), run)]
        pos += run
        storm = min(storm_len, n - pos)
        for i in range(storm):
            if i % 2 == 0:
                edge = shadow.draw_insert()
                kinds[pos] = OP_INSERT
            else:
                edge = shadow.draw_delete()
                if edge is None:
                    edge = shadow.draw_insert()
                    kinds[pos] = OP_INSERT
                else:
                    kinds[pos] = OP_DELETE
            us[pos], vs[pos] = edge
            pos += 1
    return WorkloadStream(
        "churn", kinds, us, vs,
        {"seed": seed, "n": n, "skew": skew, "probe_len": probe_len,
         "storm_len": storm_len})


def mixed_stream(graph: Graph, n: int, seed: int = 0, skew: float = 1.0,
                 write_ratio: float = 0.05) -> WorkloadStream:
    """Fine-grained read/write interleaving at ``write_ratio``.

    Unlike :func:`churn_stream`'s long runs, writes land anywhere, so
    probe runs are short — the worst case for batch-serving layers and
    the closest analogue of online transactional traffic.
    """
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be within [0, 1]")
    verts = _stored_vertices(graph)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(verts))
    shadow = _ShadowEdges(graph, rng)
    writes = rng.random(n) < write_ratio
    idx = _zipf_indices(n, len(verts), skew, rng)
    kinds = np.zeros(n, dtype=np.uint8)
    us = verts[perm[idx]].copy()
    vs = verts[rng.integers(0, len(verts), n)]
    toggle = True
    for pos in np.flatnonzero(writes).tolist():
        if toggle:
            edge = shadow.draw_insert()
            kinds[pos] = OP_INSERT
        else:
            edge = shadow.draw_delete()
            if edge is None:
                edge = shadow.draw_insert()
                kinds[pos] = OP_INSERT
            else:
                kinds[pos] = OP_DELETE
        us[pos], vs[pos] = edge
        toggle = not toggle
    return WorkloadStream(
        "mixed", kinds, us, vs,
        {"seed": seed, "n": n, "skew": skew, "write_ratio": write_ratio})


#: Named constructors for the CLI / bench (`--workload <kind>`).
STREAM_KINDS = {
    "random": uniform_stream,
    "zipfian": zipfian_stream,
    "edges": edge_stream,
    "churn": churn_stream,
    "mixed": mixed_stream,
}


def make_stream(kind: str, graph: Graph, n: int, seed: int = 0,
                **kwargs) -> WorkloadStream:
    """Build a stream by registry name (raises on unknown kinds)."""
    try:
        ctor = STREAM_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown workload {kind!r}; expected one of "
                         f"{sorted(STREAM_KINDS)}") from None
    return ctor(graph, n, seed=seed, **kwargs)
