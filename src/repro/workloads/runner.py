"""Stream execution against a :class:`~repro.apps.database.VendGraphDB`.

The runner is the piece that turns a :class:`~repro.workloads.streams.
WorkloadStream` into actual traffic, preserving the two properties the
benchmarks lean on:

- **Batching follows the stream, not the runner.**  Consecutive probe
  ops are served through vectorized ``has_edge_batch`` calls (chunked
  at ``batch_size``); a write op ends the run.  A churn stream with
  2048-probe runs gets long batches, a mixed stream gets short ones —
  the runner never reorders across a write, so verdicts are exactly
  what a serial client would have seen.
- **Maintenance mode is pluggable.**  With no tuner (or the tuner
  recommending ``"hooks"``), writes go through the database facade and
  the VEND index is maintained incrementally per edge.  When an
  attached :class:`~repro.storage.tuning.AdaptiveTuner` recommends
  ``"rebuild"`` (measured update rate above threshold), writes land
  directly in storage and the index is re-encoded **once, before the
  next probe run** — deferred batch maintenance that trades staleness
  inside a write storm (where no probes execute anyway) for not paying
  per-edge reconstruction costs.  Either way every probe sees a
  correct index.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .streams import OP_DELETE, OP_INSERT, OP_PROBE, WorkloadStream

__all__ = ["RunResult", "run_stream"]


@dataclass
class RunResult:
    """What one stream execution did and answered."""

    stream: str
    probes: int = 0
    positives: int = 0
    inserts: int = 0
    deletes: int = 0
    batches: int = 0
    rebuilds: int = 0
    tuner_ticks: int = 0
    elapsed: float = 0.0
    probe_elapsed: float = 0.0
    verdicts: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def probe_throughput(self) -> float:
        """Probes answered per second of probe wall time."""
        return self.probes / self.probe_elapsed if self.probe_elapsed else 0.0

    def verdict_checksum(self) -> str:
        """Digest of the verdict sequence (determinism assertions)."""
        import hashlib
        return hashlib.sha256(
            np.packbits(self.verdicts).tobytes()).hexdigest()


def run_stream(db, stream: WorkloadStream, batch_size: int = 4096,
               tuner=None, tick_every: int = 4) -> RunResult:
    """Execute ``stream`` against ``db`` and return the tally.

    tuner:
        Optional :class:`~repro.storage.tuning.AdaptiveTuner`.  It is
        ticked every ``tick_every`` probe batches (0 = never) and its
        ``maintenance_mode`` selects the write path as described in
        the module docstring.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    result = RunResult(stream=stream.name)
    verdict_chunks: list[np.ndarray] = []
    index_stale = False
    batches_since_tick = 0
    t0 = time.perf_counter()
    for kind, start, end in stream.segments():
        if kind == OP_PROBE:
            if index_stale:
                db.rebuild_index()
                result.rebuilds += 1
                index_stale = False
            p0 = time.perf_counter()
            for lo in range(start, end, batch_size):
                hi = min(lo + batch_size, end)
                verdicts = db.has_edge_batch(stream.us[lo:hi],
                                             stream.vs[lo:hi])
                verdict_chunks.append(np.asarray(verdicts, dtype=bool))
                result.probes += hi - lo
                result.positives += int(verdict_chunks[-1].sum())
                result.batches += 1
                batches_since_tick += 1
                if (tuner is not None and tick_every
                        and batches_since_tick >= tick_every):
                    tuner.tick()
                    result.tuner_ticks += 1
                    batches_since_tick = 0
            result.probe_elapsed += time.perf_counter() - p0
            continue
        rebuild_mode = (tuner is not None
                        and tuner.maintenance_mode == "rebuild")
        for i in range(start, end):
            u, v = int(stream.us[i]), int(stream.vs[i])
            if kind == OP_INSERT:
                if rebuild_mode:
                    db.store.insert_edge(u, v)
                    index_stale = True
                else:
                    db.add_edge(u, v)
                result.inserts += 1
            elif kind == OP_DELETE:
                if rebuild_mode:
                    db.store.delete_edge(u, v)
                    index_stale = True
                else:
                    db.remove_edge(u, v)
                result.deletes += 1
        if tuner is not None and tick_every:
            # A write storm moves the mutation counter; measure it
            # promptly so the mode reflects the storm, not its echo.
            tuner.tick()
            result.tuner_ticks += 1
            batches_since_tick = 0
    if index_stale:
        db.rebuild_index()
        result.rebuilds += 1
    result.elapsed = time.perf_counter() - t0
    result.verdicts = (np.concatenate(verdict_chunks) if verdict_chunks
                       else np.zeros(0, dtype=bool))
    return result
