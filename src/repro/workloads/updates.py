"""Update workloads for the maintenance experiment — Section VII-D.

The paper samples existing edges for deletion and random *new* edges
for insertion, evaluating the two groups independently.
"""

from __future__ import annotations

import random

from ..graph import Graph

__all__ = ["sample_deletions", "sample_insertions"]


def sample_deletions(graph: Graph, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """``count`` distinct existing edges, uniformly at random."""
    edges = list(graph.edges())
    rng = random.Random(seed)
    if count >= len(edges):
        rng.shuffle(edges)
        return edges
    return rng.sample(edges, count)


def sample_insertions(graph: Graph, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """``count`` distinct vertex pairs that are not currently edges."""
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        raise ValueError("need at least two vertices")
    max_new = len(vertices) * (len(vertices) - 1) // 2 - graph.num_edges
    if count > max_new:
        raise ValueError(f"only {max_new} non-edges exist, asked for {count}")
    rng = random.Random(seed)
    chosen: set[tuple[int, int]] = set()
    n = len(vertices)
    while len(chosen) < count:
        u = vertices[rng.randrange(n)]
        v = vertices[rng.randrange(n)]
        if u == v or graph.has_edge(u, v):
            continue
        chosen.add((u, v) if u < v else (v, u))
    return sorted(chosen)
