"""SIMD register model (the SSE stand-in).

The paper's hyb+ version leans on four 128-bit SSE primitives:
byte *shuffle* (``pshufb``) for Stream VByte decoding, lane *shift* +
*add* for differential-coding prefix sums, and lane *compare* for
membership tests and branch selection in the SS-tree (Section VI-B).

Python has no intrinsics, so this module models an s-lane register as a
numpy array and implements each primitive as one vectorized numpy
operation.  The data-parallel semantics — one logical instruction
transforming all lanes at once — is preserved exactly; only the clock
cycles differ, which DESIGN.md documents as a substitution.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SHUFFLE_ZERO",
    "lanes",
    "simd_compare_eq",
    "simd_compare_lt",
    "simd_compare_gt",
    "simd_any",
    "simd_count_lt",
    "simd_shuffle_bytes",
    "simd_prefix_sum",
]

#: Shuffle-mask index meaning "write a zero byte" (pshufb's 0x80+ range).
SHUFFLE_ZERO = 0xFF


def lanes(values, width: int | None = None) -> np.ndarray:
    """Load ``values`` into a register (uint32 lane array).

    When ``width`` is given the register is zero-padded to that many
    lanes, as a real load from a partial group would be.
    """
    reg = np.asarray(values, dtype=np.uint32)
    if width is not None:
        if len(reg) > width:
            raise ValueError(f"{len(reg)} values exceed register width {width}")
        if len(reg) < width:
            reg = np.concatenate(
                [reg, np.zeros(width - len(reg), dtype=np.uint32)]
            )
    return reg


def simd_compare_eq(register: np.ndarray, scalar: int) -> np.ndarray:
    """Lane-wise equality mask (``_mm_cmpeq_epi32``)."""
    return register == np.uint32(scalar)


def simd_compare_lt(register: np.ndarray, scalar: int) -> np.ndarray:
    """Lane-wise ``lane < scalar`` mask."""
    return register < np.uint32(scalar)


def simd_compare_gt(register: np.ndarray, scalar: int) -> np.ndarray:
    """Lane-wise ``lane > scalar`` mask."""
    return register > np.uint32(scalar)


def simd_any(mask: np.ndarray) -> bool:
    """Horizontal OR of a mask (``_mm_movemask_epi8 != 0``)."""
    return bool(mask.any())


def simd_count_lt(register: np.ndarray, scalar: int, active: int) -> int:
    """Number of the first ``active`` lanes strictly below ``scalar``.

    This is the branch-selection step of the SS-tree search: comparing
    the probe against all node keys at once and popcounting the mask
    gives the child index to descend into.
    """
    if active <= 0:
        return 0
    return int(simd_compare_lt(register[:active], scalar).sum())


def simd_shuffle_bytes(data: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Byte shuffle (``pshufb``): gather ``data[mask]`` with zero fill.

    ``mask`` entries equal to :data:`SHUFFLE_ZERO` produce a zero byte,
    matching the high-bit-set convention of the hardware instruction.
    """
    data = np.asarray(data, dtype=np.uint8)
    mask = np.asarray(mask, dtype=np.int64)
    out = np.zeros(len(mask), dtype=np.uint8)
    valid = mask != SHUFFLE_ZERO
    out[valid] = data[mask[valid]]
    return out


def simd_prefix_sum(register: np.ndarray) -> np.ndarray:
    """In-register inclusive prefix sum via log2(s) shift+add rounds.

    For deltas ``[x1, d2, d3, d4]`` this reconstructs the original keys
    ``[x1, x2, x3, x4]`` exactly as the paper's "shift and addition
    mechanism of SIMD" does: each round adds a lane-shifted copy of the
    register to itself.
    """
    reg = np.asarray(register, dtype=np.uint32).copy()
    shift = 1
    width = len(reg)
    while shift < width:
        shifted = np.zeros_like(reg)
        shifted[shift:] = reg[:-shift]
        reg = reg + shifted
        shift *= 2
    return reg
