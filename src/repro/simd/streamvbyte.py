"""Stream VByte codec (Lemire, Kurz & Rupp 2018) with delta coding.

hyb+ compresses each SS-tree node's ``s`` sorted keys with Stream
VByte: a *control byte* holds four 2-bit length codes (1–4 bytes per
integer) and the *data bytes* hold the integers back to back
(Section VI-B1).  Because one control byte describes exactly four
lanes, decoding a whole node is a single byte-shuffle: the control byte
indexes a 256-entry lookup table of ``pshufb`` masks that scatter the
variable-length bytes into four fixed 32-bit lanes.  Differential
coding (``{x1, x2-x1, x3-x2, x4-x3}``) shrinks the data bytes further
and is undone with an in-register shift+add prefix sum.

Both a scalar decoder and the SIMD (LUT + shuffle) decoder are
provided; the ablation benchmark compares them.

Adjacency-blob codec (DESIGN.md §12).  The storage tier compresses
each vertex's sorted ``uint32`` adjacency list with the same Stream
VByte primitives, but under a *blob* layout tuned for the power-law
degree distribution (half the vertices have degree <= 1, so fixed
per-blob headers dominate naive framing):

- ``BLOB_SINGLE`` — one value; the payload is just its minimal
  little-endian bytes (1-4), no control byte: the byte length *is* the
  payload length.
- ``BLOB_GROUP`` — 2..4 values; ``[control][data]`` with no count
  field: lane-length prefix sums are strictly increasing, so the
  payload size determines the value count uniquely.
- ``BLOB_MULTI`` — 5+ values; ``[LEB128 count][controls][data]``.
  The final partial group stores only its active lanes' bytes (no
  padding).

Unlike :func:`encode` (which restarts deltas at every group, one
SS-tree node at a time), blobs delta-code **continuously across the
whole list**: the first value is stored as a delta from zero and every
later value as the gap to its predecessor — the per-group restart
would re-widen one delta in four.  :func:`decode_blobs_packed` undoes
it for thousands of blobs at once with the shuffle LUT and one global
``cumsum``.
"""

from __future__ import annotations

import numpy as np

from .register import SHUFFLE_ZERO, simd_prefix_sum, simd_shuffle_bytes

__all__ = [
    "GROUP_SIZE",
    "encode_group",
    "encode",
    "decode",
    "decode_group_simd",
    "decode_group_scalar",
    "data_length",
    "BLOB_SINGLE",
    "BLOB_GROUP",
    "BLOB_MULTI",
    "blob_layout",
    "encode_blob",
    "blob_count",
    "decode_blob",
    "decode_blobs_packed",
    "leb128_encode",
    "leb128_decode",
]

#: Values per control byte — fixed at 4 by the 2-bits-per-length format.
GROUP_SIZE = 4


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute per-control-byte lane lengths, totals, shuffle masks."""
    lengths = np.zeros((256, GROUP_SIZE), dtype=np.int64)
    shuffle = np.full((256, 16), SHUFFLE_ZERO, dtype=np.uint8)
    for control in range(256):
        pos = 0
        for lane in range(GROUP_SIZE):
            size = ((control >> (2 * lane)) & 0b11) + 1
            lengths[control, lane] = size
            for byte in range(size):
                shuffle[control, lane * 4 + byte] = pos
                pos += 1
    totals = lengths.sum(axis=1)
    return lengths, totals, shuffle


_LANE_LENGTHS, _TOTAL_LENGTHS, _SHUFFLE_MASKS = _build_tables()
#: Per-control mask of shuffle positions that gather real data bytes
#: (False lanes are the zero-fill positions of the pshufb mask).
_SHUFFLE_KEEP = _SHUFFLE_MASKS != SHUFFLE_ZERO
#: Shuffle offsets with the zero-fill sentinel replaced by 0, so a bulk
#: gather stays in bounds; the fill lanes are zeroed via _SHUFFLE_KEEP.
_SHUFFLE_SAFE = np.where(_SHUFFLE_KEEP, _SHUFFLE_MASKS, 0).astype(np.uint8)


def _byte_length(value: int) -> int:
    """Bytes needed for a uint32 (at least 1, so zero still encodes)."""
    if value < 0 or value >> 32:
        raise ValueError(f"{value} does not fit in an unsigned 32-bit lane")
    return max(1, (value.bit_length() + 7) // 8)


def data_length(control_byte: int, active: int = GROUP_SIZE) -> int:
    """Data bytes consumed by the first ``active`` lanes of a group."""
    if not 0 <= active <= GROUP_SIZE:
        raise ValueError("active must be in 0..4")
    return int(_LANE_LENGTHS[control_byte, :active].sum())


def encode_group(values: list[int], delta: bool = False) -> tuple[int, bytes]:
    """Encode up to 4 integers into ``(control_byte, data_bytes)``.

    With ``delta=True`` the first value is stored raw and the rest as
    differences from their predecessor (values must be ascending).
    """
    if not 1 <= len(values) <= GROUP_SIZE:
        raise ValueError("a Stream VByte group holds 1..4 values")
    stored = list(values)
    if delta:
        for i in range(len(stored) - 1, 0, -1):
            if stored[i] < stored[i - 1]:
                raise ValueError("delta coding needs ascending values")
            stored[i] -= stored[i - 1]
    control = 0
    data = bytearray()
    for lane, value in enumerate(stored):
        size = _byte_length(value)
        control |= (size - 1) << (2 * lane)
        data += value.to_bytes(size, "little")
    return control, bytes(data)


def encode(values: list[int], delta: bool = False) -> tuple[bytes, bytes]:
    """Encode a full sequence as ``(control_bytes, data_bytes)``.

    Values are split into groups of 4; delta coding restarts at every
    group boundary (each SS-tree node is decoded independently).
    """
    controls = bytearray()
    data = bytearray()
    for start in range(0, len(values), GROUP_SIZE):
        control, chunk = encode_group(values[start:start + GROUP_SIZE], delta)
        controls.append(control)
        data += chunk
    return bytes(controls), bytes(data)


def decode_group_simd(control_byte: int, data: bytes, offset: int = 0,
                      delta: bool = False) -> np.ndarray:
    """Decode one group with the shuffle LUT (all 4 lanes at once).

    Returns a 4-lane uint32 register; lanes beyond the group's real
    value count decode as zero-padded garbage the caller must mask.
    """
    window = np.zeros(16, dtype=np.uint8)
    chunk = data[offset:offset + 16]
    window[:len(chunk)] = np.frombuffer(chunk, dtype=np.uint8)
    gathered = simd_shuffle_bytes(window, _SHUFFLE_MASKS[control_byte])
    register = gathered.view("<u4").copy()
    if delta:
        register = simd_prefix_sum(register)
    return register


def decode_group_scalar(control_byte: int, data: bytes, offset: int = 0,
                        delta: bool = False,
                        active: int = GROUP_SIZE) -> list[int]:
    """Reference scalar decoder (one lane at a time) for the ablation."""
    values: list[int] = []
    pos = offset
    for lane in range(active):
        size = int(_LANE_LENGTHS[control_byte, lane])
        values.append(int.from_bytes(data[pos:pos + size], "little"))
        pos += size
    if delta:
        for i in range(1, len(values)):
            values[i] += values[i - 1]
    return values


def decode(controls: bytes, data: bytes, count: int,
           delta: bool = False, simd: bool = True) -> list[int]:
    """Decode ``count`` integers previously produced by :func:`encode`."""
    values: list[int] = []
    offset = 0
    for group_index, control in enumerate(controls):
        remaining = count - group_index * GROUP_SIZE
        active = min(GROUP_SIZE, remaining)
        if active <= 0:
            break
        if simd:
            register = decode_group_simd(control, data, offset, delta)
            values.extend(int(x) for x in register[:active])
        else:
            values.extend(
                decode_group_scalar(control, data, offset, delta, active)
            )
        offset += data_length(control, active)
    return values


# ---------------------------------------------------------------------------
# Adjacency-blob codec (storage v3 records — see module docstring).
# ---------------------------------------------------------------------------

#: Blob layouts.  The storage layer maps each to its own record type, so
#: the layout never needs an in-payload tag byte.
BLOB_SINGLE = 1
BLOB_GROUP = 2
BLOB_MULTI = 3


def blob_layout(count: int) -> int:
    """Layout used for a blob of ``count`` values (``count >= 1``)."""
    if count < 1:
        raise ValueError("a blob holds at least one value")
    if count == 1:
        return BLOB_SINGLE
    if count <= GROUP_SIZE:
        return BLOB_GROUP
    return BLOB_MULTI


def leb128_encode(value: int) -> bytes:
    """Unsigned LEB128 (7 data bits per byte, high bit = continuation)."""
    if value < 0:
        raise ValueError("LEB128 encodes unsigned integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def leb128_decode(buf, pos: int = 0) -> tuple[int, int]:
    """Decode one LEB128 integer; returns ``(value, bytes_consumed)``."""
    value = 0
    for i in range(5):  # 5 bytes cover the 32-bit counts blobs can hold
        if pos + i >= len(buf):
            raise ValueError("truncated LEB128 varint")
        byte = buf[pos + i]
        value |= (byte & 0x7F) << (7 * i)
        if not byte & 0x80:
            return value, i + 1
    raise ValueError("LEB128 varint longer than 5 bytes")


def _leb128_lengths(counts: np.ndarray) -> np.ndarray:
    """Vectorized LEB128 byte lengths for positive ``counts``."""
    return (
        1
        + (counts >= 1 << 7).astype(np.int64)
        + (counts >= 1 << 14).astype(np.int64)
        + (counts >= 1 << 21).astype(np.int64)
        + (counts >= 1 << 28).astype(np.int64)
    )


def encode_blob(values) -> bytes:
    """Encode a non-decreasing uint32 sequence under its blob layout.

    Deltas run continuously across the whole sequence (first value is a
    delta from zero); the final partial group stores no padding bytes.
    Raises ``ValueError`` for empty input, values outside uint32, or a
    decreasing sequence.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("encode_blob needs a non-empty 1-d sequence")
    if int(arr.min()) < 0 or int(arr.max()) >> 32:
        raise ValueError("blob values must fit in unsigned 32-bit lanes")
    deltas = arr.copy()
    deltas[1:] -= arr[:-1]
    if arr.size > 1 and int(deltas[1:].min()) < 0:
        raise ValueError("delta coding needs a non-decreasing sequence")
    count = int(arr.size)
    if count == 1:
        return int(arr[0]).to_bytes(_byte_length(int(arr[0])), "little")
    byte_lens = (
        1
        + (deltas > 0xFF).astype(np.int64)
        + (deltas > 0xFFFF).astype(np.int64)
        + (deltas > 0xFFFFFF).astype(np.int64)
    )
    codes = np.zeros(((count + 3) // 4) * 4, dtype=np.int64)
    codes[:count] = byte_lens - 1
    controls = (
        codes[0::4] | codes[1::4] << 2 | codes[2::4] << 4 | codes[3::4] << 6
    ).astype(np.uint8)
    data = np.zeros(int(byte_lens.sum()), dtype=np.uint8)
    starts = np.zeros(count, dtype=np.int64)
    np.cumsum(byte_lens[:-1], out=starts[1:])
    for shift in range(4):
        lane = byte_lens > shift
        data[starts[lane] + shift] = (deltas[lane] >> (8 * shift)) & 0xFF
    if count <= GROUP_SIZE:
        return controls.tobytes() + data.tobytes()
    return leb128_encode(count) + controls.tobytes() + data.tobytes()


def blob_count(layout: int, payload: bytes) -> int:
    """Value count of an encoded blob, validating its structure.

    Used by log replay to reject malformed (torn) v3 payloads, and by
    the read path to size outputs without decoding.
    """
    size = len(payload)
    if layout == BLOB_SINGLE:
        if not 1 <= size <= 4:
            raise ValueError("single-value blob payload must be 1..4 bytes")
        return 1
    if layout == BLOB_GROUP:
        if size < 2:
            raise ValueError("group blob needs a control byte and data")
        prefix = np.cumsum(_LANE_LENGTHS[payload[0]])
        hits = np.flatnonzero(prefix == size - 1)
        if hits.size == 0 or hits[0] == 0:
            raise ValueError("group blob size matches no lane count in 2..4")
        return int(hits[0]) + 1
    if layout == BLOB_MULTI:
        count, header = leb128_decode(payload)
        if count <= GROUP_SIZE:
            raise ValueError("multi-group blob must hold 5+ values")
        groups = (count + 3) // 4
        if header + groups > size:
            raise ValueError("multi-group blob truncated in control bytes")
        controls = np.frombuffer(payload, dtype=np.uint8,
                                 count=groups, offset=header)
        lane_lens = _LANE_LENGTHS[controls]
        active = np.minimum(count - 4 * np.arange(groups, dtype=np.int64), 4)
        mask = np.arange(GROUP_SIZE)[None, :] < active[:, None]
        expected = header + groups + int((lane_lens * mask).sum())
        if expected != size:
            raise ValueError(
                f"multi-group blob is {size} bytes, layout implies {expected}"
            )
        return count
    raise ValueError(f"unknown blob layout {layout}")


def decode_blob(layout: int, payload: bytes) -> np.ndarray:
    """Decode one blob back to its uint32 values (via the bulk path)."""
    src = np.frombuffer(payload, dtype=np.uint8)
    count = blob_count(layout, payload)
    return decode_blobs_packed(
        src,
        np.zeros(1, dtype=np.int64),
        np.array([len(payload)], dtype=np.int64),
        np.array([count], dtype=np.int64),
        np.array([layout], dtype=np.int64),
    )


def decode_blobs_packed(src: np.ndarray, offsets: np.ndarray,
                        sizes: np.ndarray, counts: np.ndarray,
                        layouts: np.ndarray) -> np.ndarray:
    """Bulk-decode many blobs packed in one uint8 buffer.

    ``src`` holds every payload; blob ``i`` occupies
    ``src[offsets[i]:offsets[i]+sizes[i]]`` with ``counts[i]`` values
    under ``layouts[i]``.  Returns all values concatenated in blob
    order as one uint32 array — a single shuffle-LUT gather plus one
    global cumsum, no per-blob Python loop.

    Callers must pass counts from :func:`blob_count` (or the storage
    index); structure is *not* revalidated here.
    """
    src = np.asarray(src, dtype=np.uint8)
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    layouts = np.asarray(layouts, dtype=np.int64)
    total = int(counts.sum())
    out = np.empty(total, dtype=np.uint32)
    value_start = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=value_start[1:])

    single = layouts == BLOB_SINGLE
    if single.any():
        s_off = offsets[single]
        s_size = sizes[single]
        vals = np.zeros(s_off.size, dtype=np.int64)
        for shift in range(4):
            m = s_size > shift
            vals[m] |= src[s_off[m] + shift].astype(np.int64) << (8 * shift)
        out[value_start[single]] = vals.astype(np.uint32)

    grouped = ~single
    if grouped.any():
        g_off = offsets[grouped]
        g_count = counts[grouped]
        g_layout = layouts[grouped]
        groups = (g_count + 3) // 4
        header = np.where(g_layout == BLOB_MULTI, _leb128_lengths(g_count), 0)
        ctrl_start = g_off + header
        data_start = ctrl_start + groups  # GROUP blobs have exactly 1 group
        total_groups = int(groups.sum())
        blob_of = np.repeat(np.arange(g_off.size, dtype=np.int64), groups)
        group_base = np.zeros(g_off.size, dtype=np.int64)
        np.cumsum(groups[:-1], out=group_base[1:])
        within = np.arange(total_groups, dtype=np.int64) - np.repeat(
            group_base, groups)
        controls = src[ctrl_start[blob_of] + within]
        lane_lens = _LANE_LENGTHS[controls]                   # (G, 4)
        active = np.minimum(g_count[blob_of] - 4 * within, 4)
        lane_mask = np.arange(GROUP_SIZE)[None, :] < active[:, None]
        consumed = (lane_lens * lane_mask).sum(axis=1)
        data_cum = np.cumsum(consumed) - consumed             # exclusive
        data_off = data_cum - np.repeat(data_cum[group_base], groups)
        group_data = data_start[blob_of] + data_off

        # Narrow index math when the buffer allows it — the (G, 16)
        # gather index is the decoder's largest intermediate.
        idx_dtype = np.int32 if src.size < (1 << 31) else np.int64
        gather_idx = (group_data.astype(idx_dtype, copy=False)[:, None]
                      + _SHUFFLE_SAFE[controls])
        # Only groups whose 16-byte shuffle window overhangs the buffer
        # end need clamping (overhang lanes are masked below anyway) —
        # clamp those rows instead of min-ing the whole index.
        tail = np.flatnonzero(group_data > src.size - 16)
        if tail.size:
            gather_idx[tail] = np.minimum(gather_idx[tail], src.size - 1)
        gathered = src[gather_idx]
        gathered *= _SHUFFLE_KEEP[controls]  # zero the pshufb fill lanes
        lanes32 = (
            np.ascontiguousarray(gathered)
            .view("<u4")
            .reshape(total_groups, GROUP_SIZE)
        )
        deltas = lanes32[lane_mask]  # row-major: groups then lanes, in order
        summed = np.cumsum(deltas, dtype=np.int64)
        first = np.zeros(g_off.size, dtype=np.int64)
        np.cumsum(g_count[:-1], out=first[1:])
        blob_excl = summed[first] - deltas[first]
        vals = summed - np.repeat(blob_excl, g_count)
        targets = np.repeat(value_start[grouped], g_count) + (
            np.arange(int(g_count.sum()), dtype=np.int64)
            - np.repeat(first, g_count)
        )
        out[targets] = vals.astype(np.uint32)
    return out
