"""Stream VByte codec (Lemire, Kurz & Rupp 2018) with delta coding.

hyb+ compresses each SS-tree node's ``s`` sorted keys with Stream
VByte: a *control byte* holds four 2-bit length codes (1–4 bytes per
integer) and the *data bytes* hold the integers back to back
(Section VI-B1).  Because one control byte describes exactly four
lanes, decoding a whole node is a single byte-shuffle: the control byte
indexes a 256-entry lookup table of ``pshufb`` masks that scatter the
variable-length bytes into four fixed 32-bit lanes.  Differential
coding (``{x1, x2-x1, x3-x2, x4-x3}``) shrinks the data bytes further
and is undone with an in-register shift+add prefix sum.

Both a scalar decoder and the SIMD (LUT + shuffle) decoder are
provided; the ablation benchmark compares them.
"""

from __future__ import annotations

import numpy as np

from .register import SHUFFLE_ZERO, simd_prefix_sum, simd_shuffle_bytes

__all__ = [
    "GROUP_SIZE",
    "encode_group",
    "encode",
    "decode",
    "decode_group_simd",
    "decode_group_scalar",
    "data_length",
]

#: Values per control byte — fixed at 4 by the 2-bits-per-length format.
GROUP_SIZE = 4


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precompute per-control-byte lane lengths, totals, shuffle masks."""
    lengths = np.zeros((256, GROUP_SIZE), dtype=np.int64)
    shuffle = np.full((256, 16), SHUFFLE_ZERO, dtype=np.uint8)
    for control in range(256):
        pos = 0
        for lane in range(GROUP_SIZE):
            size = ((control >> (2 * lane)) & 0b11) + 1
            lengths[control, lane] = size
            for byte in range(size):
                shuffle[control, lane * 4 + byte] = pos
                pos += 1
    totals = lengths.sum(axis=1)
    return lengths, totals, shuffle


_LANE_LENGTHS, _TOTAL_LENGTHS, _SHUFFLE_MASKS = _build_tables()


def _byte_length(value: int) -> int:
    """Bytes needed for a uint32 (at least 1, so zero still encodes)."""
    if value < 0 or value >> 32:
        raise ValueError(f"{value} does not fit in an unsigned 32-bit lane")
    return max(1, (value.bit_length() + 7) // 8)


def data_length(control_byte: int, active: int = GROUP_SIZE) -> int:
    """Data bytes consumed by the first ``active`` lanes of a group."""
    if not 0 <= active <= GROUP_SIZE:
        raise ValueError("active must be in 0..4")
    return int(_LANE_LENGTHS[control_byte, :active].sum())


def encode_group(values: list[int], delta: bool = False) -> tuple[int, bytes]:
    """Encode up to 4 integers into ``(control_byte, data_bytes)``.

    With ``delta=True`` the first value is stored raw and the rest as
    differences from their predecessor (values must be ascending).
    """
    if not 1 <= len(values) <= GROUP_SIZE:
        raise ValueError("a Stream VByte group holds 1..4 values")
    stored = list(values)
    if delta:
        for i in range(len(stored) - 1, 0, -1):
            if stored[i] < stored[i - 1]:
                raise ValueError("delta coding needs ascending values")
            stored[i] -= stored[i - 1]
    control = 0
    data = bytearray()
    for lane, value in enumerate(stored):
        size = _byte_length(value)
        control |= (size - 1) << (2 * lane)
        data += value.to_bytes(size, "little")
    return control, bytes(data)


def encode(values: list[int], delta: bool = False) -> tuple[bytes, bytes]:
    """Encode a full sequence as ``(control_bytes, data_bytes)``.

    Values are split into groups of 4; delta coding restarts at every
    group boundary (each SS-tree node is decoded independently).
    """
    controls = bytearray()
    data = bytearray()
    for start in range(0, len(values), GROUP_SIZE):
        control, chunk = encode_group(values[start:start + GROUP_SIZE], delta)
        controls.append(control)
        data += chunk
    return bytes(controls), bytes(data)


def decode_group_simd(control_byte: int, data: bytes, offset: int = 0,
                      delta: bool = False) -> np.ndarray:
    """Decode one group with the shuffle LUT (all 4 lanes at once).

    Returns a 4-lane uint32 register; lanes beyond the group's real
    value count decode as zero-padded garbage the caller must mask.
    """
    window = np.zeros(16, dtype=np.uint8)
    chunk = data[offset:offset + 16]
    window[:len(chunk)] = np.frombuffer(chunk, dtype=np.uint8)
    gathered = simd_shuffle_bytes(window, _SHUFFLE_MASKS[control_byte])
    register = gathered.view("<u4").copy()
    if delta:
        register = simd_prefix_sum(register)
    return register


def decode_group_scalar(control_byte: int, data: bytes, offset: int = 0,
                        delta: bool = False,
                        active: int = GROUP_SIZE) -> list[int]:
    """Reference scalar decoder (one lane at a time) for the ablation."""
    values: list[int] = []
    pos = offset
    for lane in range(active):
        size = int(_LANE_LENGTHS[control_byte, lane])
        values.append(int.from_bytes(data[pos:pos + size], "little"))
        pos += size
    if delta:
        for i in range(1, len(values)):
            values[i] += values[i - 1]
    return values


def decode(controls: bytes, data: bytes, count: int,
           delta: bool = False, simd: bool = True) -> list[int]:
    """Decode ``count`` integers previously produced by :func:`encode`."""
    values: list[int] = []
    offset = 0
    for group_index, control in enumerate(controls):
        remaining = count - group_index * GROUP_SIZE
        active = min(GROUP_SIZE, remaining)
        if active <= 0:
            break
        if simd:
            register = decode_group_simd(control, data, offset, delta)
            values.extend(int(x) for x in register[:active])
        else:
            values.extend(
                decode_group_scalar(control, data, offset, delta, active)
            )
        offset += data_length(control, active)
    return values
