"""SIMD substrate: register model and Stream VByte codec."""

from .register import (
    SHUFFLE_ZERO,
    lanes,
    simd_any,
    simd_compare_eq,
    simd_compare_gt,
    simd_compare_lt,
    simd_count_lt,
    simd_prefix_sum,
    simd_shuffle_bytes,
)
from .streamvbyte import (
    GROUP_SIZE,
    data_length,
    decode,
    decode_group_scalar,
    decode_group_simd,
    encode,
    encode_group,
)

__all__ = [
    "SHUFFLE_ZERO",
    "lanes",
    "simd_any",
    "simd_compare_eq",
    "simd_compare_gt",
    "simd_compare_lt",
    "simd_count_lt",
    "simd_prefix_sum",
    "simd_shuffle_bytes",
    "GROUP_SIZE",
    "data_length",
    "decode",
    "decode_group_scalar",
    "decode_group_simd",
    "encode",
    "encode_group",
]
