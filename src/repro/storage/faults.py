"""Fault injection for the storage layer.

A crash-safety claim is only as good as the harness that attacks it.
``FaultInjectingKVStore`` wraps any KV store with:

- **injected IO errors** — each read/write attempt fails with
  :class:`InjectedIOError` at a configurable probability;
- **injected latency** — per-operation sleeps that model a saturated
  or remote disk;
- **torn-write-on-crash simulation** — a ``put`` appends only a prefix
  of the real on-disk record, then the wrapper behaves like a killed
  process (every later operation raises :class:`SimulatedCrashError`);
  reopening the path exercises the replay/truncate recovery path;
- **retry with exponential backoff** — transient ``OSError`` failures
  (injected or real) are retried up to ``max_retries`` times; a store
  that needed retries, or exhausted them, latches ``degraded = True``,
  which :class:`~repro.storage.graphstore.GraphStore` and
  ``EdgeQueryEngine.QueryStats`` surface to callers.

Randomness is seeded — ``FaultConfig.from_env`` reads the
``REPRO_FAULT_SEED`` environment variable so CI can sweep seeds while
each run stays reproducible.
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, replace
from random import Random

from ..obs import FaultStats, ReadReceipt, StorageStats
from .kvstore import DiskKVStore

__all__ = [
    "FaultConfig",
    "FaultStats",
    "FaultInjectingKVStore",
    "InjectedIOError",
    "SimulatedCrashError",
    "FAULT_SEED_ENV",
]

logger = logging.getLogger(__name__)

#: Environment variable CI uses to sweep fault-injection seeds.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


class InjectedIOError(IOError):
    """A transient IO failure injected by :class:`FaultInjectingKVStore`."""


class SimulatedCrashError(RuntimeError):
    """The wrapped store 'crashed' (kill-9 semantics): a torn record was
    left on disk and no further operations are possible through this
    wrapper.  Reopen the backing path to recover."""


@dataclass
class FaultConfig:
    """Probabilities and pacing for injected faults.

    Rates are per *attempt*: an operation retried after an injected
    error rolls the dice again on each retry.  ``torn_write_rate``
    applies per ``put`` and is terminal — it tears the record on disk
    and crashes the wrapper, so it is never retried.
    """

    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    read_latency: float = 0.0   # seconds per read attempt
    write_latency: float = 0.0  # seconds per write attempt
    torn_write_rate: float = 0.0
    seed: int | None = None
    max_retries: int = 3
    backoff_base: float = 0.0   # 0 keeps tests fast; real deployments > 0
    backoff_factor: float = 2.0
    #: Hard ceiling on any single backoff sleep.  Without it the
    #: exponential schedule is unbounded — at factor 2 a shared-fault
    #: burst can park every client in multi-second sleeps.
    backoff_max: float = 0.25
    #: Full jitter (AWS-style): each sleep is uniform in
    #: ``[0, min(backoff_max, base * factor**n)]``, drawn from a
    #: dedicated RNG derived from ``seed`` so retry pacing is
    #: reproducible under ``$REPRO_FAULT_SEED`` *and* does not perturb
    #: the fault-injection dice.  Disable for fixed deterministic
    #: delays (the pre-jitter behavior).
    jitter: bool = True

    @classmethod
    def from_env(cls, **overrides) -> "FaultConfig":
        """Build a config seeded from ``$REPRO_FAULT_SEED`` (default 0)."""
        seed = int(os.environ.get(FAULT_SEED_ENV, "0"))
        return replace(cls(seed=seed), **overrides)


class FaultInjectingKVStore:
    """Wrap a KV store with fault injection and retry-with-backoff.

    Implements the full store interface, so it drops into
    ``GraphStore(kv=FaultInjectingKVStore(DiskKVStore(path), cfg))``
    and everything above (engine, database facade) runs unmodified.

    ``degraded`` latches True the first time an operation needs a
    retry or fails permanently, and stays True until
    :meth:`reset_degraded` — the signal a serving layer would use to
    shed load or alert.
    """

    def __init__(self, inner, config: FaultConfig | None = None):
        self._inner = inner
        self.config = config or FaultConfig()
        self._rng = Random(self.config.seed)
        # Separate stream: jitter draws must not advance the fault
        # dice, or enabling backoff would change which operations fail.
        seed = self.config.seed
        self._backoff_rng = Random(
            None if seed is None else seed ^ 0x9E3779B9)
        self.fault_stats = FaultStats()
        self.degraded = False
        self._crashed = False

    # -- plumbing ----------------------------------------------------------

    @property
    def inner(self):
        return self._inner

    @property
    def stats(self) -> StorageStats:
        return self._inner.stats

    @property
    def path(self):
        return getattr(self._inner, "path", None)

    @property
    def format_version(self) -> int:
        return getattr(self._inner, "format_version", 2)

    @property
    def mutation_count(self) -> int:
        """Passthrough of the inner store's index-mutation counter."""
        return getattr(self._inner, "mutation_count", 0)

    def reset_degraded(self) -> None:
        self.degraded = False

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, key: int) -> bool:
        return key in self._inner

    def keys(self):
        return self._inner.keys()

    def _check_alive(self) -> None:
        if self._crashed:
            raise SimulatedCrashError(
                "store crashed after a torn write; reopen the log to recover"
            )

    def _sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def _backoff_delay(self, try_no: int) -> float:
        """Sleep before retry ``try_no``: capped exponential, full jitter.

        The uncapped, jitterless schedule this replaces had both
        retry-storm failure modes: no ceiling (sleeps grow without
        bound) and lockstep synchronization (every client that saw the
        same shared fault retried at the same instant, re-colliding on
        each round).  The cap bounds the worst sleep at
        ``backoff_max``; full jitter decorrelates the herd while
        keeping the *expected* pacing exponential.
        """
        cfg = self.config
        delay = cfg.backoff_base * (cfg.backoff_factor ** try_no)
        delay = min(delay, cfg.backoff_max)
        if delay <= 0:
            return 0.0
        if cfg.jitter:
            return self._backoff_rng.uniform(0.0, delay)
        return delay

    def _with_retries(self, attempt):
        """Run ``attempt`` with capped, jittered backoff on ``OSError``."""
        self.fault_stats.inc("operations")
        for try_no in range(self.config.max_retries + 1):
            try:
                return attempt()
            except OSError:
                self.degraded = True
                if try_no == self.config.max_retries:
                    self.fault_stats.inc("gave_up")
                    raise
                self.fault_stats.inc("retries")
                self._sleep(self._backoff_delay(try_no))
        raise AssertionError("unreachable: the final retry re-raises")

    def _maybe_fail_read(self) -> None:
        self._sleep(self.config.read_latency)
        if self._rng.random() < self.config.read_error_rate:
            self.fault_stats.inc("injected_read_errors")
            raise InjectedIOError("injected read error")

    def _maybe_fail_write(self) -> None:
        self._sleep(self.config.write_latency)
        if self._rng.random() < self.config.write_error_rate:
            self.fault_stats.inc("injected_write_errors")
            raise InjectedIOError("injected write error")

    # -- reads -------------------------------------------------------------

    def get(self, key: int, receipt: ReadReceipt | None = None):
        self._check_alive()

        def attempt():
            self._maybe_fail_read()
            return self._inner.get(key, receipt=receipt)

        return self._with_retries(attempt)

    def get_many(self, keys, receipt: ReadReceipt | None = None):
        self._check_alive()
        keys = list(keys)

        def attempt():
            self._maybe_fail_read()
            return self._inner.get_many(keys, receipt=receipt)

        return self._with_retries(attempt)

    # -- writes ------------------------------------------------------------

    def put(self, key: int, value: bytes) -> None:
        self._check_alive()
        if (self.config.torn_write_rate > 0
                and isinstance(self._inner, DiskKVStore)
                and self._rng.random() < self.config.torn_write_rate):
            self._tear_and_crash(key, value)

        def attempt():
            self._maybe_fail_write()
            return self._inner.put(key, value)

        return self._with_retries(attempt)

    def delete(self, key: int) -> bool:
        self._check_alive()

        def attempt():
            self._maybe_fail_write()
            return self._inner.delete(key)

        return self._with_retries(attempt)

    def _tear_and_crash(self, key: int, value: bytes) -> None:
        """Append a strict prefix of the real record, then die.

        This is the kill-9 moment the v2 log format exists for: the
        record's frame may land intact while its payload (and crc
        coverage) does not.  The wrapper is unusable afterwards, like
        the process that held the file descriptor.
        """
        record = self._inner.encode_put_record(key, value)
        cut = self._rng.randrange(1, len(record))
        handle = self._inner._file
        handle.seek(0, os.SEEK_END)
        handle.write(record[:cut])
        handle.flush()
        self._inner.close()
        self.fault_stats.inc("torn_writes")
        self.degraded = True
        self._crashed = True
        logger.warning(
            "simulated crash: tore put(key=%d) at byte %d/%d in %s",
            key, cut, len(record), self.path,
        )
        raise SimulatedCrashError(
            f"torn write for key {key}: {cut}/{len(record)} bytes reached disk"
        )

    # -- maintenance -------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        self._check_alive()
        self._inner.flush(sync)

    def compact(self) -> int:
        self._check_alive()

        def attempt():
            self._maybe_fail_write()
            return self._inner.compact()

        return self._with_retries(attempt)

    def close(self) -> None:
        if not self._crashed:
            self._inner.close()

    def __enter__(self) -> "FaultInjectingKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
