"""Disk storage substrate: log-structured KV store + adjacency store."""

from .cache import LRUCache
from .graphstore import GraphStore
from .kvstore import DiskKVStore, InMemoryKVStore, StorageStats

__all__ = [
    "LRUCache",
    "GraphStore",
    "DiskKVStore",
    "InMemoryKVStore",
    "StorageStats",
]
