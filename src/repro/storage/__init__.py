"""Disk storage substrate: log-structured KV store + adjacency store."""

from .cache import LRUCache
from .faults import (
    FaultConfig,
    FaultInjectingKVStore,
    FaultStats,
    InjectedIOError,
    SimulatedCrashError,
)
from .graphstore import GraphStore
from .kvstore import (
    CorruptRecordError,
    DiskKVStore,
    InMemoryKVStore,
    StorageStats,
)

__all__ = [
    "LRUCache",
    "GraphStore",
    "DiskKVStore",
    "InMemoryKVStore",
    "StorageStats",
    "CorruptRecordError",
    "FaultConfig",
    "FaultStats",
    "FaultInjectingKVStore",
    "InjectedIOError",
    "SimulatedCrashError",
]
