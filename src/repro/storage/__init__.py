"""Disk storage substrate: log-structured KV store + adjacency store."""

from .cache import LRUCache
from .faults import (
    FaultConfig,
    FaultInjectingKVStore,
    FaultStats,
    InjectedIOError,
    SimulatedCrashError,
)
from .graphstore import GraphStore
from .hotcache import CountMinSketch, HotSetCache
from .kvstore import (
    CorruptRecordError,
    DiskKVStore,
    InMemoryKVStore,
    StorageStats,
)
from .replication import ReplicatedShard, ReplicationStats
from .sharding import ReshardStats, ShardedGraphStore, ShardRouter
from .tuning import AdaptiveTuner, TunerDecision

__all__ = [
    "LRUCache",
    "HotSetCache",
    "CountMinSketch",
    "AdaptiveTuner",
    "TunerDecision",
    "GraphStore",
    "ShardRouter",
    "ShardedGraphStore",
    "ReplicatedShard",
    "ReplicationStats",
    "ReshardStats",
    "DiskKVStore",
    "InMemoryKVStore",
    "StorageStats",
    "CorruptRecordError",
    "FaultConfig",
    "FaultStats",
    "FaultInjectingKVStore",
    "InjectedIOError",
    "SimulatedCrashError",
]
