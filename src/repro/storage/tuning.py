"""Adaptive hot-cache tuner: budget from measured skew (DESIGN.md §16).

The :class:`~repro.storage.hotcache.HotSetCache` makes one promise —
serve the hot set from memory without perturbing verdicts or counters —
but it cannot know how big the hot set *is*.  That is a property of the
workload, and workloads drift: a Zipfian morning becomes a uniform
backfill becomes a churn storm.  :class:`AdaptiveTuner` closes the
loop:

1. **Sample.**  Every cache already samples its raw probe stream into
   a bounded ring (:meth:`HotSetCache.recent_accesses`) and a count-min
   sketch.  Sampling-not-census is the operative idea from Tětek &
   Thorup's "Better and Simpler Estimation of Popularity" line of
   work: a few thousand recent accesses pin the skew well enough to
   size a cache, at cost independent of traffic volume.
2. **Estimate skew.**  Under a Zipf(s) workload the sample's
   frequency-vs-rank curve is a line of slope ``-s`` in log-log space;
   a least-squares fit over the sampled ranks is the whole estimator.
   Uniform traffic fits ``s ≈ 0``, heavy skew fits ``s ≥ 1``.
3. **Size the budget.**  Given ``s`` and the observed universe, the
   smallest prefix of ranks covering ``coverage`` (default 0.9) of the
   access mass is the hot set; budget = that many entries at the
   measured mean decoded entry size, clamped to ``[min_bytes,
   max_bytes]`` and applied through :meth:`HotSetCache.set_capacity`
   (split evenly across shard-local caches).  A hysteresis band stops
   the budget flapping on estimator noise.
4. **Pick a maintenance mode.**  The same tick measures the store's
   mutation rate (``mutation_count`` deltas over wall time).  Below
   ``rebuild_threshold`` updates/sec the tuner recommends ``"hooks"``
   (incremental per-edge index maintenance); above it, ``"rebuild"``
   (let updates land, re-encode in one batch) — the Section V-D
   trade-off, now driven by measurement instead of configuration.

The tuner never touches cached *entries* — only ``set_capacity`` — so
it composes with the cache's stats-transparency: resizing mid-run can
change hit rates, never verdicts or logical counters.

Run it by explicit :meth:`~AdaptiveTuner.tick` calls (benchmarks,
tests) or as a daemon thread (:meth:`~AdaptiveTuner.start` /
:meth:`~AdaptiveTuner.stop`).  Lock order is strictly tuner → cache
(both leaves of the witness graph); the background loop sleeps outside
any lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..devtools.witness import wrap_lock
from ..obs import TunerStats

__all__ = ["AdaptiveTuner", "TunerDecision", "estimate_skew"]

#: Harmonic-sum rank cap: coverage solving never materializes more
#: weights than this, whatever the observed universe claims.
_RANK_CAP = 1 << 20
#: Mean decoded entry size assumed before any cache holds entries.
_DEFAULT_ENTRY_BYTES = 64


def estimate_skew(keys: np.ndarray) -> tuple[float, int]:
    """Zipf exponent estimate from a sampled access stream.

    Returns ``(skew, distinct)``.  The estimator is the least-squares
    slope of ``log(frequency)`` against ``log(rank)`` over the sample's
    distinct keys, negated and floored at 0 — uniform samples come out
    near 0.0, a Zipf(1.0) stream near 1.0.  Needs at least two distinct
    keys and at least two distinct frequencies; degenerate samples
    report 0.0 skew.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if len(keys) == 0:
        return 0.0, 0
    _, counts = np.unique(keys, return_counts=True)
    distinct = len(counts)
    if distinct < 2 or counts.min() == counts.max():
        return 0.0, distinct
    freqs = np.sort(counts)[::-1].astype(np.float64)
    # Fit the head only: the sampled tail is quantized at count 1
    # whatever the true law, and including it drags every fit toward
    # the same flat shelf.  Keys seen at least twice carry the signal.
    head = int(np.searchsorted(-freqs, -1.5))
    if head >= 2:
        freqs = freqs[:head]
    ranks = np.arange(1, len(freqs) + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(freqs)
    x -= x.mean()
    slope = float((x * y).sum() / (x * x).sum())
    return max(0.0, -slope), distinct


def _coverage_rank(skew: float, universe: int, coverage: float) -> int:
    """Smallest rank prefix holding ``coverage`` of Zipf(skew) mass."""
    universe = max(1, min(int(universe), _RANK_CAP))
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    weights = ranks ** -max(skew, 0.0)
    mass = np.cumsum(weights)
    mass /= mass[-1]
    return int(np.searchsorted(mass, coverage)) + 1


@dataclass(frozen=True)
class TunerDecision:
    """One tick's inputs and outcome, returned for tests and benchmarks."""

    skew: float
    distinct: int
    sample_size: int
    coverage_keys: int
    mean_entry_bytes: float
    budget_bytes: int
    applied: bool
    update_rate: float
    maintenance_mode: str
    hit_rate: float


class AdaptiveTuner:
    """Samples hot-cache telemetry, resizes budgets, picks maintenance.

    Parameters
    ----------
    caches:
        A list of :class:`~repro.storage.hotcache.HotSetCache` or a
        zero-arg callable returning one — pass the *callable* form
        (e.g. ``db.hot_caches``) for stores whose cache set changes
        under reshard.
    mutation_counter:
        Optional zero-arg callable returning the store's cumulative
        mutation count; enables the update-rate measurement behind the
        hooks-vs-rebuild recommendation.
    min_bytes, max_bytes:
        Clamp on the total budget the tuner may choose.
    coverage:
        Fraction of access mass the budget should cover (τ, default
        0.9).
    rebuild_threshold:
        Mutations/sec above which batch-rebuild maintenance is
        recommended over incremental hooks.
    hysteresis:
        Minimum relative budget change that is worth applying (0.125 =
        ignore moves smaller than 12.5%).
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(self, caches, *, mutation_counter=None,
                 min_bytes: int = 1 << 16, max_bytes: int = 1 << 28,
                 coverage: float = 0.9, rebuild_threshold: float = 50.0,
                 hysteresis: float = 0.125, clock=time.monotonic,
                 scope: str | None = None):
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        if min_bytes < 0 or max_bytes < min_bytes:
            raise ValueError("need 0 <= min_bytes <= max_bytes")
        self._caches = caches if callable(caches) else (lambda: list(caches))
        self._mutations = mutation_counter
        self.min_bytes = int(min_bytes)
        self.max_bytes = int(max_bytes)
        self.coverage = float(coverage)
        self.rebuild_threshold = float(rebuild_threshold)
        self.hysteresis = float(hysteresis)
        self._clock = clock
        self._lock = wrap_lock(threading.RLock(), "AdaptiveTuner._lock")
        self._last_time: float | None = None  # guarded-by: self._lock
        self._last_mutations = 0  # guarded-by: self._lock
        self._mode = "hooks"  # guarded-by: self._lock
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.stats = TunerStats(scope=scope)

    @classmethod
    def for_db(cls, db, **kwargs) -> "AdaptiveTuner":
        """Wire a tuner to a :class:`~repro.apps.database.VendGraphDB`.

        Uses the database's live ``hot_caches()`` (reshard-safe) and
        sums segment ``mutation_count`` for the update-rate input.
        """
        def _mutations() -> int:
            store = db.store
            segments = getattr(store, "segments", None)
            if segments is None:
                return int(getattr(store._kv, "mutation_count", 0))
            return sum(int(getattr(seg._kv, "mutation_count", 0))
                       for seg in segments)
        return cls(db.hot_caches, mutation_counter=_mutations, **kwargs)

    # -- the control loop --------------------------------------------------

    @property
    def maintenance_mode(self) -> str:
        """Latest recommendation: ``"hooks"`` or ``"rebuild"``."""
        with self._lock:
            return self._mode

    def tick(self) -> TunerDecision:
        """One evaluation pass: sample → estimate → resize → recommend."""
        caches = [c for c in self._caches() if c is not None]
        sample = (np.concatenate([c.recent_accesses() for c in caches])
                  if caches else np.zeros(0, dtype=np.int64))
        skew, distinct = estimate_skew(sample)
        entries = sum(len(c) for c in caches)
        held_bytes = sum(c.size_bytes for c in caches)
        mean_bytes = (held_bytes / entries if entries
                      else float(_DEFAULT_ENTRY_BYTES))
        # The sample's distinct count lower-bounds the universe; what
        # the caches already hold can only raise it.
        universe = max(distinct, entries, 1)
        coverage_keys = _coverage_rank(skew, universe, self.coverage)
        budget = int(coverage_keys * mean_bytes)
        budget = min(max(budget, self.min_bytes), self.max_bytes)

        current = sum(c.capacity_bytes for c in caches)
        applied = False
        if caches and len(sample) and abs(budget - current) > (
                self.hysteresis * max(current, 1)):
            share = budget // len(caches)
            for cache in caches:
                cache.set_capacity(share)
            applied = True
            self.stats.inc("resizes")
        else:
            budget = current if caches else budget

        now = self._clock()
        update_rate = 0.0
        mutations = self._mutations() if self._mutations is not None else 0
        with self._lock:
            if self._last_time is not None and now > self._last_time:
                update_rate = ((mutations - self._last_mutations)
                               / (now - self._last_time))
            self._last_time = now
            self._last_mutations = mutations
            mode = ("rebuild" if update_rate > self.rebuild_threshold
                    else "hooks")
            if mode != self._mode:
                self._mode = mode
                self.stats.inc("mode_switches")

        hits = sum(c.stats.hits for c in caches)
        misses = sum(c.stats.misses for c in caches)
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        self.stats.inc("ticks")
        self.stats.set_gauge("skew_estimate", round(skew, 4))
        self.stats.set_gauge("budget_bytes", budget)
        self.stats.set_gauge("update_rate", round(update_rate, 3))
        self.stats.set_gauge("hit_rate", round(hit_rate, 4))
        self.stats.set_gauge("rebuild_mode", int(mode == "rebuild"))
        return TunerDecision(
            skew=skew, distinct=distinct, sample_size=len(sample),
            coverage_keys=coverage_keys, mean_entry_bytes=mean_bytes,
            budget_bytes=budget, applied=applied, update_rate=update_rate,
            maintenance_mode=mode, hit_rate=hit_rate,
        )

    # -- background operation ----------------------------------------------

    def start(self, interval: float = 1.0) -> None:
        """Run :meth:`tick` every ``interval`` seconds on a daemon thread."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        if self._thread is not None:
            raise RuntimeError("tuner already running")
        self._stop.clear()

        def _loop() -> None:
            # Sleep first so a start/stop pair in a fast test does not
            # race its tick against teardown; the wait never holds a
            # lock (R012).
            while not self._stop.wait(interval):
                self.tick()

        self._thread = threading.Thread(target=_loop, daemon=True,
                                        name="repro-hot-tuner")
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (idempotent, joins briefly)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "AdaptiveTuner":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
