"""Shard-local decoded-blob hot cache (DESIGN.md §16).

PR 6 compressed the log and moved decode onto the hot path: every
batched probe re-runs StreamVByte decode for each distinct left
endpoint, even when a Zipfian workload asks for the same few thousand
vertices in every batch.  :class:`HotSetCache` keeps those vertices'
**decoded** adjacency arrays in memory so a hot probe skips both the
read and the decode.

It differs from the :class:`~repro.storage.cache.LRUCache` block cache
in three load-bearing ways:

- **Values are decoded ndarrays**, billed by exact ``ndarray.nbytes``
  (the block cache stores whatever bytes ``put`` saw, pre-decode).
- **The hit path is vectorized.**  A probe against the cache is one
  ``searchsorted`` into a lazily rebuilt *snapshot* — sorted key array
  plus one contiguous byte buffer — and hits are assembled with the
  same :func:`~repro.storage.kvstore.assemble_packed` scatter the
  packed read tiers use.  No per-record Python on the hit path, which
  is the whole point at 10⁵ probes per batch.
- **Admission is frequency-gated, not recency-driven.**  An embedded
  :class:`CountMinSketch` samples the *raw* (pre-dedup) probe stream;
  a missed key is admitted only while the cache has free budget or
  when its estimated frequency beats the eviction floor (the smallest
  estimate among current residents, TinyLFU-style).  A uniform sweep
  therefore fills the cache once and then stops churning — no
  per-batch thrash, no snapshot rebuilds — while a Zipfian hot set
  converges within a few batches and then serves hits from a *stable*
  snapshot.

Invalidation protocol (generation-keyed, DESIGN.md §16):

- **Mutation**: the owning KV store calls :meth:`evict` from ``put``/
  ``delete`` — exact per-key invalidation under the store's existing
  lock discipline, and :meth:`invalidate_all` from ``compact`` (every
  offset moved).  Each bumps :attr:`generation`, which marks the
  current snapshot stale; the next probe rebuilds.
- **Reshard**: new-generation segments get fresh KV stores and
  therefore fresh caches; the budget is inherited with the rest of the
  segment config (``_INHERIT`` in ``sharding.py``).
- **Republish** (process executor): the worker-side cache lives inside
  the :class:`~repro.storage.shm.MappedShardReader`, which is rebuilt
  whenever the coordinator publishes a new ``mutation_count``
  generation — a stale cache cannot outlive the snapshot it decodes.

Booking is **stats-transparent**: a hot hit books the same logical
``disk_reads``/``bytes_read`` a real read of the stored record would
(exactly like the mmap tier books logical reads it served from the
page cache), so verdicts *and* storage/query counters are bitwise
identical with the cache on or off.  The cache's own effectiveness is
visible in its :class:`~repro.obs.CacheStats` series
(``repro_cache{cache="hot<N>"}``) and the tuner's gauges.

Thread safety: all mutating entry points hold one ``RLock`` (a leaf
lock — nothing else is ever acquired under it).  A published snapshot
tuple is immutable; concurrent readers may keep using a superseded
snapshot only while no *invalidating* mutation ran, which the callers
guarantee (segment mutations hold the sharded store's write lock;
the background tuner only resizes capacity, and capacity evictions
never change a surviving entry's bytes).
"""

from __future__ import annotations

import threading

import numpy as np

from ..devtools.witness import wrap_lock
from ..obs import CacheStats, default_registry

__all__ = ["CountMinSketch", "HotSetCache"]

#: Per-probe cap on sketch updates: the access stream is sampled, not
#: exhaustively counted, so observation stays O(1)-ish per batch (the
#: Tětek–Thorup point: skew estimation needs samples, not a census).
_OBSERVE_CAP = 2048
#: Per-probe cap on admissions, bounding warm-up churn per batch.
_ADMIT_CAP = 1024
#: Deferred-rebuild ratio: newly admitted entries are served cold (they
#: miss the published snapshot, which stays valid) until their byte
#: mass reaches 1/16 of the cache, and only then does the generation
#: bump.  Rebuild points form a geometric series, so snapshot and
#: membership-view construction amortizes to O(log) rebuilds over a
#: warm-up instead of one per batch — and to *zero* at steady state,
#: when the trickle of Zipf-tail admissions never crosses the ratio.
_STALE_RATIO_SHIFT = 4
#: Build the O(1) key->position table only while the largest cached
#: key stays below this (dense vertex IDs); beyond it fall back to
#: searchsorted.  2**22 caps the table at 16 MiB of int32.
_LUT_CAP = 1 << 22
#: Ceiling on the membership bitmap's footprint.  Below it, verdicts
#: are one gather + shift per probe (entries x vertex-universe bit
#: matrix); above it — sparse IDs or a huge resident set — the view
#: falls back to the searchsorted-over-shifted-ranges path.
_BITMAP_CAP_BYTES = 64 << 20
#: Recent-access ring size backing the skew estimate.
_RING_SIZE = 4096
#: Adjacency entries are packed uint32 vertex IDs; the membership view
#: shifts each cached list into a disjoint ``key_index * 2**32`` value
#: range so one global searchsorted answers every probe (the same
#: disjoint-range trick as ``graphstore.membership_sweep``).
_ID_LIMIT = 2**32


class CountMinSketch:
    """Seeded count-min sketch over int64 keys, numpy end to end.

    ``depth`` rows of ``width`` counters; :meth:`add` hashes a whole
    key array per row (splitmix64-style mixing, ``PYTHONHASHSEED``-
    independent) and bumps counters with one ``np.add.at`` per row.
    Estimates are the row-wise minimum, biased high as usual.  Counts
    halve once :attr:`observed` crosses ``decay_window`` so drifted-
    away hot sets stop looking hot.
    """

    def __init__(self, width: int = 4096, depth: int = 4,
                 decay_window: int = 1 << 18):
        if width < 16 or depth < 1:
            raise ValueError("sketch needs width >= 16 and depth >= 1")
        self.width = int(width)
        self.depth = int(depth)
        self.decay_window = int(decay_window)
        self.observed = 0
        self._table = np.zeros((depth, width), dtype=np.int64)
        # Distinct odd multipliers per row (deterministic, seed-free).
        self._salts = (np.uint64(0x9E3779B97F4A7C15)
                       * (2 * np.arange(depth, dtype=np.uint64) + 1))

    def _rows(self, keys: np.ndarray) -> np.ndarray:
        """(depth, n) bucket indices for ``keys`` (uint64 mixing)."""
        x = keys.astype(np.uint64)[None, :] * self._salts[:, None]
        x ^= x >> np.uint64(33)
        x *= np.uint64(0xFF51AFD7ED558CCD)
        x ^= x >> np.uint64(29)
        return (x % np.uint64(self.width)).astype(np.int64)

    def add(self, keys: np.ndarray) -> None:
        if len(keys) == 0:
            return
        rows = self._rows(keys)
        for d in range(self.depth):
            np.add.at(self._table[d], rows[d], 1)
        self.observed += len(keys)
        if self.observed >= self.decay_window:
            self._table >>= 1
            self.observed //= 2

    def estimate(self, keys: np.ndarray) -> np.ndarray:
        """Estimated counts for ``keys`` (int64, biased high)."""
        if len(keys) == 0:
            return np.zeros(0, dtype=np.int64)
        rows = self._rows(keys)
        est = self._table[0][rows[0]]
        for d in range(1, self.depth):
            est = np.minimum(est, self._table[d][rows[d]])
        return est


class HotSetCache:
    """Decoded-adjacency hot cache with a vectorized hit path.

    Entries are ``key -> (decoded uint8 ndarray, stored size)``; the
    stored size is what a real read of the record would have booked,
    so hits can reproduce the cold path's logical accounting exactly.
    """

    def __init__(self, capacity_bytes: int, scope: str | None = None):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = int(capacity_bytes)
        self._lock = wrap_lock(threading.RLock(), "HotSetCache._lock")
        # key -> (decoded value, stored size).  All entry state below is
        # guarded-by: self._lock
        self._data: dict[int, tuple[np.ndarray, int]] = {}  # guarded-by: self._lock
        self._size = 0  # guarded-by: self._lock
        self._generation = 0  # guarded-by: self._lock
        # (generation, keys, starts, rawszs, storedszs, buf) or None.
        self._snapshot = None  # guarded-by: self._lock
        # (generation, (keys, combined, counts, storedszs)) or None.
        self._member_view = None  # guarded-by: self._lock
        # Bytes admitted since the last generation bump (deferred
        # rebuild accounting; see _admit).
        self._stale_bytes = 0  # guarded-by: self._lock
        self._floor = 0  # guarded-by: self._lock
        self.sketch = CountMinSketch()
        # Ring of recently sampled access keys (skew estimation).
        self._ring = np.full(_RING_SIZE, -1, dtype=np.int64)  # guarded-by: self._lock
        self._ring_pos = 0  # guarded-by: self._lock
        self._observed_total = 0  # guarded-by: self._lock
        self._observe_calls = 0  # guarded-by: self._lock
        # Hot caches share the block-cache metric family but take a
        # "hotN" scope label, so `repro stats --filter` and dashboards
        # can split decode-cache traffic from block-cache traffic.
        if scope is None:
            scope = default_registry().scope("hot")
        self._stats = CacheStats(scope=scope)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def generation(self) -> int:
        """Bumps on every invalidating or structural change."""
        return self._generation

    @property
    def observed_total(self) -> int:
        """Sampled accesses recorded so far (tuner input)."""
        return self._observed_total

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def hit_rate(self) -> float:
        total = self._stats.hits + self._stats.misses
        return self._stats.hits / total if total else 0.0

    def _sync_gauges(self) -> None:
        self._stats.set_gauge("entries", len(self._data))
        self._stats.set_gauge("size_bytes", self._size)

    # -- access sampling ---------------------------------------------------

    def observe(self, us: np.ndarray) -> None:
        """Sample the raw (pre-dedup) probe stream into the sketch.

        Frequency lives in the *raw* stream — after dedup every key
        appears once per batch and a hot set is indistinguishable from
        a uniform one until many batches pass.  A strided sample keeps
        the cost bounded regardless of batch size.
        """
        n = len(us)
        if n == 0:
            return
        with self._lock:
            if n > _OBSERVE_CAP:
                step = (n + _OBSERVE_CAP - 1) // _OBSERVE_CAP
                # Rotate the sample phase across calls so repeated
                # identical batches still cover every position over
                # time — a fixed phase would sample the same keys
                # forever and starve the rest of sketch mass.
                sample = us[self._observe_calls % step:: step]
            else:
                sample = us
            sample = np.asarray(sample, dtype=np.int64)
            self._observe_calls += 1
            self.sketch.add(sample)
            self._observed_total += len(sample)
            pos = self._ring_pos
            for chunk in (sample[: _RING_SIZE],):
                k = len(chunk)
                first = min(k, _RING_SIZE - pos)
                self._ring[pos:pos + first] = chunk[:first]
                if k > first:
                    self._ring[: k - first] = chunk[first:]
                self._ring_pos = (pos + k) % _RING_SIZE

    def recent_accesses(self) -> np.ndarray:
        """The sampled-access ring (filled slots only), newest-last."""
        with self._lock:
            return self._ring[self._ring != -1].copy()

    # -- hit path ----------------------------------------------------------

    def snapshot(self):
        """The vectorized probe view, rebuilt only when stale.

        Returns ``(keys, starts, rawszs, storedszs, buf)`` — sorted
        int64 keys, each entry's offset into ``buf``, decoded sizes,
        stored sizes — or None when the cache is empty.  The tuple is
        immutable; mutations publish a new one.
        """
        with self._lock:
            snap = self._snapshot
            if snap is not None and snap[0] == self._generation:
                return snap[1]
            if not self._data:
                self._snapshot = None
                return None
            keys = np.fromiter(self._data.keys(), dtype=np.int64,
                               count=len(self._data))
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = list(self._data.values())
            rawszs = np.asarray([v[0].nbytes for v in values],
                                dtype=np.int64)[order]
            storedszs = np.asarray([v[1] for v in values],
                                   dtype=np.int64)[order]
            starts = np.zeros(len(keys), dtype=np.int64)
            np.cumsum(rawszs[:-1], out=starts[1:])
            buf = np.empty(int(rawszs.sum()), dtype=np.uint8)
            data = self._data
            for key, start, size in zip(keys.tolist(), starts.tolist(),
                                        rawszs.tolist()):
                buf[start:start + size] = data[key][0]
            view = (keys, starts, rawszs, storedszs, buf)
            self._snapshot = (self._generation, view)
            return view

    def probe(self, keys: np.ndarray):
        """Vectorized membership: ``(hit_mask, positions, snapshot)``.

        ``positions[i]`` indexes the snapshot arrays for every ``i``
        with ``hit_mask[i]``; the caller gathers payload bytes from the
        snapshot buffer (typically via ``assemble_packed``).  Returns
        None when the cache is empty.  Hit/miss counters are booked
        here, one per probed key.
        """
        snap = self.snapshot()
        if snap is None:
            self._stats.inc("misses", len(keys))
            return None
        skeys = snap[0]
        pos = np.searchsorted(skeys, keys)
        pos = np.minimum(pos, len(skeys) - 1)
        hit = skeys[pos] == keys
        n_hits = int(hit.sum())
        if n_hits:
            self._stats.inc("hits", n_hits)
        if len(keys) - n_hits:
            self._stats.inc("misses", len(keys) - n_hits)
        return hit, pos, snap

    def fill_hits(self, keys: np.ndarray, rawszs: np.ndarray,
                  out: np.ndarray, starts: np.ndarray):
        """Serve cache hits straight into a packed output buffer.

        ``out[starts[i]:starts[i] + rawszs[i]]`` is key ``i``'s slot;
        every hit's decoded bytes are gathered there from the snapshot
        buffer in one vectorized scatter.  Returns ``(hit_mask,
        stored_bytes)`` — the mask of served slots plus the stored
        (logical-booking) byte total of the hits — or None when the
        cache is empty.
        """
        res = self.probe(keys)
        if res is None:
            return None
        hit, pos, (_skeys, sstarts, srawszs, sstoredszs, sbuf) = res
        if not hit.any():
            return hit, 0
        hp = pos[hit]
        sz = srawszs[hp]
        if not np.array_equal(sz, rawszs[hit]):
            # A cached decode disagrees with the live index about its
            # size — the invalidation protocol makes this unreachable,
            # but serving it would be silent corruption.  Drop
            # everything and report a clean miss instead.
            self.invalidate_all()
            return np.zeros(len(keys), dtype=bool), 0
        total = int(sz.sum())
        base = np.zeros(len(sz), dtype=np.int64)
        np.cumsum(sz[:-1], out=base[1:])
        span = np.arange(total, dtype=np.int64)
        out[np.repeat(starts[hit] - base, sz) + span] = \
            sbuf[np.repeat(sstarts[hp] - base, sz) + span]
        return hit, int(sstoredszs[hp].sum())

    def membership_view(self):
        """Verdict-ready view of the cache, rebuilt only when stale.

        Interprets every cached decode as a sorted packed-``uint32``
        adjacency list (the only record shape VEND stores) and returns
        ``(keys, combined, storedszs, lut, bits, words)``: sorted int64
        cache keys, the concatenated neighbor values shifted into
        disjoint per-key ranges (``+ key_index * 2**32``), each entry's
        stored size for logical booking, and two optional accelerators
        built when IDs are dense enough —

        - ``lut``: a ``key -> position`` int32 table (-1 for absent)
          turning the key lookup into one gather instead of a binary
          search (largest key below ``_LUT_CAP``);
        - ``bits``/``words``: a flattened ``entries x words`` uint64
          bit matrix over the neighbor-ID universe (footprint below
          ``_BITMAP_CAP_BYTES``), turning each membership test into
          one gather + shift instead of a binary search over
          ``combined`` — the difference between O(log) cache-missing
          hops and a single access per probe at 10^5 probes per batch.

        :meth:`probe_verdicts` answers whole probe batches against the
        view with zero ``searchsorted`` calls when both accelerators
        exist — no byte copies, no per-batch reconstruction.  None
        when the cache is empty.
        """
        with self._lock:
            mv = self._member_view
            if mv is not None and mv[0] == self._generation:
                return mv[1]
            snap = self.snapshot()
            if snap is None:
                self._member_view = None
                return None
            keys, _starts, rawszs, storedszs, buf = snap
            counts = rawszs // 4
            base = np.arange(len(keys), dtype=np.int64) * _ID_LIMIT
            neighbors = buf.view(np.uint32).astype(np.int64)
            combined = neighbors + np.repeat(base, counts)
            lut = None
            if keys.size and int(keys[-1]) < _LUT_CAP:
                lut = np.full(int(keys[-1]) + 1, -1, dtype=np.int32)
                lut[keys] = np.arange(len(keys), dtype=np.int32)
            bits = None
            words = 0
            if neighbors.size:
                words = (int(neighbors.max()) >> 6) + 1
                if len(keys) * words * 8 <= _BITMAP_CAP_BYTES:
                    # Bit index of neighbor v in entry e is e*words*64
                    # + v; rows ascend and each adjacency list is
                    # sorted, so the word stream is non-decreasing and
                    # one reduceat ORs each word's bits together.
                    idx = (np.repeat(np.arange(len(keys), dtype=np.int64)
                                     * (words << 6), counts) + neighbors)
                    wrd = idx >> 6
                    val = np.uint64(1) << (idx & 63).astype(np.uint64)
                    seg = np.concatenate(
                        ([0], np.flatnonzero(np.diff(wrd)) + 1))
                    bits = np.zeros(len(keys) * words, dtype=np.uint64)
                    bits[wrd[seg]] = np.bitwise_or.reduceat(val, seg)
                else:
                    words = 0
            view = (keys, combined, storedszs, lut, bits, words)
            self._member_view = (self._generation, view)
            return view

    def probe_verdicts(self, us: np.ndarray, vs: np.ndarray):
        """Answer edge-membership probes straight from cached decodes.

        Probe ``j`` asks whether ``vs[j]`` is in the adjacency list of
        ``us[j]``.  Returns None when the cache is empty; otherwise
        ``(hit, verdicts, n_unique, stored_bytes)`` where ``hit`` marks
        probes whose source vertex is cached, ``verdicts[j]`` is the
        membership answer (meaningful only where ``hit[j]``),
        ``n_unique`` counts the distinct cached vertices probed and
        ``stored_bytes`` their stored-size total — what a cold read of
        those records would have booked.  Verdict semantics are
        bitwise identical to ``graphstore.membership_sweep`` (including
        the out-of-range ``vs`` mask).  Books one hit per distinct
        cached vertex served; misses are left for the cold path that
        fetches them.
        """
        view = self.membership_view()
        if view is None:
            return None
        keys, combined, storedszs, lut, bits, words = view
        if lut is not None:
            inside = (us >= 0) & (us < len(lut))
            pos = lut[np.where(inside, us, 0)].astype(np.int64)
            hit = inside & (pos >= 0)
        else:
            pos = np.minimum(np.searchsorted(keys, us), len(keys) - 1)
            hit = keys[pos] == us
        n_hits = int(hit.sum())
        verdicts = np.zeros(len(us), dtype=bool)
        if n_hits == 0:
            return hit, verdicts, 0, 0
        seen = np.zeros(len(keys), dtype=bool)
        seen[pos[hit]] = True
        served = np.flatnonzero(seen)
        if bits is not None:
            vok = (vs >= 0) & (vs < (words << 6))
            safe_vs = np.where(vok, vs, 0)
            flat = np.where(hit, pos * words + (safe_vs >> 6), 0)
            shift = (safe_vs & 63).astype(np.uint64)
            verdicts = ((bits[flat] >> shift) & np.uint64(1)).astype(bool)
            verdicts &= vok & hit
        elif combined.size:
            valid = (vs >= 0) & (vs < _ID_LIMIT)
            probes = vs + pos * _ID_LIMIT
            at = np.minimum(np.searchsorted(combined, probes),
                            len(combined) - 1)
            verdicts = (combined[at] == probes) & valid & hit
        self._stats.inc("hits", len(served))
        return hit, verdicts, len(served), int(storedszs[served].sum())

    def get(self, key: int):
        """Scalar lookup: ``(decoded bytes, stored size)`` or None."""
        with self._lock:
            entry = self._data.get(key)
        if entry is None:
            self._stats.inc("misses")
            return None
        self._stats.inc("hits")
        return entry[0].tobytes(), entry[1]

    # -- admission / eviction ----------------------------------------------

    def admit_one(self, key: int, value: np.ndarray, stored_size: int,
                  force: bool = False) -> bool:
        """Admit one decoded blob, subject to the frequency gate."""
        return self._admit([int(key)], [np.asarray(value, dtype=np.uint8)],
                           [int(stored_size)], force=force) > 0

    def admit(self, keys: np.ndarray, data: np.ndarray,
              starts: np.ndarray, rawszs: np.ndarray,
              storedszs: np.ndarray) -> int:
        """Batch admission of cold-read results; returns admitted count.

        ``data`` is the cold path's decoded output buffer; entry ``i``
        occupies ``data[starts[i]:starts[i]+rawszs[i]]``.  Candidates
        are ranked by sketch estimate; at most ``_ADMIT_CAP`` are
        copied per call, and once the cache is full a candidate must
        beat the eviction floor — so steady-state misses against a
        full cache (a uniform sweep, a Zipf tail) are rejected in one
        vectorized pass with zero copies and zero generation bumps.
        """
        n = len(keys)
        if n == 0 or self.capacity_bytes == 0:
            return 0
        keys = np.asarray(keys, dtype=np.int64)
        est = self.sketch.estimate(keys)
        with self._lock:
            full = self._size >= self.capacity_bytes
            floor = self._floor
            resident = self._data
            # Keys already resident (typically pending entries the view
            # has not folded in yet) must not occupy candidate slots —
            # they would win the frequency ranking every batch and
            # starve genuinely new keys of the _ADMIT_CAP budget.
            novel = np.fromiter((k not in resident for k in keys.tolist()),
                                dtype=bool, count=n)
        if full:
            eligible = np.flatnonzero(novel & (est > floor))
        else:
            eligible = np.flatnonzero(novel)
        if len(eligible) == 0:
            return 0
        if len(eligible) > _ADMIT_CAP:
            top = np.argpartition(est[eligible], -_ADMIT_CAP)[-_ADMIT_CAP:]
            eligible = eligible[top]
        picked = [int(i) for i in eligible
                  if 0 < rawszs[i] <= self.capacity_bytes]
        if not picked:
            return 0
        values = [data[int(starts[i]):int(starts[i]) + int(rawszs[i])].copy()
                  for i in picked]
        return self._admit([int(keys[i]) for i in picked], values,
                           [int(storedszs[i]) for i in picked])

    def _admit(self, keys: list[int], values: list[np.ndarray],
               storedszs: list[int], force: bool = False) -> int:
        """Insert decoded blobs; generation bumps are *deferred*.

        Already-cached keys are skipped (the mutation protocol evicts
        before any record can change, so a re-admission is always the
        same bytes — typically a pending key the cold path refetched).
        Fresh entries accrue into ``_stale_bytes``; the generation — and
        with it the snapshot/membership view — is only invalidated once
        the pending mass crosses ``size >> _STALE_RATIO_SHIFT``, which
        turns per-batch rebuild churn into a geometric series.
        """
        admitted = 0
        with self._lock:
            for key, value, stored in zip(keys, values, storedszs):
                nbytes = int(value.nbytes)
                if nbytes > self.capacity_bytes or nbytes == 0:
                    continue
                if key in self._data:
                    continue
                if (not force and self._size + nbytes > self.capacity_bytes
                        and self._size >= self.capacity_bytes):
                    break
                value.flags.writeable = False
                self._data[key] = (value, stored)
                self._size += nbytes
                self._stale_bytes += nbytes
                admitted += 1
            if admitted:
                if (self._stale_bytes << _STALE_RATIO_SHIFT) >= self._size:
                    self._generation += 1
                    self._stale_bytes = 0
                if self._size > self.capacity_bytes:
                    self._evict_coldest_locked()
                self._sync_gauges()
        return admitted

    def _evict_coldest_locked(self) -> None:
        """Shed lowest-estimated-frequency entries until under budget.

        Also records the smallest surviving estimate as the admission
        floor — the TinyLFU-style gate that stops steady-state churn.
        Callers already hold ``_lock``; the re-entrant acquire here is
        free and keeps the guarded-state contract locally checkable.
        """
        with self._lock:
            keys = np.fromiter(self._data.keys(), dtype=np.int64,
                               count=len(self._data))
            est = self.sketch.estimate(keys)
            order = np.argsort(est, kind="stable")
            evicted = 0
            for i in order.tolist():
                if self._size <= self.capacity_bytes:
                    break
                key = int(keys[i])
                entry = self._data.pop(key)
                self._size -= entry[0].nbytes
                evicted += 1
            if evicted:
                self._stats.inc("evictions", evicted)
                self._generation += 1
                self._stale_bytes = 0
            if self._data:
                survivors = np.fromiter(self._data.keys(), dtype=np.int64,
                                        count=len(self._data))
                self._floor = int(self.sketch.estimate(survivors).min())
            else:
                self._floor = 0

    # -- invalidation ------------------------------------------------------

    def evict(self, key: int) -> bool:
        """Exact invalidation (the owner's put/delete hook)."""
        with self._lock:
            entry = self._data.pop(key, None)
            if entry is None:
                return False
            self._size -= entry[0].nbytes
            self._generation += 1
            self._stale_bytes = 0
            self._stats.inc("invalidations")
            self._sync_gauges()
            return True

    def invalidate_all(self) -> None:
        """Wholesale invalidation (compaction, log replacement)."""
        with self._lock:
            self._stats.inc("invalidations", len(self._data))
            self._data.clear()
            self._size = 0
            self._stale_bytes = 0
            self._floor = 0
            self._generation += 1
            self._snapshot = None
            self._member_view = None
            self._sync_gauges()

    def set_capacity(self, capacity_bytes: int) -> None:
        """Resize the budget (the tuner's knob); sheds if shrinking."""
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        with self._lock:
            self.capacity_bytes = int(capacity_bytes)
            if self._size > self.capacity_bytes:
                self._evict_coldest_locked()
            self._sync_gauges()
