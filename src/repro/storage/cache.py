"""A small LRU block cache.

The paper's setting keeps vertex codes in memory while adjacency data
lives on disk (RocksDB).  RocksDB fronts reads with a block cache; our
KV store does the same with this LRU so that "hot" adjacency lists do
not hit disk twice and cache statistics can be reported by benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LRUCache"]

#: Distinguishes "key absent" from a cached falsy value in one lookup.
_MISSING = object()


class LRUCache:
    """Least-recently-used cache with a byte-size capacity.

    Values must expose ``len()`` (bytes / lists both work).  An entry
    larger than the whole capacity cannot be cached: ``put`` drops it
    *and* evicts any stale value already stored under the key, so the
    cache never serves an outdated version of an oversized record.
    ``evictions`` counts every entry displaced by capacity pressure or
    an oversized overwrite (not explicit :meth:`evict` calls);
    ``invalidations`` counts entries dropped deliberately by
    :meth:`evict` and :meth:`clear` (updates, deletes, compaction),
    so degraded-mode reports can separate churn from pressure.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._data: OrderedDict[object, object] = OrderedDict()
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_bytes(self) -> int:
        return self._size

    def get(self, key):
        """Return the cached value or None; updates recency and stats."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting LRU entries as needed."""
        value_size = len(value)
        if value_size > self.capacity_bytes:
            # Uncacheable: drop the stale entry rather than serve it.
            if key in self._data:
                self._size -= len(self._data[key])
                del self._data[key]
                self.evictions += 1
            return
        if key in self._data:
            self._size -= len(self._data[key])
            del self._data[key]
        self._data[key] = value
        self._size += value_size
        while self._size > self.capacity_bytes:
            _, evicted = self._data.popitem(last=False)
            self._size -= len(evicted)
            self.evictions += 1

    def evict(self, key) -> bool:
        """Drop ``key`` if present (used on updates/deletes)."""
        if key in self._data:
            self._size -= len(self._data[key])
            del self._data[key]
            self.invalidations += 1
            return True
        return False

    def clear(self) -> None:
        self.invalidations += len(self._data)
        self._data.clear()
        self._size = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for benchmark reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._data),
            "size_bytes": self._size,
        }
