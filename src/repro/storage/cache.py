"""A small LRU block cache.

The paper's setting keeps vertex codes in memory while adjacency data
lives on disk (RocksDB).  RocksDB fronts reads with a block cache; our
KV store does the same with this LRU so that "hot" adjacency lists do
not hit disk twice and cache statistics can be reported by benchmarks.

Counters live in the metrics registry (one ``cache=<scope>`` label per
instance, see :mod:`repro.obs`); the historical ``hits`` / ``misses``
/ ``evictions`` / ``invalidations`` attributes remain readable as
live views over those series.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..devtools.witness import wrap_lock
from ..obs import CacheStats

__all__ = ["LRUCache"]

#: Distinguishes "key absent" from a cached falsy value in one lookup.
_MISSING = object()


def _sizeof(value) -> int:
    """Billable byte size of a cached value.

    ``len()`` is correct for ``bytes``/``bytearray``/lists but counts
    *elements* for an ndarray — a cached ``uint32`` adjacency array
    would be billed at a quarter of its real footprint (and an
    ``nbytes``-oversized array could pass the capacity check on its
    element count).  Buffers that know their byte size (``ndarray``,
    ``memoryview``) are billed by ``nbytes``; everything else keeps the
    historical ``len()`` accounting.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return len(value)


class LRUCache:
    """Least-recently-used cache with a byte-size capacity.

    Values must expose ``nbytes`` (ndarrays, memoryviews) or ``len()``
    (bytes / lists); see :func:`_sizeof`.  An entry
    larger than the whole capacity cannot be cached: ``put`` drops it
    *and* evicts any stale value already stored under the key, so the
    cache never serves an outdated version of an oversized record.
    ``evictions`` counts every entry displaced by capacity pressure or
    an oversized overwrite (not explicit :meth:`evict` calls);
    ``invalidations`` counts entries dropped deliberately by
    :meth:`evict` and :meth:`clear` (updates, deletes, compaction),
    so degraded-mode reports can separate churn from pressure.

    The cache is thread-safe: ``get``/``put``/``evict``/``clear`` hold
    an ``RLock`` around the OrderedDict and size bookkeeping, because
    shard-parallel query execution probes one cache from several pool
    threads at once (it is the only shared mutable hot-path structure
    that had no lock; the metrics registry already has its own).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self._lock = wrap_lock(threading.RLock(), "LRUCache._lock")
        self._data: OrderedDict[object, object] = OrderedDict()  # guarded-by: self._lock
        self._size = 0  # guarded-by: self._lock
        self._stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_bytes(self) -> int:
        return self._size

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    @property
    def evictions(self) -> int:
        return self._stats.evictions

    @property
    def invalidations(self) -> int:
        return self._stats.invalidations

    def _sync_gauges(self) -> None:
        self._stats.set_gauge("entries", len(self._data))
        self._stats.set_gauge("size_bytes", self._size)

    def get(self, key):
        """Return the cached value or None; updates recency and stats."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._stats.inc("misses")
                return None
            self._data.move_to_end(key)
            self._stats.inc("hits")
            return value

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting LRU entries as needed."""
        value_size = _sizeof(value)
        with self._lock:
            if value_size > self.capacity_bytes:
                # Uncacheable: drop the stale entry rather than serve it.
                if key in self._data:
                    self._size -= _sizeof(self._data[key])
                    del self._data[key]
                    self._stats.inc("evictions")
                    self._sync_gauges()
                return
            if key in self._data:
                self._size -= _sizeof(self._data[key])
                del self._data[key]
            self._data[key] = value
            self._size += value_size
            while self._size > self.capacity_bytes:
                _, evicted = self._data.popitem(last=False)
                self._size -= _sizeof(evicted)
                self._stats.inc("evictions")
            self._sync_gauges()

    def evict(self, key) -> bool:
        """Drop ``key`` if present (used on updates/deletes)."""
        with self._lock:
            if key in self._data:
                self._size -= _sizeof(self._data[key])
                del self._data[key]
                self._stats.inc("invalidations")
                self._sync_gauges()
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._stats.inc("invalidations", len(self._data))
            self._data.clear()
            self._size = 0
            self._sync_gauges()

    def hit_rate(self) -> float:
        total = self._stats.hits + self._stats.misses
        return self._stats.hits / total if total else 0.0

    def stats(self) -> dict[str, int]:
        """Counter snapshot for benchmark reporting."""
        return {
            "hits": self._stats.hits,
            "misses": self._stats.misses,
            "evictions": self._stats.evictions,
            "invalidations": self._stats.invalidations,
            "entries": len(self._data),
            "size_bytes": self._size,
        }
