"""Replica shards: primary + R copies with read failover and repair.

A single fault-latched segment used to degrade a sharded store forever:
``degraded`` latched True and there was no recovery path short of
rebuilding the deployment.  :class:`ReplicatedShard` gives each shard
the failover story a serving layer needs:

- **Writes** are applied synchronously to the primary *and* every
  healthy replica, so any copy can serve the latest write
  (read-your-writes holds on failover by construction).
- **Reads** go to the active copy — normally the primary.  When the
  active copy has latched ``degraded`` (a
  :class:`~repro.storage.faults.FaultInjectingKVStore` that needed
  retries), or a read raises after exhausting its retries, the shard
  **fails over** to the next healthy copy and re-serves the read there.
  Each failover increments the ``repro_shard_failovers_total`` counter.
- **Repair** resynchronizes stale or failed copies record-by-record
  from the active copy, clears their fault latches, and **reinstates**
  the home primary as the active copy.  ``reset_degraded()`` is the
  operational entry point — the aggregate reset the sharded store and
  ``VendGraphDB`` expose routes here.

Copies that miss a write (their ``put`` raised) are marked *stale* and
are never failed over to until repaired: a replica may be behind, but a
serving copy never is.

``KeyError`` (a vertex that simply is not stored) is domain behaviour,
not a fault — it propagates without touching the failover machinery.
"""

from __future__ import annotations

import logging

import numpy as np

from ..obs import ReadReceipt, StatsView, StorageStats
from .faults import SimulatedCrashError
from .graphstore import GraphStore

__all__ = ["ReplicationStats", "ReplicatedShard"]

logger = logging.getLogger(__name__)

#: Exception classes that mean "this copy is failing", as opposed to
#: domain errors (KeyError) that must propagate to the caller.
_COPY_FAILURES = (OSError, SimulatedCrashError)


class ReplicationStats(StatsView):
    """Failover/repair bookkeeping for one replicated shard.

    The counter Prometheus name for ``failovers`` is
    ``repro_shard_failovers_total`` — the gauge dashboards alert on.
    """

    _PREFIX = "repro_shard"
    _SCOPE = "replica_set"
    _COUNTERS = ("failovers", "failed_reads", "failed_writes", "repairs",
                 "reinstatements")
    _GAUGES = ("active_copy", "healthy_copies")
    _HELP = {
        "failovers": "Reads moved to another copy after the active one "
                     "degraded or failed",
        "failed_reads": "Read attempts a copy failed with an IO error",
        "failed_writes": "Write attempts a copy failed with an IO error",
        "repairs": "Copies resynchronized from the active copy",
        "reinstatements": "Times the home primary was reinstated as "
                          "the active copy",
        "active_copy": "Index of the copy currently serving reads "
                       "(0 = home primary)",
        "healthy_copies": "Copies that are neither failed nor stale",
    }


class ReplicatedShard:
    """One shard as a primary + R replica ``GraphStore`` copies.

    Implements the segment-facing slice of the ``GraphStore`` interface
    (half-edge updates, adjacency reads, the blob-native batched probe,
    flush/close/stats), so it drops into
    :class:`~repro.storage.sharding.ShardedGraphStore` wherever a bare
    segment would go.

    Parameters
    ----------
    copies:
        ``[primary, replica_1, ..., replica_R]``.  Index 0 is the home
        primary; it is preferred whenever healthy and is reinstated by
        :meth:`repair`.
    shard:
        Label for the stats scope (purely observational).
    """

    #: Duck-typing flag: the process executor and config validators use
    #: this to reject replicated segments where they cannot be served.
    is_replicated = True

    def __init__(self, copies: list[GraphStore], shard: int | str = "?"):
        if not copies:
            raise ValueError("a replicated shard needs at least one copy")
        self._copies = list(copies)
        self._active = 0
        self._failed = [False] * len(copies)
        self._stale = [False] * len(copies)
        self.replication_stats = ReplicationStats(shard=str(shard))
        self._update_gauges()

    # -- introspection -----------------------------------------------------

    @property
    def copies(self) -> list[GraphStore]:
        """All copies, home primary first (exposed for tests/repair)."""
        return self._copies

    @property
    def num_replicas(self) -> int:
        return len(self._copies) - 1

    @property
    def active_copy(self) -> int:
        """Index of the copy currently serving reads."""
        return self._active

    @property
    def primary(self) -> GraphStore:
        return self._copies[0]

    @property
    def stats(self) -> StorageStats:
        """The active copy's physical I/O counters."""
        return self._copies[self._active].stats

    @property
    def _kv(self):
        """Active copy's KV store (aggregate compression-ratio hook)."""
        return self._copies[self._active]._kv

    @property
    def degraded(self) -> bool:
        """True while *any* copy needs attention (failed, stale, or its
        backing store latched a fault) — the repair-me signal, even
        when failover keeps reads healthy."""
        return (any(self._failed) or any(self._stale)
                or any(copy.degraded for copy in self._copies))

    def _healthy(self, idx: int) -> bool:
        return not self._failed[idx] and not self._stale[idx]

    def _update_gauges(self) -> None:
        stats = self.replication_stats
        stats.set_gauge("active_copy", self._active)
        stats.set_gauge("healthy_copies",
                        sum(self._healthy(i)
                            for i in range(len(self._copies))))

    # -- failover ----------------------------------------------------------

    def _fail_over(self, idx: int, mark_failed: bool = True) -> bool:
        """Move the active role off copy ``idx``; True when it moved."""
        if mark_failed:
            self._failed[idx] = True
        candidates = [i for i in range(len(self._copies))
                      if i != idx and self._healthy(i)
                      and not self._copies[i].degraded]
        if not candidates:
            # Last resort: a stale-free copy that merely latched
            # degraded still has every write; serve from it.
            candidates = [i for i in range(len(self._copies))
                          if i != idx and self._healthy(i)]
        if not candidates:
            self._update_gauges()
            return False
        self._active = candidates[0]
        self.replication_stats.inc("failovers")
        self._update_gauges()
        logger.warning("shard failover: copy %d -> copy %d", idx,
                       self._active)
        return True

    def _read(self, op: str, *args, **kwargs):
        """Serve a read from the active copy, failing over on faults."""
        active = self._active
        if self._copies[active].degraded:
            # Proactive failover: the active copy latched `degraded`
            # (it needed retries); move reads off it before they pay
            # the retry tax or fail outright.
            self._fail_over(active)
        last_exc: Exception | None = None
        for _ in range(len(self._copies)):
            idx = self._active
            try:
                return getattr(self._copies[idx], op)(*args, **kwargs)
            except _COPY_FAILURES as exc:
                last_exc = exc
                self.replication_stats.inc("failed_reads")
                if not self._fail_over(idx):
                    break
        raise last_exc  # every copy failed: surface the fault

    def _write(self, op: str, *args):
        """Apply a write to every serving copy (read-your-writes).

        A copy whose write raises is marked stale (it missed the write)
        and, if it was active, the active role fails over.  The write
        succeeds as long as at least one copy took it.
        """
        result = None
        applied = False
        last_exc: Exception | None = None
        for idx, copy in enumerate(self._copies):
            if self._failed[idx] or self._stale[idx]:
                self._stale[idx] = True  # missed this write too
                continue
            try:
                outcome = getattr(copy, op)(*args)
            except _COPY_FAILURES as exc:
                last_exc = exc
                self.replication_stats.inc("failed_writes")
                self._stale[idx] = True
                if idx == self._active:
                    self._fail_over(idx)
                else:
                    self._failed[idx] = True
                    self._update_gauges()
                continue
            if not applied:
                result = outcome
                applied = True
        if not applied:
            raise last_exc if last_exc is not None else OSError(
                "no serving copy available")
        return result

    # -- repair / reinstate ------------------------------------------------

    def repair(self) -> int:
        """Resync every failed/stale/degraded copy from the active one.

        Returns the number of copies repaired.  After the sweep the
        home primary is reinstated as the active copy when healthy.
        A copy whose backing store is still failing stays marked and
        is skipped — call again once the fault clears.

        Locking contract (DESIGN.md §14): the shard itself has no
        lock — callers must exclude writers for the duration.  The
        sharded store does so by fanning out ``reset_degraded()``
        under the exclusive side of its reshard lock, accepting the
        resync's fsync latency there on purpose: a copy resynced
        while writes were admitted would be marked clean with writes
        it never saw, and a later failover would serve unsound
        answers.
        """
        source = self._copies[self._active]
        repaired = 0
        for idx, copy in enumerate(self._copies):
            if idx == self._active:
                continue
            needs = (self._failed[idx] or self._stale[idx]
                     or copy.degraded)
            if not needs:
                continue
            try:
                self._resync(source, copy)
            except _COPY_FAILURES as exc:
                logger.warning("repair of copy %d failed: %s", idx, exc)
                self._failed[idx] = True
                continue
            copy.reset_degraded()
            self._failed[idx] = self._stale[idx] = False
            self.replication_stats.inc("repairs")
            repaired += 1
        # The active copy served every write; its degraded latch is
        # historical once the operator asks for repair.
        source.reset_degraded()
        if self._active != 0 and self._healthy(0):
            self._active = 0
            self.replication_stats.inc("reinstatements")
            logger.info("home primary reinstated as the active copy")
        self._update_gauges()
        return repaired

    @staticmethod
    def _resync(source: GraphStore, target: GraphStore) -> None:
        """Make ``target`` record-identical to ``source``."""
        live = set(source.vertices())
        for v in list(target.vertices()):
            if v not in live:
                target.remove_vertex_record(v)
        for v in live:
            target.put_neighbors(v, source.get_neighbors(v))
        target.flush(sync=True)

    def reset_degraded(self) -> None:
        """Operational recovery: repair stale copies, clear every fault
        latch, reinstate the primary.  The sharded store's aggregate
        ``reset_degraded()`` fans out to this per shard."""
        self.repair()

    # -- reads -------------------------------------------------------------

    def get_neighbors(self, v: int,
                      receipt: ReadReceipt | None = None) -> list[int]:
        return self._read("get_neighbors", v, receipt=receipt)

    def get_neighbors_array(self, v: int,
                            receipt: ReadReceipt | None = None) -> np.ndarray:
        return self._read("get_neighbors_array", v, receipt=receipt)

    def get_neighbors_many(self, vertices,
                           receipt: ReadReceipt | None = None):
        return self._read("get_neighbors_many", vertices, receipt=receipt)

    def has_vertex(self, v: int) -> bool:
        return self._read("has_vertex", v)

    def has_edge(self, u: int, v: int,
                 receipt: ReadReceipt | None = None) -> bool:
        return self._read("has_edge", u, v, receipt=receipt)

    def probe_edges(self, us, vs,
                    receipt: ReadReceipt | None = None) -> np.ndarray:
        return self._read("probe_edges", us, vs, receipt=receipt)

    def vertices(self):
        # Key enumeration is in-memory index state — no disk access,
        # so no failover path is needed.
        return self._copies[self._active].vertices()

    @property
    def num_vertices(self) -> int:
        return self._copies[self._active].num_vertices

    # -- writes ------------------------------------------------------------

    def put_neighbors(self, v: int, neighbors: list[int]) -> None:
        self._write("put_neighbors", v, neighbors)

    def insert_half_edge(self, a: int, b: int) -> bool:
        return self._write("insert_half_edge", a, b)

    def remove_half_edge(self, a: int, b: int) -> bool:
        return self._write("remove_half_edge", a, b)

    def remove_vertex_record(self, v: int) -> bool:
        return self._write("remove_vertex_record", v)

    # -- lifecycle ---------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        for idx, copy in enumerate(self._copies):
            if self._failed[idx]:
                continue
            try:
                copy.flush(sync)
            except _COPY_FAILURES as exc:
                logger.warning("flush of copy %d failed: %s", idx, exc)
                self._failed[idx] = True
        self._update_gauges()

    def close(self) -> None:
        for copy in self._copies:
            try:
                copy.close()
            except _COPY_FAILURES as exc:  # crashed copies close noisily
                logger.warning("close of a shard copy failed: %s", exc)

    def __enter__(self) -> "ReplicatedShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
