"""Shared-memory publication for process-parallel query execution.

The process executor in :class:`~repro.apps.edge_query.ParallelEdgeQueryEngine`
has to hand each worker two large read-only structures: the NDF solution
(VEND code arrays) and each shard's packed-read index mirror.  Pickling
those into every task would copy megabytes per batch and burn the GIL
escape we bought.  Instead the coordinator publishes each object ONCE:

- :class:`SharedObject` pickles the object with protocol 5 so every
  contiguous buffer (numpy arrays, bytes) travels *out-of-band*, lays
  the buffers back to back in one
  :class:`multiprocessing.shared_memory.SharedMemory` block, and keeps
  only a small picklable ``meta`` dict (block name + in-band payload +
  buffer spans + role + generation).
- Workers call :func:`attach_shared` with that meta.  The block is
  mapped once per process, the object is rebuilt with **read-only**
  memoryviews into the mapping (``memoryview.toreadonly``), and the
  result is cached per ``role`` until the coordinator publishes a new
  generation.  Re-sending the same meta is therefore nearly free: a
  dict compare, no copies.

Generations make staleness explicit: the coordinator bumps the
generation (derived from ``DiskKVStore.mutation_count`` for shard
state, a monotone counter for the filter) whenever the underlying
object changes, publishes a fresh block, and unlinks the old one.
Workers notice the generation/name change on the next task and
re-attach.

:class:`MappedShardReader` is the worker-side storage client: it mmaps
the shard's log read-only and serves membership probes straight off
the page cache with the same two kernels the in-process read path
uses (:func:`~repro.storage.kvstore.assemble_packed` and
:func:`~repro.storage.graphstore.membership_sweep`).  It does NOT
verify CRCs — the coordinator's store owns arming/validation, and a
worker that read a torn record would fail structurally in blob
decoding; detached re-verification would double-count
``checksum_failures`` and is deliberately out of scope.
"""

from __future__ import annotations

import mmap
import pickle
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .graphstore import membership_sweep
from .hotcache import HotSetCache
from .kvstore import assemble_packed

__all__ = [
    "SharedObject",
    "attach_shared",
    "attach_shard_reader",
    "close_worker_attachments",
    "MappedShardReader",
]


class SharedObject:
    """An object published once into shared memory, attachable by workers.

    ``meta`` is the small picklable handle to ship with each task.  The
    publisher must keep this instance alive while workers may attach
    and call :meth:`close` when the generation is superseded (the block
    is unlinked; workers already attached keep their mapping alive
    until they drop it — POSIX shm semantics).
    """

    def __init__(self, obj, role: str, generation: int):
        buffers: list[pickle.PickleBuffer] = []
        payload = pickle.dumps(obj, protocol=5,
                               buffer_callback=buffers.append)
        raws = [buf.raw() for buf in buffers]  # 1-d, format "B", contiguous
        spans = []
        pos = 0
        for raw in raws:
            spans.append((pos, raw.nbytes))
            pos += raw.nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=max(pos, 1))
        view = self._shm.buf
        for (off, size), raw in zip(spans, raws):
            view[off:off + size] = raw
        for buf in buffers:
            buf.release()
        self.meta = {
            "name": self._shm.name,
            "payload": payload,
            "spans": spans,
            "role": role,
            "generation": generation,
        }

    def close(self) -> None:
        """Unlink the block.  Safe to call more than once."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        try:
            self._shm.close()
        except BufferError:
            # A local attach_shared() in-process (tests) still holds
            # views; the mapping is abandoned to the GC.
            _abandon(self._shm)


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    Workers must not register attachments with the resource tracker:
    spawn children share the coordinator's tracker process, so a
    worker registering (or later unregistering) a name it does not own
    corrupts the tracker's books and the creator's eventual ``unlink``
    hits a tracker KeyError.  Python 3.13 has ``track=False``; older
    versions get register suppressed around the constructor.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _abandon(shm: shared_memory.SharedMemory) -> None:
    """Give a mapping with live exported views to the GC, quietly.

    ``SharedMemory.close`` raises ``BufferError`` while numpy views
    into the buffer are alive, and its ``__del__`` retries the close
    at collection time — printing "Exception ignored" noise.  Null the
    close so the mapping is simply released when the last view dies.
    """
    shm.close = lambda: None


#: Per-process attachment cache: role -> (generation, name, shm, object).
_ATTACHED: dict[str, tuple[int, str, shared_memory.SharedMemory, object]] = {}


def attach_shared(meta: dict):
    """Reconstruct (and cache) a published object in this process.

    The rebuilt object views the shared block through read-only
    memoryviews — numpy arrays come back with ``WRITEABLE=False``, so
    a worker that tries to mutate published state fails loudly instead
    of corrupting its siblings.
    """
    role = meta["role"]
    cached = _ATTACHED.get(role)
    if (cached is not None and cached[0] == meta["generation"]
            and cached[1] == meta["name"]):
        return cached[3]
    if cached is not None:
        _drop_attachment(role)
    shm = _open_untracked(meta["name"])
    # The rebuilt object's arrays view shm.buf for as long as callers
    # keep them, so an eager close would always hit BufferError; let
    # the GC unmap when the last view dies instead.
    _abandon(shm)
    buffers = [shm.buf[off:off + size].toreadonly()
               for off, size in meta["spans"]]
    obj = pickle.loads(meta["payload"], buffers=buffers)
    _ATTACHED[role] = (meta["generation"], meta["name"], shm, obj)
    return obj


def _drop_attachment(role: str) -> None:
    # The mapping was abandoned to the GC at attach time; forgetting
    # the cache entry is all that is needed here.
    _ATTACHED.pop(role)


#: Per-process reader cache: role -> (generation, name, reader).
_READERS: dict[str, tuple[int, str, "MappedShardReader"]] = {}


def attach_shard_reader(meta: dict) -> "MappedShardReader":
    """Attach a published shard state and wrap it in a cached reader.

    The reader (and its mmap) is rebuilt only when the coordinator
    publishes a new generation; steady-state batches reuse the open
    mapping.
    """
    role = meta["role"]
    cached = _READERS.get(role)
    if (cached is not None and cached[0] == meta["generation"]
            and cached[1] == meta["name"]):
        return cached[2]
    if cached is not None:
        cached[2].close()
        del _READERS[role]
    state = attach_shared(meta)
    reader = MappedShardReader(state)
    _READERS[role] = (meta["generation"], meta["name"], reader)
    return reader


def close_worker_attachments() -> None:
    """Drop every cached attachment (tests; worker shutdown hooks)."""
    for role in list(_READERS):
        _gen, _name, reader = _READERS.pop(role)
        reader.close()
    for role in list(_ATTACHED):
        _drop_attachment(role)


class MappedShardReader:
    """Read-only, mmap-backed membership prober for one shard log.

    Built worker-side from the dict :meth:`DiskKVStore.export_packed_state`
    publishes: log path plus the sorted ``(keys, offs, szs, rtypes,
    rawszs)`` index mirror.  The published generation equals the
    store's ``mutation_count`` at export, so the mapped bytes the
    index references are immutable for this reader's lifetime — the
    coordinator republishes (new generation, new block) before any
    further append or compaction is visible to workers.
    """

    def __init__(self, state: dict):
        self.keys = state["keys"]
        self.offs = state["offs"]
        self.szs = state["szs"]
        self.rtypes = state["rtypes"]
        self.rawszs = state["rawszs"]
        self._file = open(state["path"], "rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0,
                               access=mmap.ACCESS_READ)
        self._view = np.frombuffer(self._mmap, dtype=np.uint8)
        # Worker-side decoded-blob hot cache (the process executor's
        # counterpart of the coordinator's kv-level cache).  Its
        # lifetime is the reader's: the coordinator republishes on any
        # mutation_count change, the stale reader is closed, and a
        # fresh one starts cold — generation-keyed invalidation with
        # no extra protocol.  Budget travels in the published state.
        hot_bytes = int(state.get("hot_cache_bytes", 0) or 0)
        self._hot = HotSetCache(hot_bytes) if hot_bytes > 0 else None

    def probe(self, unique_us: np.ndarray, group: np.ndarray,
              vs: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Membership verdicts for ``(unique_us[group[i]], vs[i])`` pairs.

        Returns ``(verdicts, n_records, n_bytes)`` where the trailing
        pair is the logical read accounting the coordinator books into
        the segment's ``StorageStats`` (one read per unique left
        endpoint, stored bytes — identical to what the in-process
        packed tier would have booked).  The hot cache changes only
        where decoded bytes come from, never the accounting, so stats
        stay bitwise identical to thread mode and to hot-off runs.
        """
        pos = np.searchsorted(self.keys, unique_us)
        pos = np.minimum(pos, max(len(self.keys) - 1, 0))
        if len(self.keys) == 0 or not np.array_equal(self.keys[pos],
                                                     unique_us):
            missing = (unique_us if len(self.keys) == 0
                       else unique_us[self.keys[pos] != unique_us])
            raise KeyError(f"vertices {sorted(missing.tolist())} "
                           f"are not stored")
        offs = self.offs[pos]
        szs = self.szs[pos].astype(np.int64)
        rtypes = self.rtypes[pos]
        rawszs = self.rawszs[pos].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(rawszs)[:-1]))
        out = np.empty(int(rawszs.sum()), dtype=np.uint8)
        hot = self._hot
        if hot is not None:
            hot.observe(unique_us[group])  # raw pre-dedup stream
            served = hot.fill_hits(unique_us, rawszs, out, starts)
            if served is not None and served[0].any():
                hit = served[0]
                if not hit.all():
                    cold = np.flatnonzero(~hit)
                    assemble_packed(self._view, offs[cold], szs[cold],
                                    rtypes[cold], rawszs[cold], out,
                                    starts[cold])
                    hot.admit(unique_us[cold], out, starts[cold],
                              rawszs[cold], szs[cold])
            else:
                assemble_packed(self._view, offs, szs, rtypes, rawszs,
                                out, starts)
                hot.admit(unique_us, out, starts, rawszs, szs)
        else:
            assemble_packed(self._view, offs, szs, rtypes, rawszs, out,
                            starts)
        verdicts = membership_sweep(out, rawszs // 4, group, vs)
        return verdicts, len(unique_us), int(szs.sum())

    def close(self) -> None:
        try:
            self._mmap.close()
        except BufferError:
            pass
        self._file.close()
