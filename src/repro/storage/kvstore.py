"""File-backed key-value store (the RocksDB stand-in).

Design: an append-only data log plus an in-memory key → (offset, size,
crc) index, the classic log-structured layout.  Every ``get`` that
misses the block cache performs a real ``seek`` + ``read`` against the
file and is counted in :class:`StorageStats` — those counters are what
the paper's Fig. 9 experiment is about (VEND exists to avoid exactly
these reads).

Crash safety (DESIGN.md §8).  New logs use the **v2 record format**:
an 8-byte file magic followed by self-checking frames::

    [type:1][key:int64][length:uint32][crc32:uint32][payload]

``crc32`` covers the frame header (minus itself) plus the payload, so
a torn write — a record whose tail never reached the disk before a
crash — fails either the structural bounds check or the checksum.
Replay truncates the log back to the last intact record boundary and
logs a recovery warning instead of indexing bytes that don't exist.
Tombstones are an explicit record type, not a length sentinel.

Logs written by the previous (v1) format — ``<qI`` header, payload,
``0xFFFFFFFF`` length as the tombstone sentinel — are still replayed
(with bounds-checked torn-tail truncation); a legacy log keeps
appending v1 records until :meth:`DiskKVStore.compact` rewrites it,
which always emits v2 and is itself atomic (temp file + fsync +
``os.replace``).

``InMemoryKVStore`` implements the same interface (including the
block cache and its statistics) for fast unit tests.
"""

from __future__ import annotations

import logging
import operator
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..obs import ReadReceipt, StorageStats, default_tracer
from .cache import LRUCache

__all__ = [
    "StorageStats",
    "DiskKVStore",
    "InMemoryKVStore",
    "CorruptRecordError",
    "LOG_MAGIC",
    "MAX_VALUE_BYTES",
]

logger = logging.getLogger(__name__)

#: 8-byte magic that opens every v2 log file.
LOG_MAGIC = b"RKVLOG2\x00"

_HEADER_V1 = struct.Struct("<qI")  # key (int64), value length (uint32)
_V1_TOMBSTONE = 0xFFFFFFFF  # v1 length sentinel (collides with real 2^32-1)

_FRAME = struct.Struct("<BqII")  # type, key, length, crc32
_CRC_PREFIX = struct.Struct("<BqI")  # the frame fields the crc covers
_REC_PUT = 0x01
_REC_TOMBSTONE = 0x02

#: Largest storable value.  The v1 tombstone sentinel occupies length
#: 2^32-1, so any value whose length would reach the sentinel is
#: rejected in *both* formats to keep logs mutually unambiguous.
MAX_VALUE_BYTES = _V1_TOMBSTONE - 1

#: Multi-get read coalescing: two offset-adjacent records whose gap is
#: at most this many bytes are fetched with one ``pread`` spanning both.
#: A page-sized gap deliberately over-reads records that sit between two
#: requested ones — sequential bytes from the page cache are far cheaper
#: than the fixed cost of an extra read, the same trade RocksDB MultiGet
#: makes with its readahead window.
_SPAN_GAP_BYTES = 4096
#: Upper bound on one coalesced span, so a huge multi-get cannot demand
#: an unbounded single allocation.
_SPAN_MAX_BYTES = 1 << 20


class CorruptRecordError(RuntimeError):
    """A stored record failed its checksum or size validation."""


def _record_crc(rtype: int, key: int, payload: bytes) -> int:
    """CRC32 over the frame header (minus the crc field) + payload."""
    return zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(rtype, key, len(payload))))


def _encode_frame(rtype: int, key: int, payload: bytes = b"") -> bytes:
    crc = _record_crc(rtype, key, payload)
    return _FRAME.pack(rtype, key, len(payload), crc) + payload


def _check_value_size(size: int) -> None:
    """Reject values whose length collides with the v1 tombstone sentinel."""
    if size > MAX_VALUE_BYTES:
        raise ValueError(
            f"value of {size} bytes exceeds the {MAX_VALUE_BYTES}-byte "
            f"maximum (length 0x{_V1_TOMBSTONE:X} is the tombstone sentinel)"
        )


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DiskKVStore:
    """Append-only log store with integer keys and bytes values.

    Parameters
    ----------
    path:
        Backing file.  Created if absent; an existing log is replayed to
        rebuild the index.  Torn or corrupt tails are truncated back to
        the last intact record (crash recovery).
    cache_bytes:
        Block-cache capacity; 0 disables caching entirely so every read
        hits the file (useful when benchmarks must observe raw I/O).
    verify_reads:
        When True (default), every physical read of a v2 record is
        re-checksummed and a mismatch raises :class:`CorruptRecordError`
        (RocksDB verifies block checksums on read the same way).
    """

    def __init__(self, path: str | Path, cache_bytes: int = 0,
                 verify_reads: bool = True):
        self.path = Path(path)
        self.stats = StorageStats()
        self.verify_reads = verify_reads
        # key -> (payload offset, payload size, frame crc32 or None for v1)
        self._index: dict[int, tuple[int, int, int | None]] = {}
        # Sorted-array mirror of ``_index`` for vectorized multi-get:
        # (keys, offsets, sizes, crc-armed) as numpy arrays, rebuilt
        # lazily after any index mutation (``None`` = stale).
        self._vindex: tuple[np.ndarray, np.ndarray, np.ndarray,
                            np.ndarray] | None = None
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a+b")
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() == 0:
            self._format = 2
            self._file.write(LOG_MAGIC)
            self._file.flush()
        else:
            self._replay()
        # One read descriptor held open for the store's whole life:
        # every record read is an ``os.pread`` against it, which (a)
        # never reopens or seeks per block, and (b) carries its own
        # offset, so concurrent readers (shard-pool threads) cannot
        # corrupt each other's file position.  Appends keep using the
        # buffered ``self._file``; ``_pending_flush`` marks buffered
        # bytes the next read must flush before they become visible.
        self._read_fd = os.open(self.path, os.O_RDONLY)
        self._pending_flush = False

    # -- public API --------------------------------------------------------

    @property
    def format_version(self) -> int:
        """2 for checksummed logs, 1 for legacy logs (until compacted)."""
        return self._format

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def keys(self):
        return self._index.keys()

    def encode_put_record(self, key: int, value: bytes) -> bytes:
        """The exact bytes :meth:`put` would append for ``(key, value)``.

        Exposed so the fault injector can simulate a torn write by
        appending only a prefix of a real record.
        """
        _check_value_size(len(value))
        if self._format == 1:
            return _HEADER_V1.pack(key, len(value)) + value
        return _encode_frame(_REC_PUT, key, value)

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` under ``key`` (append + index update)."""
        _check_value_size(len(value))
        record = self.encode_put_record(key, value)
        header_size = _HEADER_V1.size if self._format == 1 else _FRAME.size
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        try:
            self._file.write(record)
        except BaseException:
            # A partial append is a self-inflicted torn tail; roll the
            # file back so later appends don't bury garbage mid-log.
            try:
                self._file.truncate(offset)
            except OSError:
                pass
            raise
        crc = None if self._format == 1 else _record_crc(_REC_PUT, key, value)
        self._index[key] = (offset + header_size, len(value), crc)
        self._vindex = None
        self._pending_flush = True
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        if self._cache is not None:
            self._cache.put(key, value)

    def _validate_record(self, key: int, offset: int, size: int,
                         crc: int | None, value: bytes) -> None:
        """Size + checksum validation shared by every read path."""
        if len(value) != size:
            self.stats.inc("checksum_failures")
            raise CorruptRecordError(
                f"key {key}: record at offset {offset} is {len(value)} bytes, "
                f"expected {size} (log truncated underneath a live index?)"
            )
        if self.verify_reads and crc is not None:
            if _record_crc(_REC_PUT, key, value) != crc:
                self.stats.inc("checksum_failures")
                raise CorruptRecordError(
                    f"key {key}: checksum mismatch at offset {offset}"
                )
            # Verify-once-per-open: the log is append-only, so this
            # (offset, size) can never be rewritten underneath us —
            # clearing the in-memory crc makes warm re-reads skip the
            # checksum, the same trade RocksDB makes by verifying
            # blocks on cache fill rather than on every hit.  A fresh
            # open rebuilds the index and re-arms every crc.
            self._index[key] = (offset, size, None)
            self._vindex = None

    def _read_record(self, key: int, offset: int, size: int,
                     crc: int | None, count: bool = True,
                     receipt: ReadReceipt | None = None) -> bytes:
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        value = os.pread(self._read_fd, size, offset)
        if count:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
        self._validate_record(key, offset, size, crc, value)
        return value

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        """Read the value for ``key`` or None; counts a disk read on miss.

        ``receipt`` receives the cache-vs-disk provenance of exactly
        this lookup, so callers can attribute I/O without diffing the
        shared counters.
        """
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        loc = self._index.get(key)
        if loc is None:
            return None
        value = self._read_record(key, *loc, receipt=receipt)
        if self._cache is not None:
            self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read: one cache pass, then file reads in offset order.

        Keys are deduplicated (a repeated key costs one lookup), the
        cache is consulted exactly once per distinct key, and the
        outstanding misses are read with ``os.pread`` against the one
        read descriptor the store holds open, sorted by file offset so
        the access pattern is one forward sweep instead of random
        seeks.  Offset-adjacent records (the common case after a
        ``bulk_load`` or a ``compact``, which write the log
        sequentially) are **coalesced**: one ``pread`` covers a whole
        run of records separated only by frame headers, and each
        payload is sliced out and validated individually — the RocksDB
        MultiGet readahead idea.  ``StorageStats`` counts exactly the
        logical activity — one cache hit/miss per distinct key, one
        disk read per uncached stored key — booked in bulk (one
        ``inc`` per counter per call, not per key), which keeps the
        counters off the batched hot path and identical whether a
        record arrived via its own syscall or a coalesced span.
        """
        result: dict[int, bytes | None] = {}
        pending: list[tuple[int, int, int | None, int]] = []
        cache_hits = cache_misses = 0
        for key in keys:
            key = int(key)
            if key in result:
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    cache_hits += 1
                    result[key] = cached
                    continue
                cache_misses += 1
            loc = self._index.get(key)
            if loc is None:
                result[key] = None
                continue
            result[key] = None  # placeholder keeps dedup exact
            pending.append((loc[0], loc[1], loc[2], key))
        if cache_hits:
            self.stats.inc("cache_hits", cache_hits)
        if cache_misses:
            self.stats.inc("cache_misses", cache_misses)
        if receipt is not None:
            receipt.count_cache_hits(cache_hits)
        pending.sort(key=lambda item: item[0])
        if self._pending_flush and pending:
            self._file.flush()
            self._pending_flush = False
        disk_reads = bytes_read = 0
        try:
            for span in self._coalesce(pending):
                start = span[0][0]
                length = span[-1][0] + span[-1][1] - start
                buffer = os.pread(self._read_fd, length, start)
                for offset, size, crc, key in span:
                    value = buffer[offset - start:offset - start + size]
                    disk_reads += 1
                    bytes_read += len(value)
                    self._validate_record(key, offset, size, crc, value)
                    if self._cache is not None:
                        self._cache.put(key, value)
                    result[key] = value
        finally:
            # Book the physical reads even when a corrupt record aborts
            # the sweep part-way: the I/O happened either way.
            if disk_reads:
                self.stats.inc("disk_reads", disk_reads)
                self.stats.inc("bytes_read", bytes_read)
                if receipt is not None:
                    receipt.count_disk_reads(disk_reads, bytes_read)
        return result

    def get_many_packed(self, keys,
                        receipt: ReadReceipt | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated payloads for ``keys``, assembled with numpy.

        Returns ``(data, lengths)``: one contiguous ``uint8`` array of
        every payload in **input key order**, plus the per-key payload
        byte counts.  Raises ``KeyError`` carrying the list of missing
        keys.  Callers pass already-deduplicated keys (the batched
        probe does); repeated keys would each pay a lookup.

        This is the batched-probe hot path.  :meth:`get_many` spends
        most of its time in per-record Python — one slice, one dict
        store, one bytes object per record — which at 10⁵ records per
        batch dwarfs the actual I/O.  Here the per-record work drops to
        the checksum validation loop; payload extraction from the
        coalesced span buffers and reordering into key order are a
        handful of whole-batch numpy gathers.  Stats and receipt
        booking are identical to :meth:`get_many` over the same keys —
        one cache hit/miss per key, one disk read per uncached stored
        key — so engines using either path book the same totals.

        Two tiers: with no block cache and every requested record
        already checksum-verified this open, the whole call is numpy
        (index lookup via ``searchsorted`` against the sorted
        ``_vindex`` mirror) with zero per-record Python.  Otherwise a
        per-record pass handles cache fills and first-touch checksums.
        """
        if self._cache is None:
            vi = self._vindex
            if vi is None:
                vi = self._vindex = self._build_vindex()
            karr = np.asarray(keys, dtype=np.int64)
            vkeys, voffs, vszs, varmed = vi
            if len(vkeys) == 0:
                if len(karr):
                    raise KeyError(sorted(set(karr.tolist())))
                empty = np.zeros(0, dtype=np.int64)
                return np.zeros(0, dtype=np.uint8), empty
            pos = np.minimum(np.searchsorted(vkeys, karr), len(vkeys) - 1)
            found = vkeys[pos] == karr
            if not found.all():
                raise KeyError(sorted(set(karr[~found].tolist())))
            if not (self.verify_reads and bool(varmed[pos].any())):
                return self._packed_vectorized(karr, voffs[pos],
                                               vszs[pos], receipt)
        n = len(keys)
        lengths_l = [0] * n
        cached_parts: list[tuple[int, bytes]] = []
        pending: list[tuple[int, int, int | None, int, int]] = []
        missing: list[int] = []
        cache_hits = cache_misses = armed = 0
        cache = self._cache
        index_get = self._index.get
        for pos, key in enumerate(keys):
            key = int(key)
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    cache_hits += 1
                    cached_parts.append((pos, cached))
                    lengths_l[pos] = len(cached)
                    continue
                cache_misses += 1
            loc = index_get(key)
            if loc is None:
                missing.append(key)
                continue
            pending.append((loc[0], loc[1], loc[2], key, pos))
            if loc[2] is not None:
                armed += 1
            lengths_l[pos] = loc[1]
        if cache_hits:
            self.stats.inc("cache_hits", cache_hits)
        if cache_misses:
            self.stats.inc("cache_misses", cache_misses)
        if receipt is not None:
            receipt.count_cache_hits(cache_hits)
        if missing:
            raise KeyError(missing)
        lengths = np.asarray(lengths_l, dtype=np.int64)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        out = np.zeros(int(lengths.sum()), dtype=np.uint8)
        disk_reads = bytes_read = 0
        if pending:
            pending.sort(key=operator.itemgetter(0))
            if self._pending_flush:
                self._file.flush()
                self._pending_flush = False
            offs = np.asarray([item[0] for item in pending], dtype=np.int64)
            szs = np.asarray([item[1] for item in pending], dtype=np.int64)
            slots = starts[np.asarray([item[4] for item in pending],
                                      dtype=np.int64)]
            ends = offs + szs
            spans = self._spans_of(offs, ends)
            verify = self.verify_reads
            crc32 = zlib.crc32
            prefix_pack = _CRC_PREFIX.pack
            index = self._index
            chunks: list[bytes] = []
            src_base = np.zeros(len(offs), dtype=np.int64)
            concat_len = 0
            # With every requested record already verified this open
            # (crc cleared) and no cache to fill, a complete span needs
            # no per-record pass at all — accounting is two vectorized
            # sums.  This is the steady state of a warm batched reader.
            fast = cache is None and (not verify or armed == 0)
            try:
                for lo, hi in spans:
                    base = int(offs[lo])
                    length = int(ends[hi - 1]) - base
                    buffer = os.pread(self._read_fd, length, base)
                    buflen = len(buffer)
                    if fast and buflen == length:
                        disk_reads += hi - lo
                        bytes_read += int(szs[lo:hi].sum())
                        chunks.append(buffer)
                        src_base[lo:hi] = concat_len - base
                        concat_len += buflen
                        continue
                    view = memoryview(buffer)
                    # Validation stays per record (each has its own
                    # stored crc) but runs flat — at 10^5 records per
                    # batch even one extra call per record is visible.
                    for offset, size, crc, key, _pos in pending[lo:hi]:
                        rel = offset - base
                        end = rel + size
                        disk_reads += 1
                        bytes_read += size
                        if end > buflen:
                            self.stats.inc("checksum_failures")
                            raise CorruptRecordError(
                                f"key {key}: record at offset {offset} "
                                f"extends past the log end (truncated "
                                f"underneath a live index?)"
                            )
                        if verify and crc is not None:
                            if crc32(
                                    view[rel:end],
                                    crc32(prefix_pack(_REC_PUT, key,
                                                      size))) != crc:
                                self.stats.inc("checksum_failures")
                                raise CorruptRecordError(
                                    f"key {key}: checksum mismatch at "
                                    f"offset {offset}"
                                )
                            # Verify-once-per-open, as _validate_record.
                            index[key] = (offset, size, None)
                            self._vindex = None
                        if cache is not None:
                            cache.put(key, bytes(view[rel:end]))
                    # Defer payload extraction: remember where this
                    # span's records land in the concatenated buffer so
                    # one global scatter-gather can place every record
                    # at once (per-span numpy calls drown in fixed cost
                    # when spans are small).
                    chunks.append(buffer)
                    src_base[lo:hi] = concat_len - base
                    concat_len += buflen
            finally:
                if disk_reads:
                    self.stats.inc("disk_reads", disk_reads)
                    self.stats.inc("bytes_read", bytes_read)
                    if receipt is not None:
                        receipt.count_disk_reads(disk_reads, bytes_read)
            # One scatter over every record read above: the source index
            # walks each record's payload inside the concatenated span
            # buffers, the target index is its key-order slot in ``out``.
            arr = np.frombuffer(b"".join(chunks), dtype=np.uint8)
            total = int(szs.sum())
            record_base = np.zeros(len(szs), dtype=np.int64)
            np.cumsum(szs[:-1], out=record_base[1:])
            within = np.arange(total, dtype=np.int64) - np.repeat(
                record_base, szs)
            out[np.repeat(slots, szs) + within] = arr[
                np.repeat(offs + src_base, szs) + within]
        for pos, blob in cached_parts:
            start = starts[pos]
            out[start:start + len(blob)] = np.frombuffer(blob,
                                                         dtype=np.uint8)
        return out, lengths

    def _build_vindex(self) -> tuple[np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
        """Materialize the sorted numpy mirror of ``_index``."""
        if not self._index:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty, np.zeros(0, dtype=bool)
        keys = np.fromiter(self._index.keys(), dtype=np.int64,
                           count=len(self._index))
        cols = list(zip(*self._index.values()))
        offs = np.asarray(cols[0], dtype=np.int64)
        szs = np.asarray(cols[1], dtype=np.int64)
        armed = np.asarray([crc is not None for crc in cols[2]],
                           dtype=bool)
        order = np.argsort(keys, kind="stable")
        return keys[order], offs[order], szs[order], armed[order]

    @staticmethod
    def _spans_of(offs: np.ndarray, ends: np.ndarray
                  ) -> list[tuple[int, int]]:
        """Coalesced-read spans over offset-sorted records.

        Returns ``[lo, hi)`` ranges into ``offs``/``ends``: a new span
        starts where the gap to the previous record exceeds
        ``_SPAN_GAP_BYTES``, and any run longer than ``_SPAN_MAX_BYTES``
        is split greedily.
        """
        new_span = np.zeros(len(offs), dtype=bool)
        new_span[0] = True
        if len(offs) > 1:
            new_span[1:] = (offs[1:] - ends[:-1]) > _SPAN_GAP_BYTES
        bounds = np.flatnonzero(new_span).tolist()
        bounds.append(len(offs))
        spans: list[tuple[int, int]] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            while int(ends[hi - 1] - offs[lo]) > _SPAN_MAX_BYTES:
                cut = int(np.searchsorted(
                    ends[lo:hi], int(offs[lo]) + _SPAN_MAX_BYTES,
                    side="right")) + lo
                cut = max(cut, lo + 1)
                spans.append((lo, cut))
                lo = cut
            spans.append((lo, hi))
        return spans

    def _packed_vectorized(self, karr: np.ndarray, offs_u: np.ndarray,
                           lengths: np.ndarray,
                           receipt: ReadReceipt | None,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Zero-per-record-Python tier of :meth:`get_many_packed`.

        Preconditions (checked by the caller): no block cache, every
        record's location resolved via ``_vindex``, and nothing left to
        checksum (``verify_reads`` off or every record verified this
        open).  Only the span loop remains in Python — a handful of
        ``pread`` calls per batch.
        """
        n = len(karr)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        out = np.zeros(int(lengths.sum()), dtype=np.uint8)
        if n == 0:
            return out, lengths
        order = np.argsort(offs_u, kind="stable")
        offs = offs_u[order]
        szs = lengths[order]
        slots = starts[order]
        ends = offs + szs
        spans = self._spans_of(offs, ends)
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        chunks: list[bytes] = []
        src_base = np.zeros(len(offs), dtype=np.int64)
        concat_len = 0
        disk_reads = bytes_read = 0
        try:
            for lo, hi in spans:
                base = int(offs[lo])
                length = int(ends[hi - 1]) - base
                buffer = os.pread(self._read_fd, length, base)
                if len(buffer) != length:
                    bad = lo + int(np.argmax(
                        ends[lo:hi] - base > len(buffer)))
                    self.stats.inc("checksum_failures")
                    raise CorruptRecordError(
                        f"key {int(karr[order[bad]])}: record at offset "
                        f"{int(offs[bad])} extends past the log end "
                        f"(truncated underneath a live index?)"
                    )
                disk_reads += hi - lo
                bytes_read += int(szs[lo:hi].sum())
                chunks.append(buffer)
                src_base[lo:hi] = concat_len - base
                concat_len += length
        finally:
            if disk_reads:
                self.stats.inc("disk_reads", disk_reads)
                self.stats.inc("bytes_read", bytes_read)
                if receipt is not None:
                    receipt.count_disk_reads(disk_reads, bytes_read)
        arr = np.frombuffer(b"".join(chunks), dtype=np.uint8)
        total = int(szs.sum())
        record_base = np.zeros(len(szs), dtype=np.int64)
        np.cumsum(szs[:-1], out=record_base[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            record_base, szs)
        out[np.repeat(slots, szs) + within] = arr[
            np.repeat(offs + src_base, szs) + within]
        return out, lengths

    @staticmethod
    def _coalesce(pending):
        """Group offset-sorted records into contiguous read spans.

        Records whose payloads are separated by at most
        ``_SPAN_GAP_BYTES`` (i.e. only a frame header apart) share one
        span; spans are capped at ``_SPAN_MAX_BYTES``.  Live records
        never overlap, so a span's length is simply last-end minus
        first-start.
        """
        span: list[tuple[int, int, int | None, int]] = []
        end = 0
        for item in pending:
            offset, size = item[0], item[1]
            if span and (offset - end > _SPAN_GAP_BYTES
                         or offset + size - span[0][0] > _SPAN_MAX_BYTES):
                yield span
                span = []
            span.append(item)
            end = offset + size
        if span:
            yield span

    def delete(self, key: int) -> bool:
        """Remove ``key``; appends a tombstone so recovery stays correct."""
        if key not in self._index:
            return False
        if self._format == 1:
            record = _HEADER_V1.pack(key, _V1_TOMBSTONE)
        else:
            record = _encode_frame(_REC_TOMBSTONE, key)
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self._pending_flush = True
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        del self._index[key]
        self._vindex = None
        if self._cache is not None:
            self._cache.evict(key)
        return True

    def flush(self, sync: bool = False) -> None:
        """Push buffered writes to the OS; ``sync=True`` also fsyncs."""
        self._file.flush()
        self._pending_flush = False
        if sync:
            os.fsync(self._file.fileno())

    def compact(self) -> int:
        """Rewrite only the live records, dropping overwritten versions
        and tombstones (the log-structured GC).  Returns bytes saved.

        The rewrite is atomic and durable: live records stream into a
        temp file (always v2, so compaction upgrades legacy logs),
        which is fsynced and then swapped in with ``os.replace``.  An
        interruption at any point leaves the original log intact and
        the store usable.
        """
        self._file.flush()
        before = self.path.stat().st_size
        compact_path = self.path.with_suffix(self.path.suffix + ".compact")
        new_index: dict[int, tuple[int, int, int | None]] = {}
        try:
            with open(compact_path, "wb") as out:
                out.write(LOG_MAGIC)
                for key in sorted(self._index):
                    offset, size, crc = self._index[key]
                    value = self._read_record(key, offset, size, crc,
                                              count=False)
                    new_crc = _record_crc(_REC_PUT, key, value)
                    new_index[key] = (out.tell() + _FRAME.size, size, new_crc)
                    out.write(_FRAME.pack(_REC_PUT, key, size, new_crc))
                    out.write(value)
                out.flush()
                os.fsync(out.fileno())
        except BaseException:
            compact_path.unlink(missing_ok=True)
            raise
        self._file.close()
        try:
            os.replace(compact_path, self.path)
        except BaseException:
            compact_path.unlink(missing_ok=True)
            self._file = open(self.path, "a+b")
            raise
        _fsync_dir(self.path.parent)
        self._file = open(self.path, "a+b")
        # The old read fd still points at the replaced (deleted) inode;
        # swap it for one on the fresh compacted log.
        os.close(self._read_fd)
        self._read_fd = os.open(self.path, os.O_RDONLY)
        self._pending_flush = False
        self._format = 2
        self._index = new_index
        self._vindex = None
        if self._cache is not None:
            self._cache.clear()
        return before - self.path.stat().st_size

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        if self._read_fd is not None:
            os.close(self._read_fd)
            self._read_fd = None

    def __enter__(self) -> "DiskKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index by scanning the log from the start.

        Dispatches on the file magic: v2 logs get full structural +
        checksum validation, legacy v1 logs get bounds validation.
        Either way a torn or corrupt tail is truncated back to the
        last intact record boundary.
        """
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        self._file.seek(0)
        prefix = self._file.read(len(LOG_MAGIC))
        if prefix == LOG_MAGIC:
            self._format = 2
            self._replay_v2(total)
        else:
            self._format = 1
            self._file.seek(0)
            self._replay_v1(total)

    def _truncate_tail(self, pos: int, reason: str) -> None:
        logger.warning(
            "recovering %s: %s; truncating torn tail at byte %d",
            self.path, reason, pos,
        )
        self._file.truncate(pos)
        self._file.flush()

    def _replay_v1(self, total: int) -> None:
        pos = 0
        while pos < total:
            header = self._file.read(_HEADER_V1.size)
            if len(header) < _HEADER_V1.size:
                self._truncate_tail(pos, "short v1 record header")
                return
            key, size = _HEADER_V1.unpack(header)
            if size == _V1_TOMBSTONE:
                self._index.pop(key, None)
                pos += _HEADER_V1.size
                continue
            offset = pos + _HEADER_V1.size
            if offset + size > total:
                self._truncate_tail(pos, "v1 record extends past EOF")
                return
            self._index[key] = (offset, size, None)
            pos = offset + size
            self._file.seek(pos)

    def _replay_v2(self, total: int) -> None:
        pos = len(LOG_MAGIC)
        while pos < total:
            header = self._file.read(_FRAME.size)
            if len(header) < _FRAME.size:
                self._truncate_tail(pos, "short v2 frame header")
                return
            rtype, key, size, crc = _FRAME.unpack(header)
            if rtype not in (_REC_PUT, _REC_TOMBSTONE):
                self._truncate_tail(pos, f"unknown record type 0x{rtype:02X}")
                return
            offset = pos + _FRAME.size
            if offset + size > total:
                self._truncate_tail(pos, "v2 record extends past EOF")
                return
            payload = self._file.read(size)
            if _record_crc(rtype, key, payload) != crc:
                self._truncate_tail(pos, f"checksum mismatch for key {key}")
                return
            if rtype == _REC_TOMBSTONE:
                self._index.pop(key, None)
            else:
                self._index[key] = (offset, size, crc)
            pos = offset + size


class InMemoryKVStore:
    """Dict-backed store with the same interface and stats semantics.

    Each ``get`` still counts as a "disk read" so application-level
    access accounting behaves identically in tests, and ``cache_bytes``
    fronts reads with the same :class:`LRUCache` path as the disk
    store, so cache-statistics tests have backend parity.
    """

    def __init__(self, cache_bytes: int = 0):
        self.stats = StorageStats()
        self._data: dict[int, bytes] = {}
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()

    def put(self, key: int, value: bytes) -> None:
        _check_value_size(len(value))
        self._data[key] = value
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(value))
        if self._cache is not None:
            self._cache.put(key, value)

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        value = self._data.get(key)
        if value is not None:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
            if self._cache is not None:
                self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read with the same dedup semantics as the disk store."""
        result: dict[int, bytes | None] = {}
        for key in keys:
            key = int(key)
            if key not in result:
                result[key] = self.get(key, receipt=receipt)
        return result

    def get_many_packed(self, keys,
                        receipt: ReadReceipt | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated payloads in key order (disk-store parity).

        Same contract and booking as
        :meth:`DiskKVStore.get_many_packed`; raises ``KeyError``
        carrying the missing-key list.
        """
        blobs: list[bytes] = []
        missing: list[int] = []
        for key in keys:
            value = self.get(int(key), receipt=receipt)
            if value is None:
                missing.append(int(key))
            else:
                blobs.append(value)
        if missing:
            raise KeyError(missing)
        lengths = np.fromiter((len(blob) for blob in blobs),
                              dtype=np.int64, count=len(blobs))
        data = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        return data, lengths

    def delete(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            self.stats.inc("disk_writes")
            if self._cache is not None:
                self._cache.evict(key)
            return True
        return False

    def flush(self, sync: bool = False) -> None:  # interface parity
        pass

    def close(self) -> None:  # interface parity
        pass

    def __enter__(self) -> "InMemoryKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
