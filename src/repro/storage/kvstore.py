"""File-backed key-value store (the RocksDB stand-in).

Design: an append-only data log plus an in-memory key → (offset, size,
crc) index, the classic log-structured layout.  Every ``get`` that
misses the block cache performs a real ``seek`` + ``read`` against the
file and is counted in :class:`StorageStats` — those counters are what
the paper's Fig. 9 experiment is about (VEND exists to avoid exactly
these reads).

Crash safety (DESIGN.md §8).  New logs use the **v2 record format**:
an 8-byte file magic followed by self-checking frames::

    [type:1][key:int64][length:uint32][crc32:uint32][payload]

``crc32`` covers the frame header (minus itself) plus the payload, so
a torn write — a record whose tail never reached the disk before a
crash — fails either the structural bounds check or the checksum.
Replay truncates the log back to the last intact record boundary and
logs a recovery warning instead of indexing bytes that don't exist.
Tombstones are an explicit record type, not a length sentinel.

Logs written by the previous (v1) format — ``<qI`` header, payload,
``0xFFFFFFFF`` length as the tombstone sentinel — are still replayed
(with bounds-checked torn-tail truncation); a legacy log keeps
appending v1 records until :meth:`DiskKVStore.compact` rewrites it,
which always emits v2 and is itself atomic (temp file + fsync +
``os.replace``).

Compression (DESIGN.md §12, the **v3 records**).  With
``compress=True`` a ``put`` whose value parses as a non-decreasing
``uint32`` adjacency blob is stored StreamVByte-delta-compressed under
one of three new record types inside the same v2 frame (so v2 and v3
records interleave freely in one log and old stores replay new logs'
prefixes): ``0x03`` single-value, ``0x04`` one-group, ``0x05``
multi-group — the type encodes the blob layout, the frame's length the
payload size, and together they determine the value count with no
per-record header bytes.  Values that don't qualify (or don't shrink)
stay raw ``0x01`` puts.  All read paths decode transparently; the
``compression_ratio`` gauge tracks live raw bytes over live stored
bytes.

mmap (``use_mmap=True``).  The packed read tier serves gathers from an
``np.frombuffer`` view of an ``mmap`` of the log — straight off the
page cache, no read syscalls, no intermediate buffer.  The map is
remapped lazily when the log grows and dropped on compaction (the old
inode dies) — exported views keep the old map alive until garbage
collected, so in-flight batches stay safe while new reads see the new
log.  Whenever the map is unavailable (fault-injection wrapper,
mid-compaction, platforms without mmap) reads fall back to
positional-read span gathers.

``InMemoryKVStore`` implements the same interface (including the
block cache and its statistics) for fast unit tests.
"""

from __future__ import annotations

import logging
import mmap
import operator
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..obs import ReadReceipt, StorageStats, default_tracer
from ..simd.streamvbyte import (
    blob_count,
    blob_layout,
    decode_blob,
    decode_blobs_packed,
    encode_blob,
)
from .cache import LRUCache
from .hotcache import HotSetCache

__all__ = [
    "StorageStats",
    "DiskKVStore",
    "InMemoryKVStore",
    "CorruptRecordError",
    "LOG_MAGIC",
    "MAX_VALUE_BYTES",
    "assemble_packed",
]

logger = logging.getLogger(__name__)

#: 8-byte magic that opens every v2 log file.
LOG_MAGIC = b"RKVLOG2\x00"

_HEADER_V1 = struct.Struct("<qI")  # key (int64), value length (uint32)
_V1_TOMBSTONE = 0xFFFFFFFF  # v1 length sentinel (collides with real 2^32-1)

_FRAME = struct.Struct("<BqII")  # type, key, length, crc32
_CRC_PREFIX = struct.Struct("<BqI")  # the frame fields the crc covers
_REC_PUT = 0x01
_REC_TOMBSTONE = 0x02
# v3 compressed-put record types: same frame, StreamVByte blob payload.
# ``rtype - _BLOB_TYPE_BASE`` is the streamvbyte blob layout
# (BLOB_SINGLE/BLOB_GROUP/BLOB_MULTI).
_REC_PUT_SVB1 = 0x03
_REC_PUT_SVBG = 0x04
_REC_PUT_SVBM = 0x05
_BLOB_TYPE_BASE = 0x02
_BLOB_RECORD_TYPES = frozenset((_REC_PUT_SVB1, _REC_PUT_SVBG, _REC_PUT_SVBM))

#: Largest storable value.  The v1 tombstone sentinel occupies length
#: 2^32-1, so any value whose length would reach the sentinel is
#: rejected in *both* formats to keep logs mutually unambiguous.
MAX_VALUE_BYTES = _V1_TOMBSTONE - 1

#: Multi-get read coalescing: two offset-adjacent records whose gap is
#: at most this many bytes are fetched with one ``pread`` spanning both.
#: A page-sized gap deliberately over-reads records that sit between two
#: requested ones — sequential bytes from the page cache are far cheaper
#: than the fixed cost of an extra read, the same trade RocksDB MultiGet
#: makes with its readahead window.
_SPAN_GAP_BYTES = 4096
#: Upper bound on one coalesced span, so a huge multi-get cannot demand
#: an unbounded single allocation.
_SPAN_MAX_BYTES = 1 << 20


class CorruptRecordError(RuntimeError):
    """A stored record failed its checksum or size validation."""


def _record_crc(rtype: int, key: int, payload: bytes) -> int:
    """CRC32 over the frame header (minus the crc field) + payload."""
    return zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(rtype, key, len(payload))))


def _encode_frame(rtype: int, key: int, payload: bytes = b"") -> bytes:
    crc = _record_crc(rtype, key, payload)
    return _FRAME.pack(rtype, key, len(payload), crc) + payload


def _check_value_size(size: int) -> None:
    """Reject values whose length collides with the v1 tombstone sentinel."""
    if size > MAX_VALUE_BYTES:
        raise ValueError(
            f"value of {size} bytes exceeds the {MAX_VALUE_BYTES}-byte "
            f"maximum (length 0x{_V1_TOMBSTONE:X} is the tombstone sentinel)"
        )


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def assemble_packed(src: np.ndarray, offs: np.ndarray, szs: np.ndarray,
                    rtypes: np.ndarray, rawszs: np.ndarray,
                    out: np.ndarray, slots: np.ndarray) -> None:
    """Scatter stored records — raw or compressed — into decoded form.

    ``src`` is any uint8 buffer (a span gather, an mmap view, a shared
    memory segment) holding record ``i``'s stored payload at
    ``offs[i]`` with stored size ``szs[i]``; its decoded bytes land at
    ``out[slots[i]:slots[i] + rawszs[i]]``.  Raw records are one
    whole-batch gather; compressed records are one
    :func:`~repro.simd.streamvbyte.decode_blobs_packed` pass.  Shared
    by the packed read tiers and the process-pool shard workers.
    """
    raw = rtypes == _REC_PUT
    if raw.any():
        all_raw = bool(raw.all())
        r_offs = offs if all_raw else offs[raw]
        r_szs = szs if all_raw else szs[raw]
        r_slots = slots if all_raw else slots[raw]
        total = int(r_szs.sum())
        base = np.zeros(len(r_szs), dtype=np.int64)
        np.cumsum(r_szs[:-1], out=base[1:])
        # Gather index: byte j of record i lives at offs[i] + j, i.e.
        # (offs[i] - base[i]) + (base[i] + j) — one repeat + one arange.
        idx = np.repeat(r_offs - base, r_szs)
        idx += np.arange(total, dtype=np.int64)
        if len(r_slots) and int(r_slots[0]) == 0 and np.array_equal(
                r_slots, base):
            # Records land back to back in request order (the packed
            # tiers' common case): gather straight into the output.
            np.take(src, idx, out=out[:total])
        else:
            dest = np.repeat(r_slots - base, r_szs)
            dest += np.arange(total, dtype=np.int64)
            out[dest] = src[idx]
    comp = ~raw
    if comp.any():
        all_comp = bool(comp.all())
        c_raw = rawszs if all_comp else rawszs[comp]
        c_slots = slots if all_comp else slots[comp]
        values = decode_blobs_packed(src,
                                     offs if all_comp else offs[comp],
                                     szs if all_comp else szs[comp],
                                     c_raw // 4,
                                     (rtypes if all_comp else rtypes[comp])
                                     - _BLOB_TYPE_BASE)
        total = int(c_raw.sum())
        base = np.zeros(len(c_raw), dtype=np.int64)
        np.cumsum(c_raw[:-1], out=base[1:])
        decoded = values.astype("<u4", copy=False).view(np.uint8)
        if len(c_slots) and int(c_slots[0]) == 0 and np.array_equal(
                c_slots, base):
            # Blobs land back to back in request order: one flat copy.
            out[:total] = decoded
        else:
            dest = np.repeat(c_slots - base, c_raw)
            dest += np.arange(total, dtype=np.int64)
            out[dest] = decoded


class DiskKVStore:
    """Append-only log store with integer keys and bytes values.

    Parameters
    ----------
    path:
        Backing file.  Created if absent; an existing log is replayed to
        rebuild the index.  Torn or corrupt tails are truncated back to
        the last intact record (crash recovery).
    cache_bytes:
        Block-cache capacity; 0 disables caching entirely so every read
        hits the file (useful when benchmarks must observe raw I/O).
    verify_reads:
        When True (default), every physical read of a v2 record is
        re-checksummed and a mismatch raises :class:`CorruptRecordError`
        (RocksDB verifies block checksums on read the same way).
    compress:
        When True, eligible values (non-decreasing uint32 blobs that
        actually shrink) are stored as v3 StreamVByte records.  Reads
        decode transparently either way, and a store opened with
        ``compress=False`` still reads any v3 records already in its
        log.
    use_mmap:
        When True, the packed read tier gathers from an mmap view of
        the log (falling back to positional reads when mapping fails).
    hot_cache_bytes:
        Budget for the decoded-blob hot cache
        (:class:`~repro.storage.hotcache.HotSetCache`); 0 disables it.
        The hot cache is **stats-transparent**: a hot hit books the
        same logical ``disk_reads``/``bytes_read`` the stored record's
        cold read would (exactly like the mmap tier books reads it
        served from the page cache), so every counter and verdict is
        bitwise identical with the cache on or off — its effect shows
        up only as wall-clock speed and in its own ``repro_cache``
        series.  Entries are invalidated exactly on ``put``/``delete``
        of their key and wholesale on ``compact``.
    """

    def __init__(self, path: str | Path, cache_bytes: int = 0,
                 verify_reads: bool = True, compress: bool = False,
                 use_mmap: bool = False, hot_cache_bytes: int = 0):
        self.path = Path(path)
        self.stats = StorageStats()
        self.verify_reads = verify_reads
        self._compress = bool(compress)
        self._use_mmap = bool(use_mmap)
        self._mmap: mmap.mmap | None = None
        self._mmap_np: np.ndarray | None = None
        # Bumped on every index mutation (put/delete/compact/recovery
        # truncation): shared-memory mirrors published to process-pool
        # workers key their staleness off this counter.
        self.mutation_count = 0
        # Live-set compression accounting backing the
        # ``compression_ratio`` gauge: decoded vs stored bytes of every
        # currently-indexed record.
        self._live_raw = 0
        self._live_stored = 0
        # key -> (payload offset, stored size, frame crc32 or None for
        # v1 / already verified, record type, decoded size).  Stored
        # and decoded sizes coincide for raw records.
        self._index: dict[int, tuple[int, int, int | None, int, int]] = {}
        # Sorted-array mirror of ``_index`` for vectorized multi-get:
        # (keys, offsets, sizes, crc-armed, record types, raw sizes) as
        # numpy arrays, rebuilt lazily after any index mutation
        # (``None`` = stale).
        self._vindex: tuple[np.ndarray, np.ndarray, np.ndarray,
                            np.ndarray, np.ndarray, np.ndarray] | None = None
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None
        self._hot = (HotSetCache(hot_cache_bytes)
                     if hot_cache_bytes > 0 else None)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a+b")
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() == 0:
            self._format = 2
            self._file.write(LOG_MAGIC)
            self._file.flush()
        else:
            self._replay()
            self._recount_live_bytes()
        # One read descriptor held open for the store's whole life:
        # every record read is an ``os.pread`` against it, which (a)
        # never reopens or seeks per block, and (b) carries its own
        # offset, so concurrent readers (shard-pool threads) cannot
        # corrupt each other's file position.  Appends keep using the
        # buffered ``self._file``; ``_pending_flush`` marks buffered
        # bytes the next read must flush before they become visible.
        self._read_fd = os.open(self.path, os.O_RDONLY)
        self._pending_flush = False

    # -- public API --------------------------------------------------------

    @property
    def format_version(self) -> int:
        """2 for checksummed logs, 1 for legacy logs (until compacted)."""
        return self._format

    @property
    def hot_cache(self) -> HotSetCache | None:
        """The decoded-blob hot cache, or None when disabled."""
        return self._hot

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def keys(self):
        return self._index.keys()

    def _make_record(self, value: bytes) -> tuple[int, bytes]:
        """``(record type, stored payload)`` for ``value`` as configured.

        Compression applies only to v2-format logs and only when the
        value is a non-empty multiple-of-4-bytes buffer whose uint32
        lanes are non-decreasing (a sorted adjacency blob) **and** the
        encoding is strictly smaller — everything else stays a raw put,
        so arbitrary values and adversarial blobs never regress.
        """
        if (self._compress and self._format == 2
                and len(value) >= 4 and len(value) % 4 == 0):
            lanes = np.frombuffer(value, dtype="<u4")
            if lanes.size == 1 or bool((lanes[1:] >= lanes[:-1]).all()):
                payload = encode_blob(lanes)
                if len(payload) < len(value):
                    rtype = _BLOB_TYPE_BASE + blob_layout(lanes.size)
                    return rtype, payload
        return _REC_PUT, value

    def encode_put_record(self, key: int, value: bytes) -> bytes:
        """The exact bytes :meth:`put` would append for ``(key, value)``.

        Exposed so the fault injector can simulate a torn write by
        appending only a prefix of a real record (compressed records
        included, since tearing happens after encoding).
        """
        _check_value_size(len(value))
        rtype, payload = self._make_record(value)
        if self._format == 1:
            return _HEADER_V1.pack(key, len(payload)) + payload
        return _encode_frame(rtype, key, payload)

    def _update_compression_gauge(self) -> None:
        stored = self._live_stored
        self.stats.set_gauge(
            "compression_ratio", self._live_raw / stored if stored else 1.0)

    def _recount_live_bytes(self) -> None:
        """Rebuild the live raw/stored byte totals from the index."""
        self._live_raw = sum(loc[4] for loc in self._index.values())
        self._live_stored = sum(loc[1] for loc in self._index.values())
        self._update_compression_gauge()

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` under ``key`` (append + index update)."""
        _check_value_size(len(value))
        rtype, payload = self._make_record(value)
        if self._format == 1:
            record = _HEADER_V1.pack(key, len(payload)) + payload
            header_size = _HEADER_V1.size
        else:
            record = _encode_frame(rtype, key, payload)
            header_size = _FRAME.size
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        try:
            self._file.write(record)
        except BaseException:
            # A partial append is a self-inflicted torn tail; roll the
            # file back so later appends don't bury garbage mid-log.
            try:
                self._file.truncate(offset)
            except OSError:
                pass
            raise
        crc = None if self._format == 1 else _record_crc(rtype, key, payload)
        old = self._index.get(key)
        if old is not None:
            self._live_raw -= old[4]
            self._live_stored -= old[1]
        self._index[key] = (offset + header_size, len(payload), crc,
                            rtype, len(value))
        self._live_raw += len(value)
        self._live_stored += len(payload)
        self._vindex = None
        self._pending_flush = True
        self.mutation_count += 1
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        if rtype != _REC_PUT:
            self.stats.inc("compressed_puts")
            self.stats.inc("blob_bytes_raw", len(value))
            self.stats.inc("blob_bytes_stored", len(payload))
        self._update_compression_gauge()
        if self._cache is not None:
            self._cache.put(key, value)
        if self._hot is not None:
            # Exact invalidation: the cached decode no longer matches
            # the live record.  Re-admission happens on the next read.
            self._hot.evict(key)

    def _validate_record(self, key: int, offset: int, size: int,
                         crc: int | None, rtype: int, raw_size: int,
                         value: bytes) -> None:
        """Size + checksum validation shared by every read path."""
        if len(value) != size:
            self.stats.inc("checksum_failures")
            raise CorruptRecordError(
                f"key {key}: record at offset {offset} is {len(value)} bytes, "
                f"expected {size} (log truncated underneath a live index?)"
            )
        if self.verify_reads and crc is not None:
            if _record_crc(rtype, key, value) != crc:
                self.stats.inc("checksum_failures")
                raise CorruptRecordError(
                    f"key {key}: checksum mismatch at offset {offset}"
                )
            # Verify-once-per-open: the log is append-only, so this
            # (offset, size) can never be rewritten underneath us —
            # clearing the in-memory crc makes warm re-reads skip the
            # checksum, the same trade RocksDB makes by verifying
            # blocks on cache fill rather than on every hit.  A fresh
            # open rebuilds the index and re-arms every crc.
            self._index[key] = (offset, size, None, rtype, raw_size)
            self._vindex = None

    def _verify_keys(self, keys) -> None:
        """First-touch checksum for freshly written records, unbooked.

        Verification I/O is maintenance, not service: the caller books
        the one logical read per key on the fast path it then takes, so
        booking here would double-count.  ``_validate_record`` disarms
        each crc, keeping this a once-per-open cost per record.
        """
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        for key in keys.tolist():
            offset, size, crc, rtype, raw_size = self._index[key]
            if crc is None:
                continue
            value = os.pread(self._read_fd, size, offset)
            self._validate_record(key, offset, size, crc, rtype,
                                  raw_size, value)

    def _read_record(self, key: int, offset: int, size: int,
                     crc: int | None, rtype: int, raw_size: int,
                     count: bool = True,
                     receipt: ReadReceipt | None = None) -> bytes:
        """Read and validate one record, returning its **decoded** value."""
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        value = os.pread(self._read_fd, size, offset)
        if count:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
        self._validate_record(key, offset, size, crc, rtype, raw_size, value)
        if rtype != _REC_PUT:
            return decode_blob(rtype - _BLOB_TYPE_BASE, value).tobytes()
        return value

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        """Read the value for ``key`` or None; counts a disk read on miss.

        ``receipt`` receives the cache-vs-disk provenance of exactly
        this lookup, so callers can attribute I/O without diffing the
        shared counters.
        """
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        if self._hot is not None:
            hot = self._hot.get(key)
            if hot is not None:
                value, stored = hot
                # Stats-transparent: book the logical read the stored
                # record would have cost (mmap-tier precedent), and
                # fill the block cache exactly as the cold path would.
                self.stats.inc("disk_reads")
                self.stats.inc("bytes_read", stored)
                if receipt is not None:
                    receipt.count_disk_read(stored)
                if self._cache is not None:
                    self._cache.put(key, value)
                return value
        loc = self._index.get(key)
        if loc is None:
            return None
        value = self._read_record(key, *loc, receipt=receipt)
        if self._cache is not None:
            self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read: one cache pass, then file reads in offset order.

        Keys are deduplicated (a repeated key costs one lookup), the
        cache is consulted exactly once per distinct key, and the
        outstanding misses are read with ``os.pread`` against the one
        read descriptor the store holds open, sorted by file offset so
        the access pattern is one forward sweep instead of random
        seeks.  Offset-adjacent records (the common case after a
        ``bulk_load`` or a ``compact``, which write the log
        sequentially) are **coalesced**: one ``pread`` covers a whole
        run of records separated only by frame headers, and each
        payload is sliced out and validated individually — the RocksDB
        MultiGet readahead idea.  ``StorageStats`` counts exactly the
        logical activity — one cache hit/miss per distinct key, one
        disk read per uncached stored key — booked in bulk (one
        ``inc`` per counter per call, not per key), which keeps the
        counters off the batched hot path and identical whether a
        record arrived via its own syscall or a coalesced span.
        """
        result: dict[int, bytes | None] = {}
        pending: list[tuple[int, int, int | None, int, int, int]] = []
        cache_hits = cache_misses = 0
        for key in keys:
            key = int(key)
            if key in result:
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    cache_hits += 1
                    result[key] = cached
                    continue
                cache_misses += 1
            loc = self._index.get(key)
            if loc is None:
                result[key] = None
                continue
            result[key] = None  # placeholder keeps dedup exact
            pending.append((*loc, key))
        if cache_hits:
            self.stats.inc("cache_hits", cache_hits)
        if cache_misses:
            self.stats.inc("cache_misses", cache_misses)
        if receipt is not None:
            receipt.count_cache_hits(cache_hits)
        pending.sort(key=operator.itemgetter(0))
        if self._pending_flush and pending:
            self._file.flush()
            self._pending_flush = False
        disk_reads = bytes_read = 0
        compressed: list[tuple[int, bytes, int, int]] = []
        try:
            for span in self._coalesce(pending):
                start = span[0][0]
                length = span[-1][0] + span[-1][1] - start
                buffer = os.pread(self._read_fd, length, start)
                for offset, size, crc, rtype, raw_size, key in span:
                    value = buffer[offset - start:offset - start + size]
                    disk_reads += 1
                    bytes_read += len(value)
                    self._validate_record(key, offset, size, crc, rtype,
                                          raw_size, value)
                    if rtype != _REC_PUT:
                        # Defer to one whole-batch decode pass below —
                        # per-record decode_blob calls dominate a large
                        # compressed multi-get otherwise.
                        compressed.append((key, value, rtype, raw_size))
                        continue
                    if self._cache is not None:
                        self._cache.put(key, value)
                    result[key] = value
        finally:
            # Book the physical reads even when a corrupt record aborts
            # the sweep part-way: the I/O happened either way.
            if disk_reads:
                self.stats.inc("disk_reads", disk_reads)
                self.stats.inc("bytes_read", bytes_read)
                if receipt is not None:
                    receipt.count_disk_reads(disk_reads, bytes_read)
        if compressed:
            sizes = np.asarray([len(v) for _, v, _, _ in compressed],
                               dtype=np.int64)
            offsets = np.zeros(len(compressed), dtype=np.int64)
            np.cumsum(sizes[:-1], out=offsets[1:])
            src = np.frombuffer(
                b"".join(v for _, v, _, _ in compressed), dtype=np.uint8)
            counts = np.asarray([raw // 4 for _, _, _, raw in compressed],
                                dtype=np.int64)
            layouts = np.asarray(
                [rtype - _BLOB_TYPE_BASE for _, _, rtype, _ in compressed],
                dtype=np.int64)
            decoded = decode_blobs_packed(src, offsets, sizes, counts,
                                          layouts).astype("<u4", copy=False)
            value_start = 0
            for (key, _v, _rt, raw_size), count in zip(
                    compressed, counts.tolist()):
                value = decoded[value_start:value_start + count].tobytes()
                value_start += count
                if self._cache is not None:
                    self._cache.put(key, value)
                result[key] = value
        return result

    def get_many_packed(self, keys,
                        receipt: ReadReceipt | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated payloads for ``keys``, assembled with numpy.

        Returns ``(data, lengths)``: one contiguous ``uint8`` array of
        every payload in **input key order**, plus the per-key payload
        byte counts.  Raises ``KeyError`` carrying the list of missing
        keys.  Callers pass already-deduplicated keys (the batched
        probe does); repeated keys would each pay a lookup.

        This is the batched-probe hot path.  :meth:`get_many` spends
        most of its time in per-record Python — one slice, one dict
        store, one bytes object per record — which at 10⁵ records per
        batch dwarfs the actual I/O.  Here the per-record work drops to
        the checksum validation loop; payload extraction from the
        coalesced span buffers and reordering into key order are a
        handful of whole-batch numpy gathers.  Stats and receipt
        booking are identical to :meth:`get_many` over the same keys —
        one cache hit/miss per key, one disk read per uncached stored
        key — so engines using either path book the same totals.

        Two tiers: with no block cache, the whole call is numpy (index
        lookup via ``searchsorted`` against the sorted ``_vindex``
        mirror) with zero per-record Python — records still carrying
        their first-touch checksum (freshly appended this open) are
        verified in a small unbooked pre-pass first, so a trickle of
        writes cannot demote whole probe batches off the fast tier.
        With a block cache, a per-record pass handles cache fills and
        checksums together.
        """
        if self._cache is None:
            vi = self._vindex
            if vi is None:
                vi = self._vindex = self._build_vindex()
            karr = np.asarray(keys, dtype=np.int64)
            vkeys, voffs, vszs, varmed, vrtypes, vrawszs = vi
            if len(vkeys) == 0:
                if len(karr):
                    raise KeyError(sorted(set(karr.tolist())))
                empty = np.zeros(0, dtype=np.int64)
                return np.zeros(0, dtype=np.uint8), empty
            pos = np.minimum(np.searchsorted(vkeys, karr), len(vkeys) - 1)
            found = vkeys[pos] == karr
            if not found.all():
                raise KeyError(sorted(set(karr[~found].tolist())))
            if self.verify_reads and bool(varmed[pos].any()):
                self._verify_keys(karr[varmed[pos]])
                vi = self._vindex
                if vi is None:
                    vi = self._vindex = self._build_vindex()
                vkeys, voffs, vszs, varmed, vrtypes, vrawszs = vi
                pos = np.minimum(np.searchsorted(vkeys, karr),
                                 len(vkeys) - 1)
            return self._packed_vectorized(karr, voffs[pos], vszs[pos],
                                           vrtypes[pos], vrawszs[pos],
                                           receipt)
        n = len(keys)
        lengths_l = [0] * n
        cached_parts: list[tuple[int, bytes]] = []
        pending: list[tuple[int, int, int | None, int, int, int, int]] = []
        missing: list[int] = []
        cache_hits = cache_misses = 0
        cache = self._cache
        index_get = self._index.get
        for pos, key in enumerate(keys):
            key = int(key)
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    cache_hits += 1
                    cached_parts.append((pos, cached))
                    lengths_l[pos] = len(cached)
                    continue
                cache_misses += 1
            loc = index_get(key)
            if loc is None:
                missing.append(key)
                continue
            pending.append((*loc, key, pos))
            lengths_l[pos] = loc[4]
        if cache_hits:
            self.stats.inc("cache_hits", cache_hits)
        if cache_misses:
            self.stats.inc("cache_misses", cache_misses)
        if receipt is not None:
            receipt.count_cache_hits(cache_hits)
        if missing:
            raise KeyError(missing)
        lengths = np.asarray(lengths_l, dtype=np.int64)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        out = np.zeros(int(lengths.sum()), dtype=np.uint8)
        if pending:
            pending.sort(key=operator.itemgetter(0))
            if self._pending_flush:
                self._file.flush()
                self._pending_flush = False
            offs = np.asarray([item[0] for item in pending], dtype=np.int64)
            szs = np.asarray([item[1] for item in pending], dtype=np.int64)
            rtypes = np.asarray([item[3] for item in pending], dtype=np.int64)
            rawszs = np.asarray([item[4] for item in pending], dtype=np.int64)
            slots = starts[np.asarray([item[6] for item in pending],
                                      dtype=np.int64)]
            ends = offs + szs
            spans = self._spans_of(offs, ends)
            src, src_offs = self._gather_spans(offs, szs, ends, spans,
                                               receipt)
            verify = self.verify_reads
            if verify:
                # Validation stays per record (each has its own stored
                # crc) but runs flat — at 10^5 records per batch even
                # one extra call per record is visible.
                crc32 = zlib.crc32
                prefix_pack = _CRC_PREFIX.pack
                index = self._index
                for i, item in enumerate(pending):
                    offset, size, crc, rtype, raw_size, key, _pos = item
                    if crc is None:
                        continue
                    rel = int(src_offs[i])
                    if crc32(src[rel:rel + size],
                             crc32(prefix_pack(rtype, key, size))) != crc:
                        self.stats.inc("checksum_failures")
                        raise CorruptRecordError(
                            f"key {key}: checksum mismatch at "
                            f"offset {offset}"
                        )
                    # Verify-once-per-open, as _validate_record.
                    index[key] = (offset, size, None, rtype, raw_size)
                    self._vindex = None
            # One scatter (raw) plus one bulk decode pass (compressed)
            # places every record read above into its key-order slot.
            assemble_packed(src, src_offs, szs, rtypes, rawszs, out, slots)
            if cache is not None:
                for i, item in enumerate(pending):
                    start = int(slots[i])
                    cache.put(item[5], out[start:start + item[4]].tobytes())
        for pos, blob in cached_parts:
            start = starts[pos]
            out[start:start + len(blob)] = np.frombuffer(blob,
                                                         dtype=np.uint8)
        return out, lengths

    def book_hot_serves(self, count: int, stored_bytes: int,
                        receipt: ReadReceipt | None = None) -> None:
        """Book logical reads for probes served from the hot cache's
        membership view.

        The caller (``graphstore.probe_edges``) answered ``count``
        distinct records' worth of probes without touching this store;
        booking the reads those records would have cost keeps the
        storage counters bitwise identical with the cache off — the
        same stats-transparency contract the packed hit path keeps.
        """
        self.stats.inc("disk_reads", count)
        self.stats.inc("bytes_read", stored_bytes)
        if receipt is not None:
            receipt.count_disk_reads(count, stored_bytes)

    def export_packed_state(self) -> dict:
        """Snapshot of the read state a detached (worker) reader needs.

        Returns the log path plus the sorted index mirror — everything
        a read-only process needs to serve ``get_many_packed``-style
        lookups against its own mmap of the log.  Buffered appends are
        flushed first so the snapshot's offsets are all readable.
        ``generation`` is :attr:`mutation_count`; publishers use it to
        know when a worker-held snapshot went stale.
        """
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        vi = self._vindex
        if vi is None:
            vi = self._vindex = self._build_vindex()
        vkeys, voffs, vszs, _varmed, vrtypes, vrawszs = vi
        return {
            "path": str(self.path),
            "keys": vkeys,
            "offs": voffs,
            "szs": vszs,
            "rtypes": vrtypes,
            "rawszs": vrawszs,
            "generation": self.mutation_count,
            # Detached readers build their own worker-side hot cache
            # with the same budget (resizes land at the next republish).
            "hot_cache_bytes": (self._hot.capacity_bytes
                                if self._hot is not None else 0),
        }

    def _build_vindex(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray, np.ndarray]:
        """Materialize the sorted numpy mirror of ``_index``."""
        if not self._index:
            empty = np.zeros(0, dtype=np.int64)
            return (empty, empty, empty, np.zeros(0, dtype=bool),
                    empty, empty)
        keys = np.fromiter(self._index.keys(), dtype=np.int64,
                           count=len(self._index))
        cols = list(zip(*self._index.values()))
        offs = np.asarray(cols[0], dtype=np.int64)
        szs = np.asarray(cols[1], dtype=np.int64)
        armed = np.asarray([crc is not None for crc in cols[2]],
                           dtype=bool)
        rtypes = np.asarray(cols[3], dtype=np.int64)
        rawszs = np.asarray(cols[4], dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        return (keys[order], offs[order], szs[order], armed[order],
                rtypes[order], rawszs[order])

    @staticmethod
    def _spans_of(offs: np.ndarray, ends: np.ndarray
                  ) -> list[tuple[int, int]]:
        """Coalesced-read spans over offset-sorted records.

        Returns ``[lo, hi)`` ranges into ``offs``/``ends``: a new span
        starts where the gap to the previous record exceeds
        ``_SPAN_GAP_BYTES``, and any run longer than ``_SPAN_MAX_BYTES``
        is split greedily.
        """
        new_span = np.zeros(len(offs), dtype=bool)
        new_span[0] = True
        if len(offs) > 1:
            new_span[1:] = (offs[1:] - ends[:-1]) > _SPAN_GAP_BYTES
        bounds = np.flatnonzero(new_span).tolist()
        bounds.append(len(offs))
        spans: list[tuple[int, int]] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            while int(ends[hi - 1] - offs[lo]) > _SPAN_MAX_BYTES:
                cut = int(np.searchsorted(
                    ends[lo:hi], int(offs[lo]) + _SPAN_MAX_BYTES,
                    side="right")) + lo
                cut = max(cut, lo + 1)
                spans.append((lo, cut))
                lo = cut
            spans.append((lo, hi))
        return spans

    def _packed_vectorized(self, keys_u: np.ndarray, offs_u: np.ndarray,
                           szs_u: np.ndarray, rtypes_u: np.ndarray,
                           rawszs_u: np.ndarray,
                           receipt: ReadReceipt | None,
                           ) -> tuple[np.ndarray, np.ndarray]:
        """Zero-per-record-Python tier of :meth:`get_many_packed`.

        Preconditions (checked by the caller): no block cache, every
        record's location resolved via ``_vindex``, and nothing left to
        checksum (``verify_reads`` off or every record verified this
        open).  With an mmap view the whole call is numpy against the
        page cache; otherwise only the span-read loop remains in Python
        — a handful of positional reads per batch into one
        preallocated buffer.

        The hot cache slots in above both: hits are served straight
        from cached decodes (one searchsorted + one gather, booking
        the same logical reads the stored records would have cost),
        only the cold remainder touches the log, and that remainder's
        decoded bytes are offered back for admission.
        """
        n = len(offs_u)
        lengths = rawszs_u
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lengths[:-1], out=starts[1:])
        out = np.empty(int(lengths.sum()), dtype=np.uint8)
        if n == 0:
            return out, lengths
        if self._pending_flush:
            self._file.flush()
            self._pending_flush = False
        hot = self._hot
        if hot is not None:
            served = hot.fill_hits(keys_u, rawszs_u, out, starts)
            if served is not None:
                hit, stored = served
                n_hits = int(hit.sum())
                if n_hits:
                    # Stats-transparent booking: a hit costs what the
                    # stored record's read would (mmap-tier precedent).
                    self.stats.inc("disk_reads", n_hits)
                    self.stats.inc("bytes_read", stored)
                    if receipt is not None:
                        receipt.count_disk_reads(n_hits, stored)
                    if n_hits == n:
                        return out, lengths
                    cold = np.flatnonzero(~hit)
                    self._cold_assemble(offs_u[cold], szs_u[cold],
                                        rtypes_u[cold], rawszs_u[cold],
                                        out, starts[cold], receipt)
                    hot.admit(keys_u[cold], out, starts[cold],
                              rawszs_u[cold], szs_u[cold])
                    return out, lengths
            self._cold_assemble(offs_u, szs_u, rtypes_u, rawszs_u,
                                out, starts, receipt)
            hot.admit(keys_u, out, starts, rawszs_u, szs_u)
            return out, lengths
        self._cold_assemble(offs_u, szs_u, rtypes_u, rawszs_u,
                            out, starts, receipt)
        return out, lengths

    def _cold_assemble(self, offs_u: np.ndarray, szs_u: np.ndarray,
                       rtypes_u: np.ndarray, rawszs_u: np.ndarray,
                       out: np.ndarray, slots: np.ndarray,
                       receipt: ReadReceipt | None) -> None:
        """Read + decode records from the log into ``out`` at ``slots``.

        The storage-touching half of :meth:`_packed_vectorized`: one
        mmap gather when the map is live, coalesced positional reads
        otherwise, with identical logical booking either way.
        """
        n = len(offs_u)
        view = self._mmap_view(int((offs_u + szs_u).max()))
        if view is not None:
            # Page-cache path: no read syscalls, no staging buffer —
            # raw records are one gather from the mapped log into the
            # output, compressed ones one bulk decode pass.  Booking
            # stays the logical per-record accounting the pread path
            # produces, so engines see identical stats either way.
            total_stored = int(szs_u.sum())
            self.stats.inc("disk_reads", n)
            self.stats.inc("bytes_read", total_stored)
            if receipt is not None:
                receipt.count_disk_reads(n, total_stored)
            assemble_packed(view, offs_u, szs_u, rtypes_u, rawszs_u,
                            out, slots)
            return
        if n > 1 and bool((offs_u[1:] >= offs_u[:-1]).all()):
            # Sorted-key requests against a sequentially written log
            # (post bulk_load/compact) arrive offset-sorted already;
            # one comparison pass beats an argsort every batch.
            order = None
            offs, szs = offs_u, szs_u
        else:
            order = np.argsort(offs_u, kind="stable")
            offs = offs_u[order]
            szs = szs_u[order]
        ends = offs + szs
        spans = self._spans_of(offs, ends)
        src, src_offs = self._gather_spans(offs, szs, ends, spans, receipt)
        if order is None:
            assemble_packed(src, src_offs, szs, rtypes_u, rawszs_u,
                            out, slots)
        else:
            assemble_packed(src, src_offs, szs, rtypes_u[order],
                            rawszs_u[order], out, slots[order])

    def _gather_spans(self, offs: np.ndarray, szs: np.ndarray,
                      ends: np.ndarray, spans: list[tuple[int, int]],
                      receipt: ReadReceipt | None,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Read coalesced spans into one preallocated buffer.

        Returns ``(src, src_offs)``: ``src`` holds every span back to
        back and ``src_offs[i]`` is record ``i``'s payload position
        inside it.  Each span is read **directly into its slice** of
        ``src`` with ``os.preadv`` — no per-span bytes objects, no
        ``b"".join`` concatenation pass.  Physical reads are booked per
        completed span even if a later span fails short (the I/O
        happened either way).
        """
        total = sum(int(ends[hi - 1] - offs[lo]) for lo, hi in spans)
        src = np.empty(total, dtype=np.uint8)
        src_offs = np.empty(len(offs), dtype=np.int64)
        disk_reads = bytes_read = 0
        pos = 0
        try:
            for lo, hi in spans:
                base = int(offs[lo])
                length = int(ends[hi - 1]) - base
                got = os.preadv(self._read_fd, [src[pos:pos + length]], base)
                if got != length:
                    self.stats.inc("checksum_failures")
                    raise CorruptRecordError(
                        f"record at offset {base + got} extends past the "
                        f"log end (truncated underneath a live index?)"
                    )
                src_offs[lo:hi] = offs[lo:hi] + (pos - base)
                disk_reads += hi - lo
                bytes_read += int(szs[lo:hi].sum())
                pos += length
        finally:
            if disk_reads:
                self.stats.inc("disk_reads", disk_reads)
                self.stats.inc("bytes_read", bytes_read)
                if receipt is not None:
                    receipt.count_disk_reads(disk_reads, bytes_read)
        return src, src_offs

    # -- mmap --------------------------------------------------------------

    def _mmap_view(self, end: int) -> np.ndarray | None:
        """uint8 view of the mapped log covering byte ``end``, or None.

        Remaps lazily when the log has grown past the current map.
        Returns None whenever mapping is off or fails (empty file,
        exotic filesystems, fd trouble) — callers then use positional
        reads.  The view indexes the log at absolute file offsets.
        """
        if not self._use_mmap:
            return None
        if self._mmap is None or len(self._mmap) < end:
            self._drop_mmap()
            try:
                size = os.fstat(self._read_fd).st_size
                if size < max(end, 1):
                    return None
                mapped = mmap.mmap(self._read_fd, size,
                                   access=mmap.ACCESS_READ)
            except (OSError, ValueError):
                return None
            self._mmap = mapped
            self._mmap_np = np.frombuffer(mapped, dtype=np.uint8)
        return self._mmap_np

    def _drop_mmap(self) -> None:
        """Invalidate the current map (log replaced, shrunk, or closing).

        If a previously returned view is still alive the close raises
        ``BufferError`` — the map is then abandoned to the garbage
        collector instead, so in-flight batches keep reading the old
        (still-mapped) bytes safely while new reads remap.
        """
        mapped = self._mmap
        self._mmap = None
        self._mmap_np = None
        if mapped is not None:
            try:
                mapped.close()
            except BufferError:
                pass

    @staticmethod
    def _coalesce(pending):
        """Group offset-sorted records into contiguous read spans.

        Records whose payloads are separated by at most
        ``_SPAN_GAP_BYTES`` (i.e. only a frame header apart) share one
        span; spans are capped at ``_SPAN_MAX_BYTES``.  Live records
        never overlap, so a span's length is simply last-end minus
        first-start.
        """
        span: list[tuple[int, int, int | None, int]] = []
        end = 0
        for item in pending:
            offset, size = item[0], item[1]
            if span and (offset - end > _SPAN_GAP_BYTES
                         or offset + size - span[0][0] > _SPAN_MAX_BYTES):
                yield span
                span = []
            span.append(item)
            end = offset + size
        if span:
            yield span

    def delete(self, key: int) -> bool:
        """Remove ``key``; appends a tombstone so recovery stays correct."""
        if key not in self._index:
            return False
        if self._format == 1:
            record = _HEADER_V1.pack(key, _V1_TOMBSTONE)
        else:
            record = _encode_frame(_REC_TOMBSTONE, key)
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self._pending_flush = True
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        old = self._index.pop(key)
        self._live_raw -= old[4]
        self._live_stored -= old[1]
        self._update_compression_gauge()
        self._vindex = None
        self.mutation_count += 1
        if self._cache is not None:
            self._cache.evict(key)
        if self._hot is not None:
            self._hot.evict(key)
        return True

    def flush(self, sync: bool = False) -> None:
        """Push buffered writes to the OS; ``sync=True`` also fsyncs."""
        self._file.flush()
        self._pending_flush = False
        if sync:
            os.fsync(self._file.fileno())

    def compact(self) -> int:
        """Rewrite only the live records, dropping overwritten versions
        and tombstones (the log-structured GC).  Returns bytes saved.

        The rewrite is atomic and durable: live records stream into a
        temp file (always v2-format, so compaction upgrades legacy
        logs), which is fsynced and then swapped in with
        ``os.replace``.  An interruption at any point leaves the
        original log intact and the store usable.

        Records are decoded and re-encoded under the **current**
        compression setting, so compacting also converts a log between
        raw and compressed storage in either direction.  Any live mmap
        is invalidated (the old inode is gone); exported views keep
        the old map alive until collected.
        """
        self._file.flush()
        before = self.path.stat().st_size
        compact_path = self.path.with_suffix(self.path.suffix + ".compact")
        new_index: dict[int, tuple[int, int, int | None, int, int]] = {}
        try:
            with open(compact_path, "wb") as out:
                out.write(LOG_MAGIC)
                for key in sorted(self._index):
                    value = self._read_record(key, *self._index[key],
                                              count=False)
                    rtype, payload = self._make_record(value)
                    new_crc = _record_crc(rtype, key, payload)
                    new_index[key] = (out.tell() + _FRAME.size,
                                      len(payload), new_crc, rtype,
                                      len(value))
                    out.write(_FRAME.pack(rtype, key, len(payload), new_crc))
                    out.write(payload)
                out.flush()
                os.fsync(out.fileno())
        except BaseException:
            compact_path.unlink(missing_ok=True)
            raise
        self._file.close()
        try:
            os.replace(compact_path, self.path)
        except BaseException:
            compact_path.unlink(missing_ok=True)
            self._file = open(self.path, "a+b")
            raise
        _fsync_dir(self.path.parent)
        self._file = open(self.path, "a+b")
        # The old read fd (and any mmap of it) still points at the
        # replaced, now-deleted inode; swap in fresh ones on the
        # compacted log.
        self._drop_mmap()
        os.close(self._read_fd)
        self._read_fd = os.open(self.path, os.O_RDONLY)
        self._pending_flush = False
        self._format = 2
        self._index = new_index
        self._vindex = None
        self.mutation_count += 1
        self._recount_live_bytes()
        if self._cache is not None:
            self._cache.clear()
        if self._hot is not None:
            # Every offset moved; cached decodes stay byte-correct but
            # the stored sizes they book may not, so drop wholesale.
            self._hot.invalidate_all()
        return before - self.path.stat().st_size

    def close(self) -> None:
        self._drop_mmap()
        if not self._file.closed:
            self._file.flush()
            self._file.close()
        if self._read_fd is not None:
            os.close(self._read_fd)
            self._read_fd = None

    def __enter__(self) -> "DiskKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index by scanning the log from the start.

        Dispatches on the file magic: v2 logs get full structural +
        checksum validation, legacy v1 logs get bounds validation.
        Either way a torn or corrupt tail is truncated back to the
        last intact record boundary.
        """
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        self._file.seek(0)
        prefix = self._file.read(len(LOG_MAGIC))
        if prefix == LOG_MAGIC:
            self._format = 2
            self._replay_v2(total)
        else:
            self._format = 1
            self._file.seek(0)
            self._replay_v1(total)

    def _truncate_tail(self, pos: int, reason: str) -> None:
        logger.warning(
            "recovering %s: %s; truncating torn tail at byte %d",
            self.path, reason, pos,
        )
        self._file.truncate(pos)
        self._file.flush()
        self.mutation_count += 1

    def _replay_v1(self, total: int) -> None:
        pos = 0
        while pos < total:
            header = self._file.read(_HEADER_V1.size)
            if len(header) < _HEADER_V1.size:
                self._truncate_tail(pos, "short v1 record header")
                return
            key, size = _HEADER_V1.unpack(header)
            if size == _V1_TOMBSTONE:
                self._index.pop(key, None)
                pos += _HEADER_V1.size
                continue
            offset = pos + _HEADER_V1.size
            if offset + size > total:
                self._truncate_tail(pos, "v1 record extends past EOF")
                return
            self._index[key] = (offset, size, None, _REC_PUT, size)
            pos = offset + size
            self._file.seek(pos)

    def _replay_v2(self, total: int) -> None:
        pos = len(LOG_MAGIC)
        while pos < total:
            header = self._file.read(_FRAME.size)
            if len(header) < _FRAME.size:
                self._truncate_tail(pos, "short v2 frame header")
                return
            rtype, key, size, crc = _FRAME.unpack(header)
            if rtype != _REC_PUT and rtype != _REC_TOMBSTONE \
                    and rtype not in _BLOB_RECORD_TYPES:
                self._truncate_tail(pos, f"unknown record type 0x{rtype:02X}")
                return
            offset = pos + _FRAME.size
            if offset + size > total:
                self._truncate_tail(pos, "v2 record extends past EOF")
                return
            payload = self._file.read(size)
            if _record_crc(rtype, key, payload) != crc:
                self._truncate_tail(pos, f"checksum mismatch for key {key}")
                return
            if rtype == _REC_TOMBSTONE:
                self._index.pop(key, None)
            elif rtype == _REC_PUT:
                self._index[key] = (offset, size, crc, rtype, size)
            else:
                # v3 compressed put: the decoded size comes from the
                # blob structure, which doubles as a malformed-payload
                # check beyond the crc (defense in depth for torn
                # tails whose checksum happens to collide).
                try:
                    count = blob_count(rtype - _BLOB_TYPE_BASE, payload)
                except ValueError as exc:
                    self._truncate_tail(pos, f"malformed v3 blob: {exc}")
                    return
                self._index[key] = (offset, size, crc, rtype, 4 * count)
            pos = offset + size


class InMemoryKVStore:
    """Dict-backed store with the same interface and stats semantics.

    Each ``get`` still counts as a "disk read" so application-level
    access accounting behaves identically in tests, and ``cache_bytes``
    fronts reads with the same :class:`LRUCache` path as the disk
    store, so cache-statistics tests have backend parity.
    """

    def __init__(self, cache_bytes: int = 0, hot_cache_bytes: int = 0):
        self.stats = StorageStats()
        self.mutation_count = 0  # interface parity with DiskKVStore
        self._data: dict[int, bytes] = {}
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None
        # Accepted for constructor parity; a dict store's values are
        # already decoded in memory, so there is nothing to hot-cache.
        self.hot_cache = None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()

    def put(self, key: int, value: bytes) -> None:
        _check_value_size(len(value))
        self._data[key] = value
        self.mutation_count += 1
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(value))
        if self._cache is not None:
            self._cache.put(key, value)

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        value = self._data.get(key)
        if value is not None:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
            if self._cache is not None:
                self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read with the same dedup semantics as the disk store."""
        result: dict[int, bytes | None] = {}
        for key in keys:
            key = int(key)
            if key not in result:
                result[key] = self.get(key, receipt=receipt)
        return result

    def get_many_packed(self, keys,
                        receipt: ReadReceipt | None = None,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated payloads in key order (disk-store parity).

        Same contract and booking as
        :meth:`DiskKVStore.get_many_packed`; raises ``KeyError``
        carrying the missing-key list.
        """
        blobs: list[bytes] = []
        missing: list[int] = []
        for key in keys:
            value = self.get(int(key), receipt=receipt)
            if value is None:
                missing.append(int(key))
            else:
                blobs.append(value)
        if missing:
            raise KeyError(missing)
        lengths = np.fromiter((len(blob) for blob in blobs),
                              dtype=np.int64, count=len(blobs))
        data = np.frombuffer(b"".join(blobs), dtype=np.uint8)
        return data, lengths

    def delete(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            self.mutation_count += 1
            self.stats.inc("disk_writes")
            if self._cache is not None:
                self._cache.evict(key)
            return True
        return False

    def flush(self, sync: bool = False) -> None:  # interface parity
        pass

    def close(self) -> None:  # interface parity
        pass

    def __enter__(self) -> "InMemoryKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
