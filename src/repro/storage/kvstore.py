"""File-backed key-value store (the RocksDB stand-in).

Design: an append-only data log plus an in-memory key → (offset, size)
index, the classic log-structured layout.  Every ``get`` that misses the
block cache performs a real ``seek`` + ``read`` against the file and is
counted in :class:`StorageStats` — those counters are what the paper's
Fig. 9 experiment is about (VEND exists to avoid exactly these reads).

``InMemoryKVStore`` implements the same interface for fast unit tests.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

from .cache import LRUCache

__all__ = ["StorageStats", "DiskKVStore", "InMemoryKVStore"]

_HEADER = struct.Struct("<qI")  # key (int64), value length (uint32)


@dataclass
class StorageStats:
    """Counters for physical storage activity."""

    disk_reads: int = 0
    disk_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class DiskKVStore:
    """Append-only log store with integer keys and bytes values.

    Parameters
    ----------
    path:
        Backing file.  Created if absent; an existing log is replayed to
        rebuild the index (crash-style recovery).
    cache_bytes:
        Block-cache capacity; 0 disables caching entirely so every read
        hits the file (useful when benchmarks must observe raw I/O).
    """

    def __init__(self, path: str | Path, cache_bytes: int = 0):
        self.path = Path(path)
        self.stats = StorageStats()
        self._index: dict[int, tuple[int, int]] = {}
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        exists = self.path.exists()
        self._file = open(self.path, "a+b")
        if exists:
            self._replay()

    # -- public API --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def keys(self):
        return self._index.keys()

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` under ``key`` (append + index update)."""
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(_HEADER.pack(key, len(value)))
        self._file.write(value)
        self._index[key] = (offset + _HEADER.size, len(value))
        self.stats.disk_writes += 1
        self.stats.bytes_written += _HEADER.size + len(value)
        if self._cache is not None:
            self._cache.put(key, value)

    def get(self, key: int) -> bytes | None:
        """Read the value for ``key`` or None; counts a disk read on miss."""
        if self._cache is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return cached
            self.stats.cache_misses += 1
        loc = self._index.get(key)
        if loc is None:
            return None
        offset, size = loc
        self._file.seek(offset)
        value = self._file.read(size)
        self.stats.disk_reads += 1
        self.stats.bytes_read += size
        if self._cache is not None:
            self._cache.put(key, value)
        return value

    def get_many(self, keys) -> dict[int, bytes | None]:
        """Batched read: one cache pass, then file reads in offset order.

        Keys are deduplicated (a repeated key costs one lookup), the
        cache is consulted exactly once per distinct key, and the
        outstanding misses are read from the log sorted by file offset
        so the access pattern is one forward sweep instead of random
        seeks.  ``StorageStats`` counts exactly the physical activity:
        one cache hit/miss per distinct key, one disk read per
        uncached stored key.
        """
        result: dict[int, bytes | None] = {}
        pending: list[tuple[int, int, int]] = []  # (offset, size, key)
        for key in keys:
            key = int(key)
            if key in result:
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    result[key] = cached
                    continue
                self.stats.cache_misses += 1
            loc = self._index.get(key)
            if loc is None:
                result[key] = None
                continue
            result[key] = None  # placeholder keeps dedup exact
            pending.append((loc[0], loc[1], key))
        pending.sort()
        for offset, size, key in pending:
            self._file.seek(offset)
            value = self._file.read(size)
            self.stats.disk_reads += 1
            self.stats.bytes_read += size
            if self._cache is not None:
                self._cache.put(key, value)
            result[key] = value
        return result

    def delete(self, key: int) -> bool:
        """Remove ``key``; appends a tombstone so recovery stays correct."""
        if key not in self._index:
            return False
        self._file.seek(0, os.SEEK_END)
        self._file.write(_HEADER.pack(key, 0xFFFFFFFF))
        self.stats.disk_writes += 1
        self.stats.bytes_written += _HEADER.size
        del self._index[key]
        if self._cache is not None:
            self._cache.evict(key)
        return True

    def flush(self) -> None:
        self._file.flush()

    def compact(self) -> int:
        """Rewrite only the live records, dropping overwritten versions
        and tombstones (the log-structured GC).  Returns bytes saved."""
        self._file.flush()
        before = self.path.stat().st_size
        compact_path = self.path.with_suffix(self.path.suffix + ".compact")
        new_index: dict[int, tuple[int, int]] = {}
        with open(compact_path, "wb") as out:
            for key in sorted(self._index):
                offset, size = self._index[key]
                self._file.seek(offset)
                value = self._file.read(size)
                new_index[key] = (out.tell() + _HEADER.size, size)
                out.write(_HEADER.pack(key, size))
                out.write(value)
        self._file.close()
        compact_path.replace(self.path)
        self._file = open(self.path, "a+b")
        self._index = new_index
        if self._cache is not None:
            self._cache.clear()
        return before - self.path.stat().st_size

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "DiskKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index by scanning the log from the start."""
        self._file.seek(0)
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            key, size = _HEADER.unpack(header)
            if size == 0xFFFFFFFF:  # tombstone
                self._index.pop(key, None)
                continue
            offset = self._file.tell()
            self._index[key] = (offset, size)
            self._file.seek(size, os.SEEK_CUR)


class InMemoryKVStore:
    """Dict-backed store with the same interface and stats semantics.

    Each ``get`` still counts as a "disk read" so application-level
    access accounting behaves identically in tests.
    """

    def __init__(self, cache_bytes: int = 0):
        self.stats = StorageStats()
        self._data: dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()

    def put(self, key: int, value: bytes) -> None:
        self._data[key] = value
        self.stats.disk_writes += 1
        self.stats.bytes_written += len(value)

    def get(self, key: int) -> bytes | None:
        value = self._data.get(key)
        if value is not None:
            self.stats.disk_reads += 1
            self.stats.bytes_read += len(value)
        return value

    def get_many(self, keys) -> dict[int, bytes | None]:
        """Batched read with the same dedup semantics as the disk store."""
        result: dict[int, bytes | None] = {}
        for key in keys:
            key = int(key)
            if key not in result:
                result[key] = self.get(key)
        return result

    def delete(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            self.stats.disk_writes += 1
            return True
        return False

    def flush(self) -> None:  # interface parity
        pass

    def close(self) -> None:  # interface parity
        pass

    def __enter__(self) -> "InMemoryKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
