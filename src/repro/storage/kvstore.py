"""File-backed key-value store (the RocksDB stand-in).

Design: an append-only data log plus an in-memory key → (offset, size,
crc) index, the classic log-structured layout.  Every ``get`` that
misses the block cache performs a real ``seek`` + ``read`` against the
file and is counted in :class:`StorageStats` — those counters are what
the paper's Fig. 9 experiment is about (VEND exists to avoid exactly
these reads).

Crash safety (DESIGN.md §8).  New logs use the **v2 record format**:
an 8-byte file magic followed by self-checking frames::

    [type:1][key:int64][length:uint32][crc32:uint32][payload]

``crc32`` covers the frame header (minus itself) plus the payload, so
a torn write — a record whose tail never reached the disk before a
crash — fails either the structural bounds check or the checksum.
Replay truncates the log back to the last intact record boundary and
logs a recovery warning instead of indexing bytes that don't exist.
Tombstones are an explicit record type, not a length sentinel.

Logs written by the previous (v1) format — ``<qI`` header, payload,
``0xFFFFFFFF`` length as the tombstone sentinel — are still replayed
(with bounds-checked torn-tail truncation); a legacy log keeps
appending v1 records until :meth:`DiskKVStore.compact` rewrites it,
which always emits v2 and is itself atomic (temp file + fsync +
``os.replace``).

``InMemoryKVStore`` implements the same interface (including the
block cache and its statistics) for fast unit tests.
"""

from __future__ import annotations

import logging
import os
import struct
import zlib
from pathlib import Path

from ..obs import ReadReceipt, StorageStats, default_tracer
from .cache import LRUCache

__all__ = [
    "StorageStats",
    "DiskKVStore",
    "InMemoryKVStore",
    "CorruptRecordError",
    "LOG_MAGIC",
    "MAX_VALUE_BYTES",
]

logger = logging.getLogger(__name__)

#: 8-byte magic that opens every v2 log file.
LOG_MAGIC = b"RKVLOG2\x00"

_HEADER_V1 = struct.Struct("<qI")  # key (int64), value length (uint32)
_V1_TOMBSTONE = 0xFFFFFFFF  # v1 length sentinel (collides with real 2^32-1)

_FRAME = struct.Struct("<BqII")  # type, key, length, crc32
_CRC_PREFIX = struct.Struct("<BqI")  # the frame fields the crc covers
_REC_PUT = 0x01
_REC_TOMBSTONE = 0x02

#: Largest storable value.  The v1 tombstone sentinel occupies length
#: 2^32-1, so any value whose length would reach the sentinel is
#: rejected in *both* formats to keep logs mutually unambiguous.
MAX_VALUE_BYTES = _V1_TOMBSTONE - 1


class CorruptRecordError(RuntimeError):
    """A stored record failed its checksum or size validation."""


def _record_crc(rtype: int, key: int, payload: bytes) -> int:
    """CRC32 over the frame header (minus the crc field) + payload."""
    return zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(rtype, key, len(payload))))


def _encode_frame(rtype: int, key: int, payload: bytes = b"") -> bytes:
    crc = _record_crc(rtype, key, payload)
    return _FRAME.pack(rtype, key, len(payload), crc) + payload


def _check_value_size(size: int) -> None:
    """Reject values whose length collides with the v1 tombstone sentinel."""
    if size > MAX_VALUE_BYTES:
        raise ValueError(
            f"value of {size} bytes exceeds the {MAX_VALUE_BYTES}-byte "
            f"maximum (length 0x{_V1_TOMBSTONE:X} is the tombstone sentinel)"
        )


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class DiskKVStore:
    """Append-only log store with integer keys and bytes values.

    Parameters
    ----------
    path:
        Backing file.  Created if absent; an existing log is replayed to
        rebuild the index.  Torn or corrupt tails are truncated back to
        the last intact record (crash recovery).
    cache_bytes:
        Block-cache capacity; 0 disables caching entirely so every read
        hits the file (useful when benchmarks must observe raw I/O).
    verify_reads:
        When True (default), every physical read of a v2 record is
        re-checksummed and a mismatch raises :class:`CorruptRecordError`
        (RocksDB verifies block checksums on read the same way).
    """

    def __init__(self, path: str | Path, cache_bytes: int = 0,
                 verify_reads: bool = True):
        self.path = Path(path)
        self.stats = StorageStats()
        self.verify_reads = verify_reads
        # key -> (payload offset, payload size, frame crc32 or None for v1)
        self._index: dict[int, tuple[int, int, int | None]] = {}
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a+b")
        self._file.seek(0, os.SEEK_END)
        if self._file.tell() == 0:
            self._format = 2
            self._file.write(LOG_MAGIC)
            self._file.flush()
        else:
            self._replay()

    # -- public API --------------------------------------------------------

    @property
    def format_version(self) -> int:
        """2 for checksummed logs, 1 for legacy logs (until compacted)."""
        return self._format

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: int) -> bool:
        return key in self._index

    def keys(self):
        return self._index.keys()

    def encode_put_record(self, key: int, value: bytes) -> bytes:
        """The exact bytes :meth:`put` would append for ``(key, value)``.

        Exposed so the fault injector can simulate a torn write by
        appending only a prefix of a real record.
        """
        _check_value_size(len(value))
        if self._format == 1:
            return _HEADER_V1.pack(key, len(value)) + value
        return _encode_frame(_REC_PUT, key, value)

    def put(self, key: int, value: bytes) -> None:
        """Write ``value`` under ``key`` (append + index update)."""
        _check_value_size(len(value))
        record = self.encode_put_record(key, value)
        header_size = _HEADER_V1.size if self._format == 1 else _FRAME.size
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        try:
            self._file.write(record)
        except BaseException:
            # A partial append is a self-inflicted torn tail; roll the
            # file back so later appends don't bury garbage mid-log.
            try:
                self._file.truncate(offset)
            except OSError:
                pass
            raise
        crc = None if self._format == 1 else _record_crc(_REC_PUT, key, value)
        self._index[key] = (offset + header_size, len(value), crc)
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        if self._cache is not None:
            self._cache.put(key, value)

    def _read_record(self, key: int, offset: int, size: int,
                     crc: int | None, count: bool = True,
                     receipt: ReadReceipt | None = None) -> bytes:
        self._file.seek(offset)
        value = self._file.read(size)
        if count:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
        if len(value) != size:
            self.stats.inc("checksum_failures")
            raise CorruptRecordError(
                f"key {key}: record at offset {offset} is {len(value)} bytes, "
                f"expected {size} (log truncated underneath a live index?)"
            )
        if self.verify_reads and crc is not None:
            if _record_crc(_REC_PUT, key, value) != crc:
                self.stats.inc("checksum_failures")
                raise CorruptRecordError(
                    f"key {key}: checksum mismatch at offset {offset}"
                )
        return value

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        """Read the value for ``key`` or None; counts a disk read on miss.

        ``receipt`` receives the cache-vs-disk provenance of exactly
        this lookup, so callers can attribute I/O without diffing the
        shared counters.
        """
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        loc = self._index.get(key)
        if loc is None:
            return None
        value = self._read_record(key, *loc, receipt=receipt)
        if self._cache is not None:
            self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read: one cache pass, then file reads in offset order.

        Keys are deduplicated (a repeated key costs one lookup), the
        cache is consulted exactly once per distinct key, and the
        outstanding misses are read from the log sorted by file offset
        so the access pattern is one forward sweep instead of random
        seeks.  ``StorageStats`` counts exactly the physical activity:
        one cache hit/miss per distinct key, one disk read per
        uncached stored key.
        """
        result: dict[int, bytes | None] = {}
        pending: list[tuple[int, int, int | None, int]] = []
        for key in keys:
            key = int(key)
            if key in result:
                continue
            if self._cache is not None:
                cached = self._cache.get(key)
                if cached is not None:
                    self.stats.inc("cache_hits")
                    if receipt is not None:
                        receipt.count_cache_hit()
                    result[key] = cached
                    continue
                self.stats.inc("cache_misses")
            loc = self._index.get(key)
            if loc is None:
                result[key] = None
                continue
            result[key] = None  # placeholder keeps dedup exact
            pending.append((loc[0], loc[1], loc[2], key))
        pending.sort(key=lambda item: item[0])
        for offset, size, crc, key in pending:
            value = self._read_record(key, offset, size, crc, receipt=receipt)
            if self._cache is not None:
                self._cache.put(key, value)
            result[key] = value
        return result

    def delete(self, key: int) -> bool:
        """Remove ``key``; appends a tombstone so recovery stays correct."""
        if key not in self._index:
            return False
        if self._format == 1:
            record = _HEADER_V1.pack(key, _V1_TOMBSTONE)
        else:
            record = _encode_frame(_REC_TOMBSTONE, key)
        self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(record))
        del self._index[key]
        if self._cache is not None:
            self._cache.evict(key)
        return True

    def flush(self, sync: bool = False) -> None:
        """Push buffered writes to the OS; ``sync=True`` also fsyncs."""
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())

    def compact(self) -> int:
        """Rewrite only the live records, dropping overwritten versions
        and tombstones (the log-structured GC).  Returns bytes saved.

        The rewrite is atomic and durable: live records stream into a
        temp file (always v2, so compaction upgrades legacy logs),
        which is fsynced and then swapped in with ``os.replace``.  An
        interruption at any point leaves the original log intact and
        the store usable.
        """
        self._file.flush()
        before = self.path.stat().st_size
        compact_path = self.path.with_suffix(self.path.suffix + ".compact")
        new_index: dict[int, tuple[int, int, int | None]] = {}
        try:
            with open(compact_path, "wb") as out:
                out.write(LOG_MAGIC)
                for key in sorted(self._index):
                    offset, size, crc = self._index[key]
                    value = self._read_record(key, offset, size, crc,
                                              count=False)
                    new_crc = _record_crc(_REC_PUT, key, value)
                    new_index[key] = (out.tell() + _FRAME.size, size, new_crc)
                    out.write(_FRAME.pack(_REC_PUT, key, size, new_crc))
                    out.write(value)
                out.flush()
                os.fsync(out.fileno())
        except BaseException:
            compact_path.unlink(missing_ok=True)
            raise
        self._file.close()
        try:
            os.replace(compact_path, self.path)
        except BaseException:
            compact_path.unlink(missing_ok=True)
            self._file = open(self.path, "a+b")
            raise
        _fsync_dir(self.path.parent)
        self._file = open(self.path, "a+b")
        self._format = 2
        self._index = new_index
        if self._cache is not None:
            self._cache.clear()
        return before - self.path.stat().st_size

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "DiskKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- recovery ------------------------------------------------------------

    def _replay(self) -> None:
        """Rebuild the index by scanning the log from the start.

        Dispatches on the file magic: v2 logs get full structural +
        checksum validation, legacy v1 logs get bounds validation.
        Either way a torn or corrupt tail is truncated back to the
        last intact record boundary.
        """
        self._file.seek(0, os.SEEK_END)
        total = self._file.tell()
        self._file.seek(0)
        prefix = self._file.read(len(LOG_MAGIC))
        if prefix == LOG_MAGIC:
            self._format = 2
            self._replay_v2(total)
        else:
            self._format = 1
            self._file.seek(0)
            self._replay_v1(total)

    def _truncate_tail(self, pos: int, reason: str) -> None:
        logger.warning(
            "recovering %s: %s; truncating torn tail at byte %d",
            self.path, reason, pos,
        )
        self._file.truncate(pos)
        self._file.flush()

    def _replay_v1(self, total: int) -> None:
        pos = 0
        while pos < total:
            header = self._file.read(_HEADER_V1.size)
            if len(header) < _HEADER_V1.size:
                self._truncate_tail(pos, "short v1 record header")
                return
            key, size = _HEADER_V1.unpack(header)
            if size == _V1_TOMBSTONE:
                self._index.pop(key, None)
                pos += _HEADER_V1.size
                continue
            offset = pos + _HEADER_V1.size
            if offset + size > total:
                self._truncate_tail(pos, "v1 record extends past EOF")
                return
            self._index[key] = (offset, size, None)
            pos = offset + size
            self._file.seek(pos)

    def _replay_v2(self, total: int) -> None:
        pos = len(LOG_MAGIC)
        while pos < total:
            header = self._file.read(_FRAME.size)
            if len(header) < _FRAME.size:
                self._truncate_tail(pos, "short v2 frame header")
                return
            rtype, key, size, crc = _FRAME.unpack(header)
            if rtype not in (_REC_PUT, _REC_TOMBSTONE):
                self._truncate_tail(pos, f"unknown record type 0x{rtype:02X}")
                return
            offset = pos + _FRAME.size
            if offset + size > total:
                self._truncate_tail(pos, "v2 record extends past EOF")
                return
            payload = self._file.read(size)
            if _record_crc(rtype, key, payload) != crc:
                self._truncate_tail(pos, f"checksum mismatch for key {key}")
                return
            if rtype == _REC_TOMBSTONE:
                self._index.pop(key, None)
            else:
                self._index[key] = (offset, size, crc)
            pos = offset + size


class InMemoryKVStore:
    """Dict-backed store with the same interface and stats semantics.

    Each ``get`` still counts as a "disk read" so application-level
    access accounting behaves identically in tests, and ``cache_bytes``
    fronts reads with the same :class:`LRUCache` path as the disk
    store, so cache-statistics tests have backend parity.
    """

    def __init__(self, cache_bytes: int = 0):
        self.stats = StorageStats()
        self._data: dict[int, bytes] = {}
        self._cache = LRUCache(cache_bytes) if cache_bytes > 0 else None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def keys(self):
        return self._data.keys()

    def put(self, key: int, value: bytes) -> None:
        _check_value_size(len(value))
        self._data[key] = value
        self.stats.inc("disk_writes")
        self.stats.inc("bytes_written", len(value))
        if self._cache is not None:
            self._cache.put(key, value)

    def get(self, key: int,
            receipt: ReadReceipt | None = None) -> bytes | None:
        if self._cache is not None:
            with default_tracer().span("cache"):
                cached = self._cache.get(key)
            if cached is not None:
                self.stats.inc("cache_hits")
                if receipt is not None:
                    receipt.count_cache_hit()
                return cached
            self.stats.inc("cache_misses")
        value = self._data.get(key)
        if value is not None:
            self.stats.inc("disk_reads")
            self.stats.inc("bytes_read", len(value))
            if receipt is not None:
                receipt.count_disk_read(len(value))
            if self._cache is not None:
                self._cache.put(key, value)
        return value

    def get_many(self, keys,
                 receipt: ReadReceipt | None = None) -> dict[int, bytes | None]:
        """Batched read with the same dedup semantics as the disk store."""
        result: dict[int, bytes | None] = {}
        for key in keys:
            key = int(key)
            if key not in result:
                result[key] = self.get(key, receipt=receipt)
        return result

    def delete(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            self.stats.inc("disk_writes")
            if self._cache is not None:
                self._cache.evict(key)
            return True
        return False

    def flush(self, sync: bool = False) -> None:  # interface parity
        pass

    def close(self) -> None:  # interface parity
        pass

    def __enter__(self) -> "InMemoryKVStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
