"""Hash-partitioned storage: the shard layer under the parallel engine.

Production graph stores scale reads by partitioning: ε-Cost Sharding
(Vigna 2025) shows a static filter structure can be hash-split into
independent shards at near-zero per-shard cost, and the paper's own
NDF is embarrassingly parallel across query pairs — ``F(f(u), f(v))``
has no cross-pair dependencies.  This module supplies the pieces that
make that concrete here:

- :class:`ShardRouter` — a **stable** hash of vertex id → shard.  The
  same mixer (splitmix64's finalizer) runs scalar and vectorized, is
  identical across processes and Python versions (no ``PYTHONHASHSEED``
  dependence), and co-locates everything keyed by a vertex: its code
  row, its adjacency record, and its cache entry all live with the
  owning shard.
- :class:`ShardedGraphStore` — S independent
  :class:`~repro.storage.graphstore.GraphStore` segments, each backed
  by its own log file and shard-local LRU cache, behind the exact
  ``GraphStore`` interface.  Edge ``(u, v)`` is stored as two
  half-edges routed to the segments owning ``u`` and ``v``; batched
  probes partition the pair array by the owner of the *left* endpoint,
  which is the only endpoint whose adjacency list is read.
- **Replication** (``replicas=R``) wraps every segment in a
  :class:`~repro.storage.replication.ReplicatedShard`: writes reach a
  primary plus R replicas, reads fail over when the primary degrades,
  and ``reset_degraded()`` repairs and reinstates.
- **Online resharding** — a two-generation routing table.
  :meth:`ShardedGraphStore.begin_reshard` opens a second generation of
  segments; :meth:`migrate_step` walks vertices into the new layout in
  small exclusively-locked chunks while reads keep flowing (the old
  generation stays write-complete, migrated vertices are served from
  their new placement); :meth:`finish_reshard` flushes the new
  generation durably (``sync=True``) and atomically flips the router.
  ``reshard()`` remains the offline full-rewrite path, now inheriting
  the source store's configuration.

Per-segment isolation is what makes thread-pool execution safe and
attribution exact: pool tasks touch disjoint segment files, disjoint
caches, and disjoint ``StorageStats`` scopes, so no shared mutable
counter is ever incremented from two threads at once.  Fault injection
passes through per shard — wrap any subset of segments via
``kv_factory`` and only those segments degrade.

**Mutation guard.**  Multi-segment mutations (``insert_edge``,
``delete_edge``, ``delete_vertex``), migration steps, and the
generation flip take an exclusive lock; read entry points (and the
parallel engine, for the whole span of a batch via
:meth:`read_guard`) take it shared.  A concurrent batch therefore
never observes a vertex half-deleted across segments or a router
mid-flip — the invariant the threaded regression tests hammer.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..devtools.witness import get_witness
from ..graph import DiGraph, Graph
from ..obs import ReadReceipt, StatsView
from .graphstore import GraphStore
from .replication import ReplicatedShard

__all__ = ["ShardRouter", "ShardedGraphStore", "ReshardStats"]

_MASK64 = (1 << 64) - 1
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15

#: Sentinel for "inherit this knob from the source store" (reshard).
_INHERIT = object()


def _mix64(x: int) -> int:
    """splitmix64 finalizer: the scalar reference mixer.

    Pure integer arithmetic — deterministic across processes, seeds,
    and platforms, unlike ``hash()`` under ``PYTHONHASHSEED``.
    """
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _C1) & _MASK64
    x = ((x ^ (x >> 27)) * _C2) & _MASK64
    return x ^ (x >> 31)


class ShardRouter:
    """Stable vertex → shard assignment via splitmix64.

    One router instance is shared by the codes, the storage segments,
    and the cache layer, so a vertex's whole working set is
    partition-local (the Hybrid Graph Representation argument for
    keeping the hot membership structure with its partition).
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, v: int) -> int:
        """Owning shard of vertex ``v`` (scalar path)."""
        return _mix64(int(v) & _MASK64) % self.num_shards

    def shard_of_array(self, ids) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an id array."""
        x = np.asarray(ids, dtype=np.int64).astype(np.uint64)
        x = x + np.uint64(_GOLDEN)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_C1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_C2)
        x = x ^ (x >> np.uint64(31))
        return (x % np.uint64(self.num_shards)).astype(np.int64)

    def partition(self, ids) -> list[np.ndarray]:
        """Index arrays grouping ``ids`` by owning shard, input-stable.

        ``partition(us)[s]`` are the positions in ``us`` owned by shard
        ``s``, in their original order — the merge step only needs
        ``answers[idx] = shard_answers`` to restore input order.
        """
        shards = self.shard_of_array(ids)
        if self.num_shards == 1:
            return [np.arange(len(shards), dtype=np.int64)]
        order = np.argsort(shards, kind="stable")
        counts = np.bincount(shards, minlength=self.num_shards)
        return np.split(order, np.cumsum(counts)[:-1])


class _MigrationRouter:
    """Two-generation routing table used while a reshard is live.

    Segment indices form one combined space: ``[0, S)`` are the old
    generation's segments, ``[S, S + S′)`` the new generation's.  A
    vertex already copied (in ``migrated``) routes to its **new**
    placement — reads exercise the new segments as the copy advances,
    and read-your-writes holds because writes to migrated vertices land
    in both generations.  Uncopied vertices route to their old
    placement, which stays write-complete until the flip.
    """

    def __init__(self, old: ShardRouter, new: ShardRouter,
                 migrated: set[int]):
        self.old = old
        self.new = new
        self.migrated = migrated
        self.num_shards = old.num_shards + new.num_shards

    def shard_of(self, v: int) -> int:
        if int(v) in self.migrated:
            return self.old.num_shards + self.new.shard_of(v)
        return self.old.shard_of(v)

    def shard_of_array(self, ids) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        shards = self.old.shard_of_array(ids)
        if self.migrated:
            moved = np.fromiter((int(v) in self.migrated for v in ids),
                                dtype=bool, count=len(ids))
            if moved.any():
                shards = shards.copy()
                shards[moved] = (self.old.num_shards
                                 + self.new.shard_of_array(ids[moved]))
        return shards

    def partition(self, ids) -> list[np.ndarray]:
        shards = self.shard_of_array(ids)
        order = np.argsort(shards, kind="stable")
        counts = np.bincount(shards, minlength=self.num_shards)
        return np.split(order, np.cumsum(counts)[:-1])


class _RWLock:
    """Writer-preferring reader/writer lock, re-entrant on both sides.

    Readers are the query entry points (and the parallel engine's
    whole-batch guard, which nests over the store's own internal
    shared holds); writers are multi-segment mutations, migration
    steps, and the generation flip.  The thread holding the exclusive
    side may re-enter the shared side (``delete_vertex`` reads the
    owner's adjacency mid-mutation) — that re-entry is a no-op.  A
    thread already holding the shared side re-enters it without
    re-checking the writer queue, so writer preference can never
    deadlock a nested read.  Pool threads probing segments do not
    touch the lock at all; the coordinator holds it for them.
    """

    def __init__(self, name: str | None = None):
        self._cond = threading.Condition()
        self._readers = 0  # guarded-by: self._cond
        self._writer: int | None = None  # guarded-by: self._cond
        self._writer_depth = 0  # guarded-by: self._cond
        self._writers_waiting = 0  # guarded-by: self._cond
        self._local = threading.local()
        self._name = name
        witness = get_witness()
        # Resolved once at construction: disabled runs never pay for
        # the hook, and tests that flip the witness recreate stores.
        self._witness = witness if (name and witness.enabled) else None

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                return  # re-entry under our own exclusive hold
            depth = getattr(self._local, "read_depth", 0)
            if depth == 0:
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
                self._readers += 1
                if self._witness is not None:
                    self._witness.notify_acquire(self._name, self)
            self._local.read_depth = depth + 1

    def release_read(self) -> None:
        with self._cond:
            if self._writer == threading.get_ident():
                return
            depth = self._local.read_depth - 1
            self._local.read_depth = depth
            if depth == 0:
                if self._witness is not None:
                    self._witness.notify_release(self._name, self)
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1
            if self._witness is not None:
                self._witness.notify_acquire(self._name, self)

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                if self._witness is not None:
                    self._witness.notify_release(self._name, self)
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class ReshardStats(StatsView):
    """Migration-progress gauges for one store's online reshard."""

    _PREFIX = "repro_reshard"
    _SCOPE = "store"
    _COUNTERS = ("migrations", "vertices_migrated")
    _GAUGES = ("active", "progress", "vertices_pending")
    _HELP = {
        "migrations": "Generation flips completed by this store",
        "vertices_migrated": "Vertices copied into a new generation",
        "active": "1 while a two-generation migration is live",
        "progress": "Fraction of the migration worklist already copied",
        "vertices_pending": "Vertices still awaiting migration",
    }


class _Migration:
    """Book-keeping for one live reshard: target layout + worklist."""

    def __init__(self, router: ShardRouter, segments: list,
                 pending: set[int]):
        self.router = router
        self.segments = segments
        self.pending = pending          # not yet copied
        self.migrated: set[int] = set()  # copied; dual-written from now on
        self.total = max(len(pending), 1)


class _SummedStorageStats:
    """Read-only aggregate over the per-segment ``StorageStats`` views."""

    _FIELDS = ("disk_reads", "disk_writes", "bytes_read", "bytes_written",
               "cache_hits", "cache_misses", "checksum_failures",
               "compressed_puts", "blob_bytes_raw", "blob_bytes_stored")

    def __init__(self, segments: list[GraphStore]):
        object.__setattr__(self, "_segments", segments)

    def __getattr__(self, name: str):
        if name in self._FIELDS:
            return sum(getattr(seg.stats, name) for seg in self._segments)
        raise AttributeError(f"StorageStats has no field {name!r}")

    @property
    def compression_ratio(self) -> float:
        """Live raw bytes over live stored bytes across every segment."""
        raw = stored = 0
        for seg in self._segments:
            kv = seg._kv
            raw += getattr(kv, "_live_raw", 0)
            stored += getattr(kv, "_live_stored", 0)
        return raw / stored if stored else 1.0

    def snapshot(self) -> dict[str, int | float]:
        out = {name: getattr(self, name) for name in self._FIELDS}
        out["compression_ratio"] = self.compression_ratio
        return out

    def diff(self, before: dict[str, int | float]) -> dict[str, int | float]:
        return {name: value - before.get(name, 0)
                for name, value in self.snapshot().items()}

    def reset(self) -> None:
        for seg in self._segments:
            seg.stats.reset()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"SummedStorageStats({fields})"


class ShardedGraphStore:
    """S hash-partitioned ``GraphStore`` segments behind one interface.

    Parameters
    ----------
    path:
        Base path for the segment logs (``<path>.shard<N>``; replicas
        add ``.r<J>``, later generations ``<path>.g<G>.shard<N>``), or
        None for in-memory segments (tests).
    num_shards:
        Segment count.  1 is legal and behaves like a plain store.
    cache_bytes:
        **Total** block-cache budget, split evenly across the
        shard-local caches so memory use matches a same-budget
        unsharded store.  Each replica copy carries its shard's budget.
    kv_factory:
        Optional ``(segment_path, shard) -> kv store`` hook.  This is
        the per-shard fault-injection passthrough: wrap any segment in
        a :class:`~repro.storage.faults.FaultInjectingKVStore` and only
        that shard's reads degrade.  With replicas, the factory is
        called once per copy (primary first, then each replica path).
    compress / use_mmap:
        Forwarded to every disk-backed segment (StreamVByte blob
        records / mmap read path).  Ignored when ``kv_factory`` builds
        the stores or segments are in-memory.
    replicas:
        Replica copies per shard.  ``replicas=R`` wraps every segment
        in a :class:`~repro.storage.replication.ReplicatedShard`
        (primary + R replicas, synchronous writes, read failover).
    hot_cache_bytes:
        **Total** decoded-blob hot-cache budget, split evenly across
        the shard-local caches like ``cache_bytes`` (the adaptive
        tuner may rebalance per shard afterwards).  Ignored when
        ``kv_factory`` builds the stores or segments are in-memory.
    """

    def __init__(self, path: str | Path | None = None, num_shards: int = 1,
                 cache_bytes: int = 0, kv_factory=None,
                 compress: bool = False, use_mmap: bool = False,
                 replicas: int = 0, hot_cache_bytes: int = 0):
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        self._lock = _RWLock(name="ShardedGraphStore._lock")
        self._router = ShardRouter(num_shards)  # guarded-by: self._lock
        self._path = path  # guarded-by: self._lock
        self._cache_bytes = cache_bytes
        self._hot_cache_bytes = hot_cache_bytes
        self._kv_factory = kv_factory
        self._compress = compress
        self._use_mmap = use_mmap
        self._replicas = replicas
        self._generation = 0  # guarded-by: self._lock
        self._migration: _Migration | None = None  # guarded-by: self._lock
        self._path_next: str | Path | None = None  # guarded-by: self._lock
        self.reshard_stats = ReshardStats()
        self._segments = [self._build_segment(shard, num_shards,  # guarded-by: self._lock
                                              generation=0)
                          for shard in range(num_shards)]

    def _build_segment(self, shard: int, num_shards: int,
                       generation: int,
                       path=None) -> "GraphStore | ReplicatedShard":
        """One shard: a plain ``GraphStore`` or a replicated set."""
        if path is None:
            path = self._path
        per_shard_cache = (self._cache_bytes // num_shards
                           if num_shards else 0)
        # Like the block cache, the hot-cache budget is a store-wide
        # total split evenly; the adaptive tuner rebalances per shard
        # afterwards via HotSetCache.set_capacity.
        per_shard_hot = (self._hot_cache_bytes // num_shards
                         if num_shards else 0)

        def make(seg_path):
            if self._kv_factory is not None:
                return GraphStore(kv=self._kv_factory(seg_path, shard))
            return GraphStore(seg_path, cache_bytes=per_shard_cache,
                              compress=self._compress,
                              use_mmap=self._use_mmap,
                              hot_cache_bytes=per_shard_hot)

        primary = make(self.segment_path(path, shard,
                                         generation=generation))
        if not self._replicas:
            return primary
        copies = [primary]
        copies += [make(self.segment_path(path, shard, replica=j,
                                          generation=generation))
                   for j in range(self._replicas)]
        return ReplicatedShard(copies, shard=shard)

    @staticmethod
    def segment_path(path: str | Path | None, shard: int,
                     replica: int | None = None,
                     generation: int = 0) -> Path | None:
        """On-disk segment file for ``shard`` (None stays in-memory).

        Generation 0 primaries keep the historical ``<path>.shard<N>``
        name so existing deployments reopen unchanged; replicas append
        ``.r<J>`` and later generations prefix ``.g<G>``.
        """
        if path is None:
            return None
        gen = f".g{generation}" if generation else ""
        rep = f".r{replica}" if replica is not None else ""
        return Path(f"{path}{gen}.shard{shard}{rep}")

    # -- topology ----------------------------------------------------------

    @property
    def router(self):
        """The live routing table.

        A plain :class:`ShardRouter` in steady state; during an online
        reshard, a two-generation :class:`_MigrationRouter` over the
        combined (old + new) segment index space.
        """
        migration = self._migration
        if migration is None:
            return self._router
        return _MigrationRouter(self._router, migration.router,
                                migration.migrated)

    @property
    def num_shards(self) -> int:
        """Current-generation shard count (stable during migration)."""
        return self._router.num_shards

    @property
    def num_replicas(self) -> int:
        return self._replicas

    @property
    def generation(self) -> int:
        """Bumps when the segment topology changes (reshard begin/flip).

        Engines watch this to refresh their per-shard bookkeeping; a
        batch that holds :meth:`read_guard` sees one stable generation
        end to end.
        """
        return self._generation

    @property
    def segments(self) -> list:
        """The per-shard stores (read-mostly; exposed for stats/tests).

        During an online reshard this is the **combined** list — old
        generation first, then the new generation's segments — matching
        the index space of :attr:`router`.
        """
        migration = self._migration
        if migration is None:
            return self._segments
        return self._segments + migration.segments

    @property
    def reshard_active(self) -> bool:
        return self._migration is not None

    def read_guard(self):
        """Shared-side context manager for multi-step read sequences.

        The parallel engine holds this across a whole batch (partition
        → fan-out → merge) so no mutation or generation flip can land
        mid-batch.  Mutations take the exclusive side internally.
        """
        return self._lock.read()

    def segment_of(self, v: int) -> "GraphStore | ReplicatedShard":
        """The segment serving **reads** of ``v`` (placement-aware)."""
        migration = self._migration
        if migration is not None and int(v) in migration.migrated:
            return migration.segments[migration.router.shard_of(v)]
        return self._segments[self._router.shard_of(v)]

    @property
    def stats(self) -> _SummedStorageStats:
        """Aggregated physical I/O across every segment."""
        return _SummedStorageStats(self.segments)

    def hot_caches(self) -> list:
        """Per-segment decoded-blob hot caches (empty when disabled).

        Replicated segments have none (their copies are plain block
        stores); this is the handle the adaptive tuner iterates to
        sample access frequencies and rebalance budgets.
        """
        out = []
        for seg in self.segments:
            hot = getattr(seg, "hot_cache", None)
            if hot is not None:
                out.append(hot)
        return out

    @property
    def degraded(self) -> bool:
        """True when any segment's backing store saw IO faults."""
        return any(seg.degraded for seg in self.segments)

    def reset_degraded(self) -> None:
        """Clear every segment's fault latch after recovery.

        Plain segments drop their injector's ``degraded`` flag;
        replicated segments additionally repair stale copies and
        reinstate their home primary (the failover/reinstate path).
        """
        # Repair runs *under* the exclusive lock on purpose: resyncing
        # a stale replica while writers were admitted would let a copy
        # be marked clean with writes it never saw, and a later
        # failover would then serve unsound (false-"absent") answers.
        # Recovery is rare; correctness of one-sided errors is not
        # negotiable.  See DESIGN.md §14.
        with self._lock.write():
            for seg in self.segments:
                seg.reset_degraded()

    @property
    def num_vertices(self) -> int:
        with self._lock.read():
            return sum(seg.num_vertices for seg in self._segments)

    def vertices(self):
        with self._lock.read():
            # Snapshot under the guard: the old generation is complete
            # during migration, so its segments alone enumerate the set.
            out: list[int] = []
            for seg in self._segments:
                out.extend(seg.vertices())
        return iter(out)

    # -- load / read -------------------------------------------------------

    def bulk_load(self, graph: Graph | DiGraph) -> None:
        """Partition every adjacency list to its owning segment."""
        directed = isinstance(graph, DiGraph)
        for v in graph.vertices():
            if directed:
                neighbors = sorted(graph.out_neighbors(v) | graph.in_neighbors(v))
            else:
                neighbors = graph.sorted_neighbors(v)
            self.put_neighbors(v, neighbors)
        self.flush()

    def get_neighbors(self, v: int,
                      receipt: ReadReceipt | None = None) -> list[int]:
        with self._lock.read():
            return self.segment_of(v).get_neighbors(v, receipt=receipt)

    def get_neighbors_array(self, v: int,
                            receipt: ReadReceipt | None = None) -> np.ndarray:
        with self._lock.read():
            return self.segment_of(v).get_neighbors_array(v, receipt=receipt)

    def get_neighbors_many(self, vertices,
                           receipt: ReadReceipt | None = None,
                           ) -> dict[int, np.ndarray]:
        """Multi-get partitioned by owner: one pass per touched segment."""
        vertices = [int(v) for v in vertices]
        if not vertices:
            return {}
        with self._lock.read():
            segments = self.segments
            by_shard: dict[int, list[int]] = {}
            router = self.router
            for v in vertices:
                by_shard.setdefault(router.shard_of(v), []).append(v)
            out: dict[int, np.ndarray] = {}
            missing: list[int] = []
            for shard, owned in by_shard.items():
                try:
                    out.update(segments[shard].get_neighbors_many(
                        owned, receipt=receipt))
                except KeyError:
                    # Re-collect so the aggregate error names *all* missing
                    # vertices across segments, matching GraphStore.
                    missing.extend(v for v in owned
                                   if not segments[shard].has_vertex(v))
            if missing:
                raise KeyError(f"vertices {sorted(missing)} are not stored")
            return {v: out[v] for v in dict.fromkeys(vertices)}

    def has_vertex(self, v: int) -> bool:
        with self._lock.read():
            return self.segment_of(v).has_vertex(v)

    def has_edge(self, u: int, v: int,
                 receipt: ReadReceipt | None = None) -> bool:
        """One disk access against the segment owning ``u``."""
        with self._lock.read():
            return self.segment_of(u).has_edge(u, v, receipt=receipt)

    def probe_shard(self, shard: int, us, vs,
                    receipt: ReadReceipt | None = None) -> np.ndarray:
        """Blob-native batched probe against one segment.

        Callers must route: every ``us[i]`` must be owned by ``shard``.
        This is the unit of work the parallel engine hands to a pool
        thread — the segment's multi-get, cache, and stats are all
        shard-local, so concurrent probes of different shards share no
        mutable state but the (locked) metrics registry.  The engine's
        coordinator holds :meth:`read_guard` for the whole batch, so
        pool tasks deliberately do **not** re-acquire the lock here.
        """
        return self.segments[shard].probe_edges(us, vs, receipt=receipt)

    def has_edge_many(self, us, vs,
                      receipt: ReadReceipt | None = None) -> np.ndarray:
        """Vectorized edge queries, partitioned by owning shard.

        Serial loop over the segments (the thread fan-out lives in the
        engine, not the store); verdicts come back in input order.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must be aligned")
        answers = np.zeros(len(us), dtype=bool)
        if len(us) == 0:
            return answers
        with self._lock.read():
            for shard, idx in enumerate(self.router.partition(us)):
                if len(idx):
                    answers[idx] = self.probe_shard(shard, us[idx], vs[idx],
                                                    receipt=receipt)
        return answers

    # -- updates -----------------------------------------------------------

    def _apply_write(self, v: int, op: str, *args):
        """Apply one single-vertex write to every generation owning it.

        The old generation always takes the write (it stays complete
        until the flip); a migrated vertex is dual-written so its new
        placement also has the latest state (read-your-writes for reads
        already routed there).  An unmigrated vertex joins the pending
        worklist — covering vertices created after ``begin_reshard``.
        Callers hold the exclusive lock.
        """
        result = getattr(self._segments[self._router.shard_of(v)],
                         op)(v, *args)
        migration = self._migration
        if migration is not None:
            if v in migration.migrated:
                target = migration.segments[migration.router.shard_of(v)]
                getattr(target, op)(v, *args)
            elif op == "remove_vertex_record":
                migration.pending.discard(v)
            else:
                migration.pending.add(v)
        return result

    def put_neighbors(self, v: int, neighbors: list[int]) -> None:
        with self._lock.write():
            self._apply_write(int(v), "put_neighbors", neighbors)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add ``(u, v)``: one half-edge per owning segment."""
        if u == v:
            raise ValueError("self loops are not allowed")
        with self._lock.write():
            changed = self._apply_write(int(u), "insert_half_edge", v)
            changed = self._apply_write(int(v), "insert_half_edge",
                                        u) or changed
            return changed

    def delete_edge(self, u: int, v: int) -> bool:
        with self._lock.write():
            changed = self._apply_write(int(u), "remove_half_edge", v)
            changed = self._apply_write(int(v), "remove_half_edge",
                                        u) or changed
            return changed

    def delete_vertex(self, v: int) -> bool:
        """Remove ``v`` everywhere: neighbors may live on any segment.

        Runs under the exclusive side of the mutation guard, so an
        in-flight batch never observes the vertex half-deleted
        (scrubbed from some neighbors' lists but not others).
        """
        with self._lock.write():
            v = int(v)
            owner = self.segment_of(v)
            if not owner.has_vertex(v):
                return False
            for u in owner.get_neighbors(v):
                self._apply_write(int(u), "remove_half_edge", v)
            return bool(self._apply_write(v, "remove_vertex_record"))

    # -- resharding --------------------------------------------------------

    def reshard(self, num_shards: int, path: str | Path | None = None,
                cache_bytes=_INHERIT, kv_factory=_INHERIT,
                compress=_INHERIT, use_mmap=_INHERIT,
                replicas=_INHERIT,
                hot_cache_bytes=_INHERIT) -> "ShardedGraphStore":
        """Offline reshard: migrate every record into a new S′-shard store.

        Rows move between segments but are never rewritten: resharding
        S → S′ preserves every (vertex → adjacency) pair exactly, and
        the in-memory codes are untouched because the router only
        decides *placement*, never encoding.

        Storage configuration — ``compress``, ``use_mmap``,
        ``cache_bytes``, ``hot_cache_bytes``, ``kv_factory``,
        ``replicas`` — is **inherited
        from this store** unless explicitly overridden, so resharding a
        compressed+mmap deployment yields a compressed+mmap target (it
        used to silently drop every knob).  ``path`` stays explicit:
        defaulting it to the source path would overwrite the source's
        own segment files.

        The final flush is durable (``sync=True``): the target's rows
        are on disk before the caller can retire the source.  For
        resharding *in place* without downtime, see
        :meth:`begin_reshard` / :meth:`migrate_step` /
        :meth:`finish_reshard`.
        """
        target = ShardedGraphStore(
            path, num_shards=num_shards,
            cache_bytes=(self._cache_bytes if cache_bytes is _INHERIT
                         else cache_bytes),
            kv_factory=(self._kv_factory if kv_factory is _INHERIT
                        else kv_factory),
            compress=(self._compress if compress is _INHERIT else compress),
            use_mmap=(self._use_mmap if use_mmap is _INHERIT else use_mmap),
            replicas=(self._replicas if replicas is _INHERIT else replicas),
            hot_cache_bytes=(self._hot_cache_bytes
                             if hot_cache_bytes is _INHERIT
                             else hot_cache_bytes),
        )
        with self._lock.read():
            for seg in self._segments:
                for v in list(seg.vertices()):
                    target.put_neighbors(v, seg.get_neighbors(v))
        target.flush(sync=True)
        return target

    def begin_reshard(self, num_shards: int,
                      path: str | Path | None = None) -> None:
        """Open a new generation of segments and start a live migration.

        Reads and writes keep flowing: the old generation remains
        write-complete, and a background (or interleaved) driver calls
        :meth:`migrate_step` until :meth:`finish_reshard` flips.  The
        new generation inherits this store's configuration.  In-place
        (``path=None``) the new segments live under a ``.g<G>`` prefix
        of the store's own base path; an explicit ``path`` relocates
        them under plain gen-0 names, so the flipped store can later be
        reopened as ``ShardedGraphStore(path, num_shards)`` directly
        (in-memory stores stay in-memory either way).
        """
        with self._lock.write():
            if self._migration is not None:
                raise RuntimeError("a reshard is already in progress")
            generation = self._generation + 1
            # Explicit relocation gets gen-0 file names at the new base;
            # in-place migration needs the .g<G> prefix to avoid
            # colliding with the live generation's files.
            name_generation = 0 if path is not None else generation
            self._path_next = path
            router = ShardRouter(num_shards)
            segments = [self._build_segment(shard, num_shards,
                                            generation=name_generation,
                                            path=path)
                        for shard in range(num_shards)]
            pending: set[int] = set()
            for seg in self._segments:
                pending.update(int(v) for v in seg.vertices())
            self._migration = _Migration(router, segments, pending)
            self._generation = generation
            self.reshard_stats.set_gauge("active", 1)
            self.reshard_stats.set_gauge("vertices_pending", len(pending))
            self.reshard_stats.set_gauge("progress", 0.0)

    def migrate_step(self, max_vertices: int = 256) -> int:
        """Copy up to ``max_vertices`` pending vertices into the new
        generation; returns how many moved (0 = worklist drained).

        Each step holds the exclusive lock only for its chunk, so
        queries interleave between steps — the "online" in online
        resharding.  A copied vertex immediately serves reads from its
        new placement and is dual-written from then on.
        """
        with self._lock.write():
            migration = self._migration
            if migration is None:
                raise RuntimeError("no reshard in progress")
            moved = 0
            while migration.pending and moved < max_vertices:
                v = migration.pending.pop()
                seg = self._segments[self._router.shard_of(v)]
                if seg.has_vertex(v):
                    target = migration.segments[migration.router.shard_of(v)]
                    target.put_neighbors(v, seg.get_neighbors(v))
                    migration.migrated.add(v)
                moved += 1
            self.reshard_stats.inc("vertices_migrated", moved)
            done = len(migration.migrated)
            self.reshard_stats.set_gauge("vertices_pending",
                                         len(migration.pending))
            self.reshard_stats.set_gauge(
                "progress", min(1.0, done / migration.total))
            return moved

    def finish_reshard(self) -> None:
        """Drain the worklist, flush the new generation durably, and
        atomically flip the routing table to it.

        The flip happens under the exclusive lock **after** a
        ``flush(sync=True)`` of every new segment — the generation
        change can never land before the migrated rows are durable.
        The old generation's segments are closed once no reader can
        reach them.

        The bulk of the fsync work happens *before* the flip span: each
        new segment is pre-flushed durably in its own short exclusive
        window (readers interleave between segments), so the final
        exclusive span only re-syncs whatever straggler writes landed
        after its segment's pre-flush.
        """
        while self.migrate_step():
            pass
        # Durable pre-flush, one segment per exclusive window.  The
        # lock is dropped between segments so read latency stays
        # bounded by a single fsync, not the whole generation's.
        pre = self._migration
        if pre is not None:
            for seg in list(pre.segments):
                with self._lock.write():
                    if self._migration is not pre:
                        break  # a concurrent finisher already flipped
                    seg.flush(sync=True)  # lint: disable=R012 (pre-flush holds the lock for one segment's fsync only; the span exists to keep the segment consistent while it syncs)
        with self._lock.write():
            migration = self._migration
            if migration is None:
                raise RuntimeError("no reshard in progress")
            # Writers may have enqueued fresh vertices since the drain.
            while migration.pending:
                v = migration.pending.pop()
                seg = self._segments[self._router.shard_of(v)]
                if seg.has_vertex(v):
                    target = migration.segments[migration.router.shard_of(v)]
                    target.put_neighbors(v, seg.get_neighbors(v))
                    migration.migrated.add(v)
            for seg in migration.segments:
                # Only straggler writes since the pre-flush are still
                # buffered, so this fsync is near-empty.
                seg.flush(sync=True)  # lint: disable=R012 (flip must not land before the last stragglers are durable; the pre-flush above already drained the heavy fsync outside this span)
            retired = self._segments
            self._segments = migration.segments
            self._router = migration.router
            self._migration = None
            self._generation += 1
            if self._path_next is not None:
                self._path = self._path_next
            self._path_next = None
            self.reshard_stats.inc("migrations")
            self.reshard_stats.set_gauge("active", 0)
            self.reshard_stats.set_gauge("vertices_pending", 0)
            self.reshard_stats.set_gauge("progress", 1.0)
            for seg in retired:
                seg.close()

    # -- lifecycle ---------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        """Flush every segment through the public ``GraphStore.flush``.

        ``sync=True`` makes the flush durable (fsync) — the mode the
        reshard flip uses before retiring a generation.
        """
        for seg in self.segments:
            seg.flush(sync)

    def close(self) -> None:
        for seg in self.segments:
            seg.close()

    def __enter__(self) -> "ShardedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
