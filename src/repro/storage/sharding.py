"""Hash-partitioned storage: the shard layer under the parallel engine.

Production graph stores scale reads by partitioning: ε-Cost Sharding
(Vigna 2025) shows a static filter structure can be hash-split into
independent shards at near-zero per-shard cost, and the paper's own
NDF is embarrassingly parallel across query pairs — ``F(f(u), f(v))``
has no cross-pair dependencies.  This module supplies the two pieces
that make that concrete here:

- :class:`ShardRouter` — a **stable** hash of vertex id → shard.  The
  same mixer (splitmix64's finalizer) runs scalar and vectorized, is
  identical across processes and Python versions (no ``PYTHONHASHSEED``
  dependence), and co-locates everything keyed by a vertex: its code
  row, its adjacency record, and its cache entry all live with the
  owning shard.
- :class:`ShardedGraphStore` — S independent
  :class:`~repro.storage.graphstore.GraphStore` segments, each backed
  by its own log file and shard-local LRU cache, behind the exact
  ``GraphStore`` interface.  Edge ``(u, v)`` is stored as two
  half-edges routed to the segments owning ``u`` and ``v``; batched
  probes partition the pair array by the owner of the *left* endpoint,
  which is the only endpoint whose adjacency list is read.

Per-segment isolation is what makes thread-pool execution safe and
attribution exact: pool tasks touch disjoint segment files, disjoint
caches, and disjoint ``StorageStats`` scopes, so no shared mutable
counter is ever incremented from two threads at once.  Fault injection
passes through per shard — wrap any subset of segments via
``kv_factory`` and only those segments degrade.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..graph import DiGraph, Graph
from ..obs import ReadReceipt
from .graphstore import GraphStore

__all__ = ["ShardRouter", "ShardedGraphStore"]

_MASK64 = (1 << 64) - 1
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """splitmix64 finalizer: the scalar reference mixer.

    Pure integer arithmetic — deterministic across processes, seeds,
    and platforms, unlike ``hash()`` under ``PYTHONHASHSEED``.
    """
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _C1) & _MASK64
    x = ((x ^ (x >> 27)) * _C2) & _MASK64
    return x ^ (x >> 31)


class ShardRouter:
    """Stable vertex → shard assignment via splitmix64.

    One router instance is shared by the codes, the storage segments,
    and the cache layer, so a vertex's whole working set is
    partition-local (the Hybrid Graph Representation argument for
    keeping the hot membership structure with its partition).
    """

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, v: int) -> int:
        """Owning shard of vertex ``v`` (scalar path)."""
        return _mix64(int(v) & _MASK64) % self.num_shards

    def shard_of_array(self, ids) -> np.ndarray:
        """Vectorized :meth:`shard_of` over an id array."""
        x = np.asarray(ids, dtype=np.int64).astype(np.uint64)
        x = x + np.uint64(_GOLDEN)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_C1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_C2)
        x = x ^ (x >> np.uint64(31))
        return (x % np.uint64(self.num_shards)).astype(np.int64)

    def partition(self, ids) -> list[np.ndarray]:
        """Index arrays grouping ``ids`` by owning shard, input-stable.

        ``partition(us)[s]`` are the positions in ``us`` owned by shard
        ``s``, in their original order — the merge step only needs
        ``answers[idx] = shard_answers`` to restore input order.
        """
        shards = self.shard_of_array(ids)
        if self.num_shards == 1:
            return [np.arange(len(shards), dtype=np.int64)]
        order = np.argsort(shards, kind="stable")
        counts = np.bincount(shards, minlength=self.num_shards)
        return np.split(order, np.cumsum(counts)[:-1])


class _SummedStorageStats:
    """Read-only aggregate over the per-segment ``StorageStats`` views."""

    _FIELDS = ("disk_reads", "disk_writes", "bytes_read", "bytes_written",
               "cache_hits", "cache_misses", "checksum_failures",
               "compressed_puts", "blob_bytes_raw", "blob_bytes_stored")

    def __init__(self, segments: list[GraphStore]):
        object.__setattr__(self, "_segments", segments)

    def __getattr__(self, name: str):
        if name in self._FIELDS:
            return sum(getattr(seg.stats, name) for seg in self._segments)
        raise AttributeError(f"StorageStats has no field {name!r}")

    @property
    def compression_ratio(self) -> float:
        """Live raw bytes over live stored bytes across every segment."""
        raw = stored = 0
        for seg in self._segments:
            kv = seg._kv
            raw += getattr(kv, "_live_raw", 0)
            stored += getattr(kv, "_live_stored", 0)
        return raw / stored if stored else 1.0

    def snapshot(self) -> dict[str, int | float]:
        out = {name: getattr(self, name) for name in self._FIELDS}
        out["compression_ratio"] = self.compression_ratio
        return out

    def diff(self, before: dict[str, int | float]) -> dict[str, int | float]:
        return {name: value - before.get(name, 0)
                for name, value in self.snapshot().items()}

    def reset(self) -> None:
        for seg in self._segments:
            seg.stats.reset()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"SummedStorageStats({fields})"


class ShardedGraphStore:
    """S hash-partitioned ``GraphStore`` segments behind one interface.

    Parameters
    ----------
    path:
        Base path for the segment logs (``<path>.shard<N>``), or None
        for in-memory segments (tests).
    num_shards:
        Segment count.  1 is legal and behaves like a plain store.
    cache_bytes:
        **Total** block-cache budget, split evenly across the
        shard-local caches so memory use matches a same-budget
        unsharded store.
    kv_factory:
        Optional ``(segment_path, shard) -> kv store`` hook.  This is
        the per-shard fault-injection passthrough: wrap any segment in
        a :class:`~repro.storage.faults.FaultInjectingKVStore` and only
        that shard's reads degrade.
    compress / use_mmap:
        Forwarded to every disk-backed segment (StreamVByte blob
        records / mmap read path).  Ignored when ``kv_factory`` builds
        the stores or segments are in-memory.
    """

    def __init__(self, path: str | Path | None = None, num_shards: int = 1,
                 cache_bytes: int = 0, kv_factory=None,
                 compress: bool = False, use_mmap: bool = False):
        self.router = ShardRouter(num_shards)
        per_shard_cache = cache_bytes // num_shards if num_shards else 0
        self._segments: list[GraphStore] = []
        for shard in range(num_shards):
            seg_path = self.segment_path(path, shard)
            if kv_factory is not None:
                store = GraphStore(kv=kv_factory(seg_path, shard))
            else:
                store = GraphStore(seg_path, cache_bytes=per_shard_cache,
                                   compress=compress, use_mmap=use_mmap)
            self._segments.append(store)

    @staticmethod
    def segment_path(path: str | Path | None, shard: int) -> Path | None:
        """On-disk segment file for ``shard`` (None stays in-memory)."""
        if path is None:
            return None
        return Path(f"{path}.shard{shard}")

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def segments(self) -> list[GraphStore]:
        """The per-shard stores (read-mostly; exposed for stats/tests)."""
        return self._segments

    def segment_of(self, v: int) -> GraphStore:
        return self._segments[self.router.shard_of(v)]

    @property
    def stats(self) -> _SummedStorageStats:
        """Aggregated physical I/O across every segment."""
        return _SummedStorageStats(self._segments)

    @property
    def degraded(self) -> bool:
        """True when any segment's backing store saw IO faults."""
        return any(seg.degraded for seg in self._segments)

    @property
    def num_vertices(self) -> int:
        return sum(seg.num_vertices for seg in self._segments)

    def vertices(self):
        for seg in self._segments:
            yield from seg.vertices()

    # -- load / read -------------------------------------------------------

    def bulk_load(self, graph: Graph | DiGraph) -> None:
        """Partition every adjacency list to its owning segment."""
        directed = isinstance(graph, DiGraph)
        for v in graph.vertices():
            if directed:
                neighbors = sorted(graph.out_neighbors(v) | graph.in_neighbors(v))
            else:
                neighbors = graph.sorted_neighbors(v)
            self.segment_of(v).put_neighbors(v, neighbors)
        self.flush()

    def get_neighbors(self, v: int,
                      receipt: ReadReceipt | None = None) -> list[int]:
        return self.segment_of(v).get_neighbors(v, receipt=receipt)

    def get_neighbors_array(self, v: int,
                            receipt: ReadReceipt | None = None) -> np.ndarray:
        return self.segment_of(v).get_neighbors_array(v, receipt=receipt)

    def get_neighbors_many(self, vertices,
                           receipt: ReadReceipt | None = None,
                           ) -> dict[int, np.ndarray]:
        """Multi-get partitioned by owner: one pass per touched segment."""
        vertices = [int(v) for v in vertices]
        if not vertices:
            return {}
        by_shard: dict[int, list[int]] = {}
        for v in vertices:
            by_shard.setdefault(self.router.shard_of(v), []).append(v)
        out: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for shard, owned in by_shard.items():
            try:
                out.update(self._segments[shard].get_neighbors_many(
                    owned, receipt=receipt))
            except KeyError:
                # Re-collect so the aggregate error names *all* missing
                # vertices across segments, matching GraphStore.
                missing.extend(v for v in owned
                               if not self._segments[shard].has_vertex(v))
        if missing:
            raise KeyError(f"vertices {sorted(missing)} are not stored")
        return {v: out[v] for v in dict.fromkeys(vertices)}

    def has_vertex(self, v: int) -> bool:
        return self.segment_of(v).has_vertex(v)

    def has_edge(self, u: int, v: int,
                 receipt: ReadReceipt | None = None) -> bool:
        """One disk access against the segment owning ``u``."""
        return self.segment_of(u).has_edge(u, v, receipt=receipt)

    def probe_shard(self, shard: int, us, vs,
                    receipt: ReadReceipt | None = None) -> np.ndarray:
        """Blob-native batched probe against one segment.

        Callers must route: every ``us[i]`` must be owned by ``shard``.
        This is the unit of work the parallel engine hands to a pool
        thread — the segment's multi-get, cache, and stats are all
        shard-local, so concurrent probes of different shards share no
        mutable state but the (locked) metrics registry.
        """
        return self._segments[shard].probe_edges(us, vs, receipt=receipt)

    def has_edge_many(self, us, vs,
                      receipt: ReadReceipt | None = None) -> np.ndarray:
        """Vectorized edge queries, partitioned by owning shard.

        Serial loop over the segments (the thread fan-out lives in the
        engine, not the store); verdicts come back in input order.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must be aligned")
        answers = np.zeros(len(us), dtype=bool)
        if len(us) == 0:
            return answers
        for shard, idx in enumerate(self.router.partition(us)):
            if len(idx):
                answers[idx] = self.probe_shard(shard, us[idx], vs[idx],
                                                receipt=receipt)
        return answers

    # -- updates -----------------------------------------------------------

    def put_neighbors(self, v: int, neighbors: list[int]) -> None:
        self.segment_of(v).put_neighbors(v, neighbors)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add ``(u, v)``: one half-edge per owning segment."""
        if u == v:
            raise ValueError("self loops are not allowed")
        changed = self.segment_of(u).insert_half_edge(u, v)
        changed = self.segment_of(v).insert_half_edge(v, u) or changed
        return changed

    def delete_edge(self, u: int, v: int) -> bool:
        changed = self.segment_of(u).remove_half_edge(u, v)
        changed = self.segment_of(v).remove_half_edge(v, u) or changed
        return changed

    def delete_vertex(self, v: int) -> bool:
        """Remove ``v`` everywhere: neighbors may live on any segment."""
        owner = self.segment_of(v)
        if not owner.has_vertex(v):
            return False
        for u in owner.get_neighbors(v):
            self.segment_of(u).remove_half_edge(u, v)
        return owner.remove_vertex_record(v)

    # -- resharding --------------------------------------------------------

    def reshard(self, num_shards: int, path: str | Path | None = None,
                cache_bytes: int = 0, kv_factory=None,
                compress: bool = False,
                use_mmap: bool = False) -> "ShardedGraphStore":
        """Migrate every adjacency record into an S′-shard store.

        Rows move between segments but are never rewritten: resharding
        S → S′ preserves every (vertex → adjacency) pair exactly, and
        the in-memory codes are untouched because the router only
        decides *placement*, never encoding.
        """
        target = ShardedGraphStore(path, num_shards=num_shards,
                                   cache_bytes=cache_bytes,
                                   kv_factory=kv_factory,
                                   compress=compress, use_mmap=use_mmap)
        for seg in self._segments:
            for v in seg.vertices():
                target.put_neighbors(v, seg.get_neighbors(v))
        target.flush()
        return target

    # -- lifecycle ---------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        for seg in self._segments:
            seg._kv.flush(sync)

    def close(self) -> None:
        for seg in self._segments:
            seg.close()

    def __enter__(self) -> "ShardedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
