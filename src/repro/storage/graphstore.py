"""Adjacency-list storage over the KV store.

``GraphStore`` persists each vertex's sorted neighbor list as a packed
``uint32`` array under the vertex ID, mirroring how the paper keeps
adjacency lists in RocksDB.  Edge queries and updates go through it, so
its disk counters measure exactly the I/O that VEND is meant to avoid.
"""

from __future__ import annotations

import bisect
from pathlib import Path

import numpy as np

from ..graph import DiGraph, Graph
from ..obs import ReadReceipt, StorageStats, default_tracer
from .kvstore import DiskKVStore, InMemoryKVStore

__all__ = ["GraphStore", "membership_sweep"]


def _pack(neighbors: list[int]) -> bytes:
    return np.asarray(neighbors, dtype=np.uint32).tobytes()


def _unpack(blob: bytes) -> list[int]:
    return np.frombuffer(blob, dtype=np.uint32).tolist()


#: Vertex IDs are stored as uint32; probes outside this range miss.
_ID_LIMIT = 2**32


def membership_sweep(data: np.ndarray, counts: np.ndarray,
                     group: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """One searchsorted answering many per-list membership probes.

    ``data`` is the uint8 concatenation of sorted uint32 adjacency
    lists with ``counts[i]`` values each; probe ``j`` asks whether
    ``vs[j]`` is in list ``group[j]``.  Every list is shifted into a
    disjoint value range so a single global ``searchsorted`` answers
    all probes at once.  Shared by the batched probe paths and the
    process-pool shard workers.
    """
    if data.size == 0:
        return np.zeros(len(vs), dtype=bool)
    base = np.arange(len(counts), dtype=np.int64) * _ID_LIMIT
    combined = (data.view(np.uint32).astype(np.int64)
                + np.repeat(base, counts))
    valid = (vs >= 0) & (vs < _ID_LIMIT)
    probes = vs + base[group]
    pos = np.searchsorted(combined, probes)
    pos = np.minimum(pos, len(combined) - 1)
    return (combined[pos] == probes) & valid


def _probe(blob: bytes, v: int) -> bool:
    """Sorted-membership test directly on a packed adjacency blob.

    ``np.frombuffer`` is a zero-copy view, so the blob is never
    materialized as a Python list; one ``searchsorted`` answers the
    membership query.
    """
    if not 0 <= v < _ID_LIMIT:
        return False
    neighbors = np.frombuffer(blob, dtype=np.uint32)
    idx = int(neighbors.searchsorted(np.uint32(v)))
    return idx < len(neighbors) and int(neighbors[idx]) == v


class GraphStore:
    """Disk-resident adjacency lists with edge-level operations.

    Parameters
    ----------
    path:
        Backing file for the KV log, or None for an in-memory store
        (tests).  ``cache_bytes`` configures the block cache.
    kv:
        A pre-built KV store (e.g. a
        :class:`~repro.storage.faults.FaultInjectingKVStore` wrapping a
        disk store).  Overrides ``path``/``cache_bytes`` when given.
    compress / use_mmap / hot_cache_bytes:
        Forwarded to :class:`~repro.storage.kvstore.DiskKVStore`
        (StreamVByte blob records / mmap read path / decoded-blob hot
        cache budget).  Ignored for in-memory and pre-built stores.
    """

    def __init__(self, path: str | Path | None = None, cache_bytes: int = 0,
                 kv=None, compress: bool = False, use_mmap: bool = False,
                 hot_cache_bytes: int = 0):
        if kv is not None:
            self._kv = kv
        elif path is None:
            self._kv = InMemoryKVStore(cache_bytes=cache_bytes)
        else:
            self._kv = DiskKVStore(path, cache_bytes=cache_bytes,
                                   compress=compress, use_mmap=use_mmap,
                                   hot_cache_bytes=hot_cache_bytes)

    @property
    def stats(self) -> StorageStats:
        return self._kv.stats

    @property
    def hot_cache(self):
        """The backing store's decoded-blob hot cache, or None."""
        return getattr(self._kv, "hot_cache", None)

    @property
    def degraded(self) -> bool:
        """True when the backing store saw IO faults (see faults.py)."""
        return bool(getattr(self._kv, "degraded", False))

    @property
    def num_vertices(self) -> int:
        return len(self._kv)

    def vertices(self):
        return self._kv.keys()

    # -- load / read -------------------------------------------------------

    def bulk_load(self, graph: Graph | DiGraph) -> None:
        """Persist every adjacency list of ``graph``.

        Directed graphs are stored undirected (in ∪ out neighbors), as
        the paper does: "each graph is taken as undirected and the
        adjacent list of each vertex contains both in and out
        neighbors".
        """
        if isinstance(graph, DiGraph):
            for v in graph.vertices():
                merged = sorted(graph.out_neighbors(v) | graph.in_neighbors(v))
                self._kv.put(v, _pack(merged))
        else:
            for v in graph.vertices():
                self._kv.put(v, _pack(graph.sorted_neighbors(v)))
        self._kv.flush()

    def get_neighbors(self, v: int,
                      receipt: ReadReceipt | None = None) -> list[int]:
        """Fetch the sorted adjacency list of ``v`` (a disk access)."""
        with default_tracer().span("storage_get"):
            blob = self._kv.get(v, receipt=receipt)
        if blob is None:
            raise KeyError(f"vertex {v} is not stored")
        return _unpack(blob)

    def get_neighbors_array(self, v: int,
                            receipt: ReadReceipt | None = None) -> np.ndarray:
        """Sorted adjacency of ``v`` as a zero-copy ``uint32`` array."""
        with default_tracer().span("storage_get"):
            blob = self._kv.get(v, receipt=receipt)
        if blob is None:
            raise KeyError(f"vertex {v} is not stored")
        return np.frombuffer(blob, dtype=np.uint32)

    def get_neighbors_many(self, vertices,
                           receipt: ReadReceipt | None = None,
                           ) -> dict[int, np.ndarray]:
        """Multi-get: one deduplicated, offset-ordered storage pass.

        Returns ``{vertex: sorted uint32 adjacency array}``; raises
        ``KeyError`` naming the missing vertices, mirroring
        :meth:`get_neighbors`.
        """
        with default_tracer().span("storage_multi_get"):
            blobs = self._kv.get_many(vertices, receipt=receipt)
        missing = [v for v, blob in blobs.items() if blob is None]
        if missing:
            raise KeyError(f"vertices {sorted(missing)} are not stored")
        return {v: np.frombuffer(blob, dtype=np.uint32)
                for v, blob in blobs.items()}

    def has_vertex(self, v: int) -> bool:
        return v in self._kv

    def has_edge(self, u: int, v: int,
                 receipt: ReadReceipt | None = None) -> bool:
        """Edge query against storage: one disk access on ``u``'s list."""
        with default_tracer().span("storage_get"):
            blob = self._kv.get(u, receipt=receipt)
        if blob is None:
            raise KeyError(f"vertex {u} is not stored")
        return _probe(blob, v)

    def has_edge_many(self, us, vs,
                      receipt: ReadReceipt | None = None) -> np.ndarray:
        """Vectorized edge queries: grouped multi-get + one searchsorted.

        Probe lists are grouped by left endpoint, each distinct
        adjacency list is fetched once via :meth:`get_neighbors_many`,
        and membership is answered with a single ``searchsorted`` over
        the group-offset-shifted concatenation of those lists.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must be aligned")
        if len(us) == 0:
            return np.zeros(0, dtype=bool)
        unique_us, group = np.unique(us, return_inverse=True)
        adjacency = self.get_neighbors_many(unique_us.tolist(),
                                            receipt=receipt)
        arrays = [adjacency[int(u)] for u in unique_us]
        lengths = np.asarray([len(a) for a in arrays], dtype=np.int64)
        if lengths.sum() == 0:
            return np.zeros(len(us), dtype=bool)
        # Shift every group into a disjoint value range so one global
        # searchsorted answers all per-group membership probes at once.
        base = np.arange(len(arrays), dtype=np.int64) * _ID_LIMIT
        combined = np.concatenate(
            [a.astype(np.int64) for a in arrays]
        ) + np.repeat(base, lengths)
        valid = (vs >= 0) & (vs < _ID_LIMIT)
        probes = vs + base[group]
        pos = np.searchsorted(combined, probes)
        pos = np.minimum(pos, len(combined) - 1)
        return (combined[pos] == probes) & valid

    def probe_edges(self, us, vs,
                    receipt: ReadReceipt | None = None) -> np.ndarray:
        """Blob-native :meth:`has_edge_many`: identical verdicts, fewer
        intermediates.

        The multi-get goes through the KV store's ``get_many_packed``
        when it offers one: the distinct adjacency blobs come back as
        one contiguous byte array plus a length vector, so everything
        between the (coalesced, ``pread``-based) file reads and the
        final searchsorted is a handful of whole-batch numpy kernels —
        no per-record bytes objects, no dict of blobs, no
        concatenation of thousands of tiny arrays.  This is the
        per-shard hot path of the parallel query engine; pool threads
        spend their time in GIL-releasing C loops rather than Python
        list plumbing.  Stores without the packed read (e.g. a
        fault-injecting wrapper) fall back to :meth:`get_neighbors_many`
        semantics with identical verdicts and stats.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must be aligned")
        if len(us) == 0:
            return np.zeros(0, dtype=bool)
        hot = getattr(self._kv, "hot_cache", None)
        if hot is not None:
            # The frequency sketch must see the *raw* pre-dedup stream:
            # after np.unique every vertex appears once per batch and a
            # Zipfian hot set is indistinguishable from uniform noise.
            hot.observe(us)
            served = hot.probe_verdicts(us, vs)
            if served is not None:
                # Membership fast path: probes whose source vertex is
                # cached are answered straight from the decoded
                # snapshot — no dedup, no byte gather, no per-batch
                # sweep reconstruction.  Only the cold remainder walks
                # the full fetch path below (which also handles
                # admission and the missing-vertex KeyError).
                hit, verdicts, n_unique, stored = served
                if n_unique:
                    self._kv.book_hot_serves(n_unique, stored,
                                             receipt=receipt)
                if hit.all():
                    return verdicts
                miss = ~hit
                verdicts[miss] = self._probe_cold(us[miss], vs[miss],
                                                  receipt)
                return verdicts
        return self._probe_cold(us, vs, receipt)

    def _probe_cold(self, us: np.ndarray, vs: np.ndarray,
                    receipt: ReadReceipt | None) -> np.ndarray:
        """The fetch-and-sweep half of :meth:`probe_edges`."""
        unique_us, group = np.unique(us, return_inverse=True)
        packed = getattr(self._kv, "get_many_packed", None)
        with default_tracer().span("storage_multi_get"):
            if packed is not None:
                try:
                    data, byte_lengths = packed(unique_us,
                                                receipt=receipt)
                except KeyError as exc:
                    raise KeyError(
                        f"vertices {sorted(exc.args[0])} are not stored"
                    ) from None
                lengths = byte_lengths // 4
            else:
                blobs = self._kv.get_many(unique_us.tolist(),
                                          receipt=receipt)
                missing = [v for v, blob in blobs.items() if blob is None]
                if missing:
                    raise KeyError(
                        f"vertices {sorted(missing)} are not stored")
                # dict preserves insertion order == unique_us order, so
                # the joined buffer lines up with the group indices.
                data = np.frombuffer(b"".join(blobs.values()),
                                     dtype=np.uint8)
                lengths = np.fromiter(
                    (len(blob) for blob in blobs.values()),
                    dtype=np.int64, count=len(blobs)) // 4
        return membership_sweep(data, lengths, group, vs)

    # -- updates -------------------------------------------------------------

    def put_neighbors(self, v: int, neighbors: list[int]) -> None:
        """Overwrite the adjacency list of ``v`` (callers pass sorted)."""
        self._kv.put(v, _pack(neighbors))

    def insert_half_edge(self, a: int, b: int) -> bool:
        """Add ``b`` to ``a``'s adjacency list (one endpoint's half).

        The half-edge primitives exist so a sharded store can route
        each endpoint's read-modify-write to the segment that owns it:
        edge ``(u, v)`` may live in two different segment files.
        """
        blob = self._kv.get(a)
        neighbors = _unpack(blob) if blob is not None else []
        idx = bisect.bisect_left(neighbors, b)
        if idx >= len(neighbors) or neighbors[idx] != b:
            neighbors.insert(idx, b)
            self._kv.put(a, _pack(neighbors))
            return True
        return False

    def remove_half_edge(self, a: int, b: int) -> bool:
        """Remove ``b`` from ``a``'s adjacency list (one endpoint's half)."""
        blob = self._kv.get(a)
        if blob is None:
            return False
        neighbors = _unpack(blob)
        idx = bisect.bisect_left(neighbors, b)
        if idx < len(neighbors) and neighbors[idx] == b:
            neighbors.pop(idx)
            self._kv.put(a, _pack(neighbors))
            return True
        return False

    def remove_vertex_record(self, v: int) -> bool:
        """Drop ``v``'s own adjacency record (no neighbor scrubbing)."""
        return self._kv.delete(v)

    def insert_edge(self, u: int, v: int) -> bool:
        """Add edge ``(u, v)``; read-modify-write on both endpoints."""
        if u == v:
            raise ValueError("self loops are not allowed")
        changed = self.insert_half_edge(u, v)
        changed = self.insert_half_edge(v, u) or changed
        return changed

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove edge ``(u, v)``; returns False when absent."""
        changed = self.remove_half_edge(u, v)
        changed = self.remove_half_edge(v, u) or changed
        return changed

    def delete_vertex(self, v: int) -> bool:
        """Remove ``v`` and its incident edges from every neighbor list.

        Each neighbor's list is rewritten exactly once and ``v``'s own
        record is deleted once — ``d + 1`` writes for a degree-``d``
        vertex, not the ``2d + 1`` a ``delete_edge`` loop would pay
        (that loop would also rewrite ``v``'s shrinking list ``d``
        times just before deleting it).
        """
        blob = self._kv.get(v)
        if blob is None:
            return False
        for u in _unpack(blob):
            self.remove_half_edge(u, v)
        self._kv.delete(v)
        return True

    # -- lifecycle -----------------------------------------------------------

    def flush(self, sync: bool = False) -> None:
        """Flush buffered writes; ``sync=True`` fsyncs for durability.

        The public flush boundary — callers (the sharded store, the
        reshard generation flip) must not reach into ``_kv``.
        """
        self._kv.flush(sync)

    def reset_degraded(self) -> None:
        """Clear the backing store's fault latch after recovery.

        No-op for stores without one (plain disk/in-memory KV)."""
        reset = getattr(self._kv, "reset_degraded", None)
        if reset is not None:
            reset()

    def close(self) -> None:
        self._kv.close()

    def __enter__(self) -> "GraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
