"""Command-line interface: ``python -m repro <command>``.

Commands cover the basic operational loop of a VEND deployment:

- ``generate`` — synthesize a graph (named analogue or custom
  power-law) as an edge-list file;
- ``build`` — encode a graph into a persistent VEND index;
- ``info`` — describe an index file;
- ``query`` — run one NEpair determination;
- ``score`` — evaluate the VEND score on a sampled workload;
- ``analyze`` — index statistics and per-pair-class score breakdown;
- ``lint`` — the VEND invariant linter (rules R001–R006, DESIGN.md §9);
  ``--concurrency`` adds the lock-discipline/lifetime rules
  (R007–R012, DESIGN.md §14), ``--format json|github`` emits
  machine-readable output or workflow annotations;
- ``audit`` — seeded differential soundness sweep over registered
  solutions (zero false no-edge verdicts, scalar/batch agreement,
  post-maintenance validity); ``--chaos`` adds the kill-a-shard
  failover + online-reshard sweep over a replicated store;
- ``stats`` — run a seeded end-to-end workload and export every
  counter from the metrics registry (text, ``--json``, or
  ``--prometheus``); ``--filter PREFIX`` restricts the export to
  metric families whose name starts with ``PREFIX``;
- ``trace`` — the same workload with the span tracer enabled,
  printing the ``query → ndf_filter → storage_get → cache`` trees;
- ``bench`` — batched-query throughput, serial single-file engine vs
  the shard-parallel engine, with ``--check-speedup`` as a CI gate;
  ``--workload`` selects the probe mix (``random``/``edges`` pair
  batches, or the streaming ``zipfian``/``churn``/``mixed`` kinds from
  :mod:`repro.workloads`), and ``--check-hot-speedup`` gates the
  hot-set decode cache (``--hot-cache-bytes``) against a cold run of
  the same configuration;
- ``serve`` — the asyncio HTTP/JSON edge-query server (DESIGN.md §15):
  ``/v1/edges:probe``, ``/v1/neighbors``, ``/v1/mutations``,
  ``/healthz``, ``/metrics``, with cross-client probe coalescing,
  token-bucket admission (``--rate``/``--burst``) and backpressure;
- ``fuzz`` — the schema-driven fuzz harness against a ``serve``
  instance (or a self-hosted empty one): hypothesis-generated
  mutate/probe sequences vs a shadow ground truth, then a concurrent
  hammer phase; exits non-zero on any false no-edge verdict, 5xx, or
  malformed payload that was not answered with a 4xx.

``stats``, ``trace``, ``audit`` and ``bench`` accept
``--shards``/``--workers``/``--replicas`` (defaults: the
``REPRO_SHARDS``/``REPRO_WORKERS``/``REPRO_REPLICAS`` env vars) to
exercise the hash-partitioned store, thread-pool engine, and replica
failover instead of the serial path, plus the storage-tier switches
``--compress`` (StreamVByte v3 adjacency records, default
``$REPRO_COMPRESS``), ``--mmap`` (mmap-served packed reads, default
``$REPRO_MMAP``), ``--executor {thread,process}`` (default
``$REPRO_EXECUTOR`` or ``thread``) selecting how the parallel engine
fans out batches, and ``--hot-cache-bytes`` (default
``$REPRO_HOT_CACHE`` or 0) budgeting the shard-local decoded-blob hot
cache (DESIGN.md §16).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .core import (
    HybPlusVend,
    HybridVend,
    index_statistics,
    score_breakdown,
    vend_score,
)
from .core.persistence import load_index, save_index
from .datasets import dataset_names
from .datasets import load as load_dataset
from .graph import powerlaw_graph, read_edge_list, write_edge_list
from .workloads import common_neighbor_pairs, random_pairs

__all__ = ["main", "build_parser"]


def _env_flag(name: str) -> bool:
    """Truthiness of an environment switch (``1``/``true``/``yes``/``on``)."""
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes",
                                                        "on")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VEND: vertex encoding for edge nonexistence determination",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a graph as an edge-list file"
    )
    generate.add_argument("--out", required=True, type=Path)
    source = generate.add_mutually_exclusive_group(required=True)
    source.add_argument("--dataset", choices=dataset_names())
    source.add_argument("--powerlaw", nargs=2, metavar=("N", "AVG_DEGREE"))
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)

    build = commands.add_parser("build", help="encode a graph into an index")
    build.add_argument("--graph", required=True, type=Path)
    build.add_argument("--out", required=True, type=Path)
    build.add_argument("--method", choices=["hybrid", "hyb+"],
                       default="hyb+")
    build.add_argument("--k", type=int, default=8)
    build.add_argument("--id-bits", type=int, default=None)

    info = commands.add_parser("info", help="describe an index file")
    info.add_argument("index", type=Path)

    query = commands.add_parser("query", help="one NEpair determination")
    query.add_argument("index", type=Path)
    query.add_argument("u", type=int)
    query.add_argument("v", type=int)

    score = commands.add_parser("score", help="evaluate the VEND score")
    score.add_argument("--index", required=True, type=Path)
    score.add_argument("--graph", required=True, type=Path)
    score.add_argument("--pairs", type=int, default=100_000)
    score.add_argument("--workload", choices=["random", "common"],
                       default="random")
    score.add_argument("--seed", type=int, default=0)

    analyze = commands.add_parser(
        "analyze", help="index statistics and score breakdown"
    )
    analyze.add_argument("--index", required=True, type=Path)
    analyze.add_argument("--graph", required=True, type=Path)
    analyze.add_argument("--pairs", type=int, default=50_000)
    analyze.add_argument("--seed", type=int, default=0)

    lint = commands.add_parser(
        "lint", help="run the VEND invariant linter (R001-R006)"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated subset, e.g. R001,R003")
    lint.add_argument("--concurrency", action="store_true",
                      help="also run the concurrency-contract rules "
                           "(R007-R012, DESIGN.md §14)")
    lint.add_argument("--format", default="text",
                      choices=("text", "json", "github"),
                      help="text (default), json (machine-readable), or "
                           "github (::error workflow annotations)")

    audit = commands.add_parser(
        "audit", help="seeded soundness sweep over registered solutions"
    )
    audit.add_argument("--solutions", default="all",
                       help='comma-separated names or "all" (the registry)')
    audit.add_argument("--seed", type=int,
                       default=int(os.environ.get("REPRO_AUDIT_SEED", "0")))
    audit.add_argument("--vertices", type=int, default=300)
    audit.add_argument("--avg-degree", type=float, default=8.0)
    audit.add_argument("--k", type=int, default=6)
    audit.add_argument("--pairs", type=int, default=2000)
    audit.add_argument("--updates", type=int, default=50)
    audit.add_argument("--no-maintenance", action="store_true",
                       help="skip the insert+delete maintenance phase")
    audit.add_argument("--chaos", action="store_true",
                       help="kill-a-shard failover + online-reshard sweep "
                            "(needs --shards > 1; uses --replicas, default "
                            "1, and seeds injectors from $REPRO_FAULT_SEED)")
    audit.add_argument("--reshard-to", type=int, default=None,
                       help="online-reshard target for --chaos "
                            "(default: shards // 2)")
    audit.add_argument("--stream", default=None,
                       choices=["random", "zipfian", "edges", "churn",
                                "mixed"],
                       help="also run the streaming differential audit: "
                            "replay a seeded op stream against hot-cache-on "
                            "and hot-cache-off engines and require bitwise "
                            "identical verdicts and counters")
    audit.add_argument("--stream-ops", type=int, default=6000,
                       help="ops in the --stream audit (default 6000)")

    def add_shard_args(sub) -> None:
        sub.add_argument("--shards", type=int,
                         default=int(os.environ.get("REPRO_SHARDS", "1")),
                         help="storage segments (>1 enables the parallel "
                              "engine; default: $REPRO_SHARDS or 1)")
        sub.add_argument("--workers", type=int,
                         default=int(os.environ.get("REPRO_WORKERS", "0"))
                         or None,
                         help="query pool threads (default: $REPRO_WORKERS "
                              "or one per shard)")
        sub.add_argument("--replicas", type=int,
                         default=int(os.environ.get("REPRO_REPLICAS", "0")),
                         help="replica copies per shard (default: "
                              "$REPRO_REPLICAS or 0; >0 enables read "
                              "failover + repair)")
        sub.add_argument("--compress", action="store_true",
                         default=_env_flag("REPRO_COMPRESS"),
                         help="store adjacency blobs as StreamVByte v3 "
                              "records (default: $REPRO_COMPRESS)")
        sub.add_argument("--mmap", action="store_true",
                         default=_env_flag("REPRO_MMAP"),
                         help="serve packed reads from an mmap of the log "
                              "(default: $REPRO_MMAP)")
        sub.add_argument("--executor", choices=["thread", "process"],
                         default=os.environ.get("REPRO_EXECUTOR", "thread"),
                         help="parallel-engine fan-out mode (default: "
                              "$REPRO_EXECUTOR or thread); process mode "
                              "needs disk-backed, uncached segments")
        sub.add_argument("--hot-cache-bytes", type=int,
                         default=int(os.environ.get("REPRO_HOT_CACHE", "0")),
                         help="decoded-blob hot-cache budget, split across "
                              "shards (default: $REPRO_HOT_CACHE or 0 — "
                              "disabled)")

    add_shard_args(audit)

    def add_workload_args(sub) -> None:
        sub.add_argument("--vertices", type=int, default=300)
        sub.add_argument("--avg-degree", type=float, default=8.0)
        sub.add_argument("--k", type=int, default=6)
        sub.add_argument("--method", choices=["hybrid", "hyb+"],
                         default="hyb+")
        sub.add_argument("--pairs", type=int, default=2000)
        sub.add_argument("--updates", type=int, default=50)
        sub.add_argument("--cache-bytes", type=int, default=1 << 16)
        sub.add_argument("--seed", type=int, default=0)
        add_shard_args(sub)

    stats = commands.add_parser(
        "stats", help="run a seeded workload and export all metrics"
    )
    add_workload_args(stats)
    fmt = stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the registry as JSON")
    fmt.add_argument("--prometheus", action="store_true",
                     help="emit Prometheus text exposition format")
    stats.add_argument("--filter", default=None, metavar="PREFIX",
                       help="only export metric families whose name starts "
                            "with PREFIX (e.g. repro_hot, repro_tuner); "
                            "applies to all three output formats")

    trace = commands.add_parser(
        "trace", help="run a seeded workload with span tracing enabled"
    )
    add_workload_args(trace)
    trace.add_argument("--json", action="store_true",
                       help="emit traces as JSON")
    trace.add_argument("--limit", type=int, default=5,
                       help="number of most recent root traces to print")

    bench = commands.add_parser(
        "bench", help="batched-query throughput: serial vs shard-parallel"
    )
    bench.add_argument("--vertices", type=int, default=2000)
    bench.add_argument("--avg-degree", type=float, default=8.0)
    bench.add_argument("--k", type=int, default=6)
    bench.add_argument("--method", choices=["hybrid", "hyb+"],
                       default="hyb+")
    bench.add_argument("--pairs", type=int, default=100_000)
    bench.add_argument("--cache-bytes", type=int, default=0,
                       help="block-cache budget (default 0: every probe "
                            "pays real storage reads)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--workload",
                       choices=["random", "edges", "zipfian", "churn",
                                "mixed"],
                       default="random",
                       help="random pairs (NDF-bound), sampled edges "
                            "(storage-bound: nothing filters, every pair "
                            "pays a read — the regime sharding targets), "
                            "or a streaming kind: zipfian (skewed hot-set "
                            "probes — the regime the hot cache targets), "
                            "churn (probe runs + write storms), mixed "
                            "(interleaved reads and writes)")
    bench.add_argument("--skew", type=float, default=None,
                       help="Zipf exponent for the edges/zipfian/churn/"
                            "mixed workloads (default: each stream's own — "
                            "1.0 for the streaming kinds, 0.0 for edges)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="timed rounds per config after one warm-up, "
                            "best round wins (probe-only workloads; the "
                            "write-bearing churn/mixed streams replay once "
                            "and report probe throughput)")
    add_shard_args(bench)
    bench.add_argument("--check-speedup", type=float, default=None,
                       metavar="X",
                       help="exit 1 unless sharded throughput >= X * serial "
                            "(the CI smoke gate)")
    bench.add_argument("--check-hot-speedup", type=float, default=None,
                       metavar="X",
                       help="exit 1 unless the sharded config with the hot "
                            "cache on reaches X * the same config with it "
                            "off (budget: --hot-cache-bytes, or 4 MiB if "
                            "unset)")

    serve = commands.add_parser(
        "serve", help="serve a VendGraphDB over HTTP/JSON (DESIGN.md §15)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0: ephemeral, printed at start)")
    serve.add_argument("--graph", type=Path, default=None,
                       help="edge-list file to load (default: a seeded "
                            "power-law graph, or nothing with --empty)")
    serve.add_argument("--empty", action="store_true",
                       help="start with an empty graph (the fuzz target: "
                            "ground truth is built from mutations)")
    serve.add_argument("--vertices", type=int, default=300)
    serve.add_argument("--avg-degree", type=float, default=8.0)
    serve.add_argument("--k", type=int, default=6)
    serve.add_argument("--method", choices=["hybrid", "hyb+"],
                       default="hyb+")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--batch-window", type=float, default=0.002,
                       help="probe-coalescing window in seconds (0: drain "
                            "whatever is queued, never wait)")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client admission tokens/s; probes cost "
                            "one token per pair (default 0: disabled)")
    serve.add_argument("--burst", type=float, default=10000.0,
                       help="per-client token-bucket capacity")
    serve.add_argument("--max-queue-pairs", type=int, default=65536,
                       help="in-flight probe-pair bound before 429s")
    add_shard_args(serve)

    fuzz = commands.add_parser(
        "fuzz", help="schema-driven fuzz of the edge-query server"
    )
    fuzz.add_argument("--url", default=None,
                      help="fuzz a running server (must have started "
                           "empty, e.g. `repro serve --empty`); default: "
                           "self-host one")
    fuzz.add_argument("--seed", type=int,
                      default=int(os.environ.get("REPRO_FUZZ_SEED", "0")))
    fuzz.add_argument("--examples", type=int, default=40,
                      help="hypothesis examples in the sequential phase")
    fuzz.add_argument("--clients", type=int, default=64,
                      help="concurrent fuzz clients in the hammer phase")
    fuzz.add_argument("--per-client", type=int, default=20,
                      help="requests each concurrent client issues")
    fuzz.add_argument("--universe", type=int, default=24,
                      help="vertex-id universe size the fuzzer draws from")
    fuzz.add_argument("--check-metrics", action="store_true",
                      help="also verify /metrics counters move by exact "
                           "integers around a known request count")
    fuzz.add_argument("--k", type=int, default=6)
    add_shard_args(fuzz)

    return parser


def _cmd_generate(args) -> int:
    if args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    else:
        n, avg_degree = int(args.powerlaw[0]), float(args.powerlaw[1])
        graph = powerlaw_graph(round(n * args.scale), avg_degree,
                               seed=args.seed)
    lines = write_edge_list(graph, args.out)
    print(f"wrote {args.out}: |V|={graph.num_vertices} |E|={lines} "
          f"(avg degree {graph.average_degree():.1f})")
    return 0


def _cmd_build(args) -> int:
    graph = read_edge_list(args.graph)
    cls = HybridVend if args.method == "hybrid" else HybPlusVend
    solution = cls(k=args.k, id_bits=args.id_bits)
    start = time.perf_counter()
    solution.build(graph)
    elapsed = time.perf_counter() - start
    size = save_index(solution, args.out)
    print(f"built {args.method} (k={args.k}, k*={solution.k_star}, "
          f"I'={solution.id_bits}) over {graph} in {elapsed:.1f}s")
    print(f"wrote {args.out}: {size} bytes for {solution.num_codes} codes")
    return 0


def _cmd_info(args) -> int:
    solution = load_index(args.index)
    print(f"index: {args.index}")
    print(f"  solution : {solution.name}")
    print(f"  k        : {solution.k} ({solution.total_bits} bits/code)")
    print(f"  I'       : {solution.id_bits} bits per stored ID")
    print(f"  k*       : {solution.k_star}")
    print(f"  codes    : {solution.num_codes}")
    print(f"  memory   : {solution.memory_bytes()} bytes")
    return 0


def _cmd_query(args) -> int:
    solution = load_index(args.index)
    if solution.is_nonedge(args.u, args.v):
        print(f"({args.u}, {args.v}): NO EDGE (certain; skip the database)")
    else:
        print(f"({args.u}, {args.v}): UNDETERMINED (execute the edge query)")
    return 0


def _cmd_score(args) -> int:
    solution = load_index(args.index)
    graph = read_edge_list(args.graph)
    if args.workload == "random":
        pairs = random_pairs(graph, args.pairs, seed=args.seed)
    else:
        pairs = common_neighbor_pairs(graph, args.pairs, seed=args.seed)
    report = vend_score(solution, graph, pairs)
    print(f"workload  : {args.workload} x {args.pairs}")
    print(f"NEpairs   : {report.nepairs}")
    print(f"detected  : {report.detected}")
    print(f"score     : {report.score:.4f}")
    print(f"false pos : {report.false_positives}")
    return 1 if report.false_positives else 0


def _cmd_analyze(args) -> int:
    solution = load_index(args.index)
    graph = read_edge_list(args.graph)
    stats = index_statistics(solution)
    print(f"codes          : {stats.num_codes}")
    print(f"decodable      : {stats.decodable_codes} "
          f"({stats.decodable_fraction:.1%})")
    print(f"exact          : {stats.exact_codes}")
    print(f"block kinds    : {stats.block_kind_counts}")
    print(f"mean block size: {stats.mean_block_size:.1f}")
    print(f"slot occupancy : {stats.mean_slot_occupancy:.1%}")
    print(f"mean NT frac   : {stats.mean_nt_fraction:.3f}")
    pairs = common_neighbor_pairs(graph, args.pairs, seed=args.seed)
    split = score_breakdown(solution, graph, pairs)
    print("score by pair class (common-neighbor workload):")
    print(f"  dec-dec  : {split.decodable_decodable:.3f}")
    print(f"  mixed    : {split.mixed:.3f}")
    print(f"  core-core: {split.core_core:.3f}")
    print(f"  counts   : {split.class_counts}")
    return 0


def _cmd_lint(args) -> int:
    import json

    from .devtools import lint_paths

    rules = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    findings = lint_paths(args.paths, rules=rules,
                          concurrency=args.concurrency)
    if args.format == "json":
        print(json.dumps([{"path": f.path, "line": f.line, "col": f.col,
                           "rule": f.rule, "message": f.message}
                          for f in findings], indent=2))
        return 1 if findings else 0
    if args.format == "github":
        for f in findings:
            # GitHub's annotation grammar: %, CR, LF must be escaped in
            # the message body.
            message = (f.message.replace("%", "%25")
                       .replace("\r", "%0D").replace("\n", "%0A"))
            print(f"::error file={f.path},line={f.line},"
                  f"col={f.col + 1},title={f.rule}::{message}")
        return 1 if findings else 0
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint: clean")
    return 0


def _cmd_audit(args) -> int:
    from .core import available_solutions, create_solution
    from .devtools import SoundnessAuditor
    from .graph import powerlaw_graph

    if args.solutions == "all":
        names = available_solutions()
    else:
        names = [n.strip() for n in args.solutions.split(",") if n.strip()]
    graph = powerlaw_graph(args.vertices, args.avg_degree, seed=args.seed)
    print(f"audit graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"seed={args.seed}")
    auditor = SoundnessAuditor(graph, seed=args.seed, pairs=args.pairs,
                               updates=args.updates)
    failed = 0
    for name in names:
        solution = create_solution(name, k=args.k)
        report = auditor.audit(solution,
                               maintenance=not args.no_maintenance)
        print(report.summary())
        for violation in report.violations:
            print(f"  {violation.format()}")
        failed += 0 if report.ok else 1
    if args.shards > 1 or args.executor == "process":
        from .devtools import audit_parallel_engine

        print(f"parallel engine sweep: shards={args.shards} "
              f"workers={args.workers or args.shards} "
              f"executor={args.executor} compress={args.compress} "
              f"mmap={args.mmap}")
        for name in names:
            report = audit_parallel_engine(
                graph, create_solution(name, k=args.k),
                shards=args.shards, workers=args.workers or args.shards,
                seed=args.seed, pairs=args.pairs, updates=args.updates,
                compress=args.compress, use_mmap=args.mmap,
                executor=args.executor,
            )
            print(report.summary())
            failed += 0 if report.ok else 1
    if args.stream:
        from .devtools import audit_stream

        hot = args.hot_cache_bytes or (1 << 20)
        print(f"stream audit: kind={args.stream} ops={args.stream_ops} "
              f"shards={args.shards} workers={args.workers or args.shards} "
              f"executor={args.executor} hot_cache_bytes={hot}")
        for name in names:
            report = audit_stream(
                graph, create_solution(name, k=args.k),
                stream_kind=args.stream, shards=args.shards,
                workers=args.workers or args.shards, seed=args.seed,
                ops=args.stream_ops, hot_cache_bytes=hot,
                compress=args.compress, use_mmap=args.mmap,
                executor=args.executor,
            )
            print(report.summary())
            failed += 0 if report.ok else 1
    if args.chaos:
        from .devtools import audit_chaos
        from .storage.faults import FAULT_SEED_ENV

        fault_seed = int(os.environ.get(FAULT_SEED_ENV, str(args.seed)))
        replicas = max(1, args.replicas)
        print(f"chaos sweep: shards={args.shards} replicas={replicas} "
              f"reshard_to={args.reshard_to or max(1, args.shards // 2)} "
              f"fault_seed={fault_seed}")
        for name in names:
            report = audit_chaos(
                graph, create_solution(name, k=args.k),
                shards=args.shards, replicas=replicas,
                workers=args.workers or args.shards, seed=fault_seed,
                pairs=args.pairs, updates=args.updates,
                reshard_to=args.reshard_to,
            )
            print(report.summary())
            failed += 0 if report.ok else 1
    if failed:
        print(f"audit: {failed} audit(s) FAILED")
        return 1
    print(f"audit: all {len(names)} solutions sound")
    return 0


def _obs_workload(args) -> None:
    """One seeded end-to-end pass that exercises every counter family.

    Builds a power-law graph in an in-memory :class:`VendGraphDB`,
    answers half the pair workload through the scalar path and half
    through the batched pipeline, then applies a few edge updates so
    maintenance counters (and ``maintenance_reads``) move too.  The
    storage-tier switches (``--compress``/``--mmap``/``--executor
    process``) need a real log file, so any of them flips the workload
    to a disk-backed temporary directory; process mode additionally
    zeroes the cache (a coordinator-side cache is invisible to
    workers).
    """
    import contextlib
    import tempfile

    from .apps import VendGraphDB
    from .graph import powerlaw_graph

    graph = powerlaw_graph(args.vertices, args.avg_degree, seed=args.seed)
    compress = getattr(args, "compress", False)
    use_mmap = getattr(args, "mmap", False)
    executor = getattr(args, "executor", "thread")
    hot_bytes = getattr(args, "hot_cache_bytes", 0)
    cache_bytes = args.cache_bytes if executor == "thread" else 0
    with contextlib.ExitStack() as stack:
        if compress or use_mmap or executor == "process" or hot_bytes:
            # The hot cache lives in the disk tier, so asking for it
            # implies a disk-backed store just like the other switches.
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
            path = Path(tmp) / "adjacency.log"
        else:
            path = None
        db = VendGraphDB(path, k=args.k, method=args.method,
                         cache_bytes=cache_bytes,
                         shards=args.shards, workers=args.workers,
                         compress=compress, use_mmap=use_mmap,
                         executor=executor,
                         replicas=getattr(args, "replicas", 0),
                         hot_cache_bytes=hot_bytes)
        db.load_graph(graph)
        edges = sorted(graph.edges())[:args.updates]
        for u, v in edges:
            db.remove_edge(u, v)
        for u, v in edges:
            db.add_edge(u, v)
        pairs = random_pairs(graph, args.pairs, seed=args.seed)
        half = len(pairs) // 2
        for u, v in pairs[:half]:
            db.has_edge(u, v)
        if pairs[half:]:
            db.has_edge_batch(pairs[half:])
        db.close()


def _prom_family_name(line: str) -> str:
    """Metric-family name a Prometheus exposition line belongs to."""
    if line.startswith("#"):
        parts = line.split(None, 3)
        return parts[2] if len(parts) >= 3 else ""
    return line.split("{", 1)[0].split(None, 1)[0]


def _cmd_stats(args) -> int:
    from .obs import default_registry

    registry = default_registry()
    _obs_workload(args)
    prefix = args.filter
    if args.json:
        import json

        doc = registry.to_json()
        if prefix:
            doc["metrics"] = [family for family in doc["metrics"]
                              if family["name"].startswith(prefix)]
        print(json.dumps(doc, indent=2))
        return 0
    if args.prometheus:
        text = registry.to_prometheus()
        if prefix:
            kept = [line for line in text.splitlines()
                    if _prom_family_name(line).startswith(prefix)]
            text = "".join(f"{line}\n" for line in kept)
        print(text, end="")
        return 0
    for name, value in sorted(registry.snapshot().items()):
        if prefix and not name.startswith(prefix):
            continue
        print(f"{name} {value}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import default_tracer

    tracer = default_tracer()
    tracer.enabled = True
    try:
        _obs_workload(args)
    finally:
        tracer.enabled = False
    if args.json:
        import json

        print(json.dumps(tracer.to_json(limit=args.limit), indent=2))
        return 0
    print(tracer.format_traces(limit=args.limit), end="")
    return 0


def _timed_batch(db, us, vs) -> float:
    start = time.perf_counter()
    db.has_edge_batch(us, vs)
    return time.perf_counter() - start


def _cmd_bench(args) -> int:
    import tempfile

    from .apps import VendGraphDB
    from .graph import powerlaw_graph
    from .workloads import make_stream, run_stream

    graph = powerlaw_graph(args.vertices, args.avg_degree, seed=args.seed)
    stream_kwargs = {}
    if args.skew is not None and args.workload != "random":
        stream_kwargs["skew"] = args.skew
    stream = make_stream(args.workload, graph, args.pairs,
                         seed=args.seed + 1, **stream_kwargs)
    counts = stream.op_counts()
    probe_only = counts.get("insert", 0) == 0 and counts.get("delete", 0) == 0

    cache_bytes = args.cache_bytes if args.executor == "thread" else 0

    def throughput(shards: int, workers: int | None,
                   executor: str = "thread",
                   hot_bytes: int | None = None) -> float:
        hot = args.hot_cache_bytes if hot_bytes is None else hot_bytes
        with tempfile.TemporaryDirectory() as tmp:
            db = VendGraphDB(Path(tmp) / "adjacency.log", k=args.k,
                             method=args.method,
                             cache_bytes=cache_bytes,
                             shards=shards, workers=workers,
                             compress=args.compress, use_mmap=args.mmap,
                             executor=executor,
                             replicas=(args.replicas if shards > 1 else 0),
                             hot_cache_bytes=hot)
            db.load_graph(graph)
            if probe_only:
                us, vs = stream.us, stream.vs
                # Warm-up: page cache, first-touch checksums, hot-cache
                # admission (the sketch needs one pass of traffic).
                db.has_edge_batch(us, vs)
                best = min(_timed_batch(db, us, vs)
                           for _ in range(max(args.rounds, 1)))
                rate = len(stream) / best
            else:
                # Writes mutate state, so best-of-rounds over the same
                # stream would time a different database each round:
                # warm with a probe pass over the opening pairs, then
                # one faithful replay, scored on probe wall time.
                warm = min(len(stream), 4096)
                db.has_edge_batch(stream.us[:warm], stream.vs[:warm])
                result = run_stream(db, stream)
                rate = result.probe_throughput
            db.close()
        return rate

    probes = int(counts.get("probe", len(stream)))
    print(f"bench graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"workload={stream.name} ops={len(stream)} probes={probes} "
          f"seed={args.seed} compress={args.compress} mmap={args.mmap} "
          f"executor={args.executor} hot={args.hot_cache_bytes}")
    serial = throughput(1, None)
    print(f"serial              : {serial:>12.0f} pairs/s")
    shards = max(args.shards, 2)
    sharded = throughput(shards, args.workers, args.executor)
    speedup = sharded / serial
    print(f"sharded s={shards} w={args.workers or shards}     : "
          f"{sharded:>12.0f} pairs/s  ({speedup:.2f}x)")
    failed = False
    if args.check_speedup is not None and speedup < args.check_speedup:
        print(f"bench: FAIL speedup {speedup:.2f}x < "
              f"required {args.check_speedup:.2f}x")
        failed = True
    if args.check_hot_speedup is not None:
        budget = args.hot_cache_bytes or (4 << 20)
        if args.hot_cache_bytes:
            hot, cold = sharded, throughput(shards, args.workers,
                                            args.executor, hot_bytes=0)
        else:
            hot = throughput(shards, args.workers, args.executor,
                             hot_bytes=budget)
            cold = sharded
        hot_speedup = hot / cold if cold else 0.0
        print(f"hot cache {budget >> 10}KiB    : {hot:>12.0f} pairs/s  "
              f"({hot_speedup:.2f}x vs cold)")
        if hot_speedup < args.check_hot_speedup:
            print(f"bench: FAIL hot-cache speedup {hot_speedup:.2f}x < "
                  f"required {args.check_hot_speedup:.2f}x")
            failed = True
    return 1 if failed else 0


def _server_db(args, empty: bool):
    """A ``VendGraphDB`` for ``serve``/``fuzz`` from the shard args."""
    from .apps import VendGraphDB
    from .graph import Graph

    db = VendGraphDB(k=args.k, method=getattr(args, "method", "hyb+"),
                     shards=args.shards, workers=args.workers,
                     replicas=getattr(args, "replicas", 0))
    if empty:
        db.load_graph(Graph())
    elif getattr(args, "graph", None):
        db.load_graph(read_edge_list(args.graph))
    else:
        db.load_graph(powerlaw_graph(args.vertices, args.avg_degree,
                                     seed=args.seed))
    return db


def _cmd_serve(args) -> int:
    import threading

    from .server import ServerConfig, serve_in_thread

    db = _server_db(args, empty=args.empty)
    config = ServerConfig(host=args.host, port=args.port,
                          batch_window=args.batch_window,
                          rate=args.rate, burst=args.burst,
                          max_queue_pairs=args.max_queue_pairs)
    handle = serve_in_thread(db, config)
    print(f"serving {db.num_vertices} vertices on {handle.url} "
          f"(shards={db.num_shards}, replicas={db.replicas}, "
          f"window={args.batch_window * 1000:.1f}ms, "
          f"admission={'off' if args.rate <= 0 else f'{args.rate}/s'})",
          flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        handle.stop()
        db.close()
    return 0


def _cmd_fuzz(args) -> int:
    from urllib.parse import urlparse

    from .devtools import run_fuzz

    handle = db = None
    if args.url:
        parsed = urlparse(args.url)
        host, port = parsed.hostname, parsed.port or 80
    else:
        from .server import ServerConfig, serve_in_thread

        db = _server_db(args, empty=True)
        handle = serve_in_thread(db, ServerConfig())
        host, port = handle.address
        print(f"self-hosted fuzz target on {handle.url} "
              f"(shards={db.num_shards})")
    try:
        report = run_fuzz(host, port, seed=args.seed,
                          examples=args.examples, clients=args.clients,
                          per_client=args.per_client,
                          universe=args.universe,
                          check_metrics=args.check_metrics)
    finally:
        if handle is not None:
            handle.stop()
        if db is not None:
            db.close()
    print(report.summary())
    if not report.ok:
        print(report.details())
        return 1
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "build": _cmd_build,
    "info": _cmd_info,
    "query": _cmd_query,
    "score": _cmd_score,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "audit": _cmd_audit,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "fuzz": _cmd_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
