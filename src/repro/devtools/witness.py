"""Runtime lock-order witness — the dynamic half of the R007 contract.

The static pass (:mod:`repro.devtools.concurrency`) proves an
acquisition order for the calls it can resolve; dynamic dispatch
(``getattr`` fan-out, duck-typed stores) is invisible to it.  This
module closes the gap at test time: an opt-in instrumented wrapper
records every *actual* nested acquisition during the chaos/parallel
suites, and :meth:`LockOrderWitness.check` asserts that the union of
the observed orders with the static graph stays acyclic — static
analysis proposes, the test suite disposes.

Enabling
--------
Set ``REPRO_LOCK_WITNESS=1`` before importing the storage layer (CI
does this for the parallel and online-reshard jobs).  When disabled —
the default — :func:`wrap_lock` returns the raw lock unchanged and
``_RWLock`` skips its hooks entirely, so production paths pay nothing.

Semantics
---------
Edges are recorded at *class granularity* (``"LRUCache._lock"``), the
same node names the static pass derives, so the two graphs compose.
Two rules mirror the static walk exactly:

- **Re-entrancy** is object-scoped: re-acquiring a lock object already
  held by this thread records nothing (``_RWLock`` on both sides, the
  LRU's ``RLock``, and the engine re-entering the store's guard).
- **Same name, different instance** records nothing either: a
  class-granularity order cannot rank two instances of one class
  (offline ``reshard()`` legitimately nests the target store's lock
  inside the source's).
"""

from __future__ import annotations

import os
import threading

__all__ = ["LockOrderWitness", "get_witness", "wrap_lock"]


class LockOrderWitness:
    """Records the lock-acquisition orders threads actually perform."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._local = threading.local()
        self._edges: dict[tuple[str, str], str] = {}
        self._guard = threading.Lock()

    # ------------------------------------------------------------------ hooks

    def _held(self) -> list[tuple[str, object]]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def notify_acquire(self, name: str, lock: object) -> None:
        """Record that this thread acquired ``lock`` (named ``name``)."""
        held = self._held()
        if not any(entry is lock for _, entry in held):
            fresh = [(holder, name) for holder, entry in held
                     if holder != name]
            if fresh:
                with self._guard:
                    for edge in fresh:
                        self._edges.setdefault(
                            edge, threading.current_thread().name)
        held.append((name, lock))

    def notify_release(self, name: str, lock: object) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i][1] is lock:
                del held[i]
                return

    # -------------------------------------------------------------- reporting

    def edges(self) -> set[tuple[str, str]]:
        with self._guard:
            return set(self._edges)

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()

    def check(self, static_edges) -> list[str] | None:
        """First cycle in observed ∪ static edges, or None when the
        runtime behaviour is consistent with the static order."""
        from .concurrency import find_cycle

        return find_cycle(self.edges() | set(static_edges))


class _WitnessedLock:
    """A ``Lock``/``RLock`` veneer that reports to the witness.

    Context-manager and acquire/release protocols both forward to the
    wrapped lock; the witness learns about successful acquisitions
    only, after they happen, so the wrapper can never deadlock a path
    the raw lock would not.
    """

    __slots__ = ("_lock", "_name", "_witness")

    def __init__(self, lock, name: str, witness: LockOrderWitness):
        self._lock = lock
        self._name = name
        self._witness = witness

    def acquire(self, *args, **kwargs) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._witness.notify_acquire(self._name, self._lock)
        return acquired

    def release(self) -> None:
        self._witness.notify_release(self._name, self._lock)
        self._lock.release()

    def __enter__(self) -> "_WitnessedLock":
        self.acquire()  # lint: disable=R009 (context-manager protocol: released by __exit__, which callers enter via `with`)
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __repr__(self) -> str:
        return f"_WitnessedLock({self._name!r})"


_WITNESS = LockOrderWitness(
    enabled=os.environ.get("REPRO_LOCK_WITNESS") == "1")


def get_witness() -> LockOrderWitness:
    """The process-wide witness (enabled iff ``REPRO_LOCK_WITNESS=1``
    was set at import time, or a test flipped ``enabled`` by hand)."""
    return _WITNESS


def wrap_lock(lock, name: str):
    """Instrument ``lock`` under ``name`` when the witness is enabled.

    Disabled (the default), the raw lock is returned unchanged — zero
    overhead, zero indirection.  ``name`` must match the static node
    (``"<DeclaringClass>.<attr>"``) for the graphs to compose.
    """
    if not _WITNESS.enabled:
        return lock
    return _WitnessedLock(lock, name, _WITNESS)
