"""Concurrency-contract analysis — the ``repro lint --concurrency`` pass.

PRs 5–7 made the repo genuinely concurrent: a writer-preferring
re-entrant ``_RWLock`` held across whole batches, an ``RLock``-guarded
LRU, synchronous replica fan-out, and mmap views with strict lifetime
rules.  The classic ruleset (R001–R006) cannot see any of that.  This
module is a second AST pass that *learns the repo's locking model* and
enforces it:

==== ====================  ======================================================
ID   name                  what it catches
==== ====================  ======================================================
R007 lock-order            a cross-module lock-acquisition graph (which locks
                           are acquired while which others are held, resolved
                           intra-procedurally through typed attributes, return
                           annotations, and inheritance) contains a cycle — a
                           potential deadlock
R008 guarded-state         mutation of an attribute declared lock-guarded
                           (``# guarded-by: self._lock`` on its ``__init__``
                           assignment) outside an exclusive ``with``-span or
                           acquire/release span of that lock
R009 raw-acquire           an ``acquire*()`` statement not immediately followed
                           by a ``try/finally`` that releases the same lock
R010 mmap-lifetime         an ``np.frombuffer`` view over an mmap escaping the
                           creating function (returned or stored on ``self``)
                           from a class with no ``_drop_mmap``/``close``
                           teardown path (DESIGN §12's sanctioned lifecycle)
R011 identity-token        comparing or storing ``id()`` of an object without a
                           strong reference — CPython reuses the id of a freed
                           object for its replacement (the PR 7 flake class)
R012 blocking-under-lock   file I/O (``open``/``os.fsync``/``os.replace``),
                           durable ``flush(sync=True)``, ``time.sleep``, or
                           executor joins (``.result()``/``.shutdown()``) while
                           holding the exclusive side of a lock
==== ====================  ======================================================

**Lock identity.**  A lock attribute assigned in ``__init__`` (any
expression containing a ``Lock``/``RLock``/``Condition``/``Semaphore``
constructor or a ``*Lock`` class, including wrapped forms like
``witness.wrap_lock(threading.RLock(), name)``) becomes a graph node
named ``<DeclaringClass>.<attr>`` — the same names the runtime witness
(:mod:`repro.devtools.witness`) records, so the static order and the
observed order are directly comparable.

**Re-entrancy.**  Acquiring a lock *name* already held is a no-op for
the walk: the repo's locks are re-entrant (``_RWLock`` on both sides,
the LRU's ``RLock``), and an offline ``reshard()`` writing into a
*second* ``ShardedGraphStore`` under the source's read lock must not
read as a self-deadlock.  The witness applies the matching rule at
object granularity.

The analyzer is deliberately one-sided, like VEND itself: it only
reports an R007 edge it can *prove* via resolved calls, so a clean run
means "no cycle in the provable graph" — the runtime witness covers
the dynamic dispatch the static pass cannot see.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from .linter import (
    CONCURRENCY_RULES,
    Finding,
    _dotted,
    _FileContext,
    _last_name,
)

__all__ = [
    "ConcurrencyAnalyzer",
    "CONCURRENCY_RULES",
    "find_cycle",
    "static_lock_edges",
]

#: Constructor names whose call (possibly nested in a wrapper call)
#: marks an attribute as a lock.
_LOCK_CTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: ``# guarded-by: self._lock`` on an ``__init__`` assignment line.
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*self\.([A-Za-z_]\w*)")

#: Context-manager/acquire method names recognized on a lock attribute.
_ACQUIRE_METHODS = frozenset({
    "read", "write", "acquire", "acquire_read", "acquire_write",
    "acquire_shared", "acquire_exclusive",
})

#: Container-method calls that mutate the receiver (R008).
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    "reverse",
})

#: Dotted calls that block (R012).
_BLOCKING_DOTTED = frozenset({"os.fsync", "os.replace", "time.sleep"})

#: Attribute calls that join/synchronize (R012).
_BLOCKING_ATTRS = frozenset({"result", "shutdown"})


def _shared(method: str) -> bool:
    return "read" in method or "shared" in method


# --------------------------------------------------------------------- graphs


def find_cycle(edges) -> list[str] | None:
    """First cycle in a directed edge set, as ``[n0, n1, ..., n0]``.

    ``edges`` is any iterable of ``(u, v)`` pairs.  Returns None when
    the graph is acyclic.  Shared by R007, the runtime witness's
    consistency check, and the hypothesis suite.
    """
    graph: dict[str, set[str]] = {}
    for u, v in edges:
        graph.setdefault(u, set()).add(v)
        graph.setdefault(v, set())
    color = dict.fromkeys(graph, 0)  # 0 white / 1 on stack / 2 done
    for start in sorted(graph):
        if color[start]:
            continue
        stack: list[tuple[str, object]] = [(start, iter(sorted(graph[start])))]
        color[start] = 1
        while stack:
            node, children = stack[-1]
            child = next(children, None)
            if child is None:
                color[node] = 2
                stack.pop()
                continue
            if color[child] == 1:
                nodes = [n for n, _ in stack]
                return nodes[nodes.index(child):] + [child]
            if color[child] == 0:
                color[child] = 1
                stack.append((child, iter(sorted(graph[child]))))
    return None


def _shortest_path(graph: dict[str, set[str]], src: str,
                   dst: str) -> list[str] | None:
    """BFS path ``src -> ... -> dst`` through ``graph``, or None."""
    parents: dict[str, str] = {}
    queue = [src]
    seen = {src}
    while queue:
        node = queue.pop(0)
        for child in sorted(graph.get(node, ())):
            if child in seen:
                continue
            parents[child] = node
            if child == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            seen.add(child)
            queue.append(child)
    return None


# ------------------------------------------------------------------ the index


@dataclass
class _CClass:
    """Concurrency-relevant summary of one class definition."""

    name: str
    path: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: Attributes assigned a lock constructor anywhere in the class.
    lock_attrs: set[str] = field(default_factory=set)
    #: attr -> lock attr named by its ``# guarded-by:`` annotation.
    guarded: dict[str, str] = field(default_factory=dict)
    #: attr -> candidate class names of its value.
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    #: attr -> candidate element class names (containers of typed items).
    elem_types: dict[str, set[str]] = field(default_factory=dict)
    #: method -> candidate class names of its return annotation.
    returns: dict[str, set[str]] = field(default_factory=dict)
    #: True when the class chain ships an mmap teardown path (R010).
    releases_mmap: bool = False


@dataclass
class _Merged:
    """Chain-merged view of a concrete class (inheritance flattened)."""

    lock_attrs: set[str]
    guarded: dict[str, str]
    attr_types: dict[str, set[str]]
    elem_types: dict[str, set[str]]


def _is_lock_expr(node: ast.expr) -> bool:
    """True for a lock constructor call, possibly wrapped
    (``witness.wrap_lock(threading.RLock(), name)``)."""
    if not isinstance(node, ast.Call):
        return False
    name = _last_name(node.func)
    if name and (name in _LOCK_CTORS or name.endswith("Lock")):
        return True
    return any(_is_lock_expr(arg) for arg in node.args)


def _ann_names(node: ast.expr | None) -> set[str]:
    """Class names mentioned by an annotation (unions, strings, generics)."""
    if node is None:
        return set()
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Attribute):
        return {node.attr}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _ann_names(node.left) | _ann_names(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _ann_names(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return set()
    if isinstance(node, ast.Subscript):
        elts = (node.slice.elts if isinstance(node.slice, ast.Tuple)
                else [node.slice])
        out: set[str] = set()
        for elt in elts:
            out |= _ann_names(elt)
        return out
    return set()


def _self_attr(node: ast.expr) -> str | None:
    """``X`` for a plain ``self.X`` expression, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _ordered_stmts(body):
    """Every statement under ``body`` in source order (bodies flattened)."""
    for stmt in body:
        yield stmt
        for fieldname in ("body", "orelse", "finalbody"):
            yield from _ordered_stmts(getattr(stmt, fieldname, None) or [])
        for handler in getattr(stmt, "handlers", []):
            yield from _ordered_stmts(handler.body)


def _stmt_lists(root: ast.AST):
    """Every list-of-statements under ``root`` (function/class bodies,
    with-blocks, loop bodies, handlers, ...)."""
    for node in ast.walk(root):
        for _, value in ast.iter_fields(node):
            if isinstance(value, list) and value \
                    and isinstance(value[0], ast.stmt):
                yield value


class ConcurrencyAnalyzer:
    """Cross-file analyzer for the R007–R012 concurrency contracts.

    Pass 1 indexes every class: lock attributes, ``guarded-by``
    declarations, attribute/element types (from constructor calls,
    conditional branches, and annotated returns like
    ``_build_segment() -> GraphStore | ReplicatedShard``).  Pass 2
    walks every method from every concrete class (late binding: an
    inherited method is analyzed against each subclass so overrides
    resolve correctly), building the lock-order graph and running the
    local rules.
    """

    def __init__(self, contexts: list[_FileContext],
                 rules: set[str] | None = None):
        self.contexts = contexts
        self.rules = (set(rules) if rules is not None
                      else set(CONCURRENCY_RULES))
        self._classes: dict[str, _CClass] = {}
        self._by_ctx: dict[str, list[_CClass]] = {}
        self._merged_cache: dict[str, _Merged] = {}
        #: (held, acquired) -> (path, line, col) of the first witness.
        self.lock_edges: dict[tuple[str, str], tuple[str, int, int]] = {}

    # ------------------------------------------------------------ entry point

    def run(self) -> list[Finding]:
        self._build_index()
        walker = _LockWalker(self)
        walker.walk_all()
        self.lock_edges = walker.edges
        findings: list[Finding] = []
        if "R007" in self.rules:
            findings.extend(self._rule_lock_order())
        for ctx in self.contexts:
            if self.rules & {"R008", "R012"}:
                for cls in self._by_ctx.get(ctx.path, []):
                    findings.extend(_LexicalChecker(self, ctx, cls).run())
            if "R009" in self.rules:
                findings.extend(self._rule_raw_acquire(ctx))
            if "R010" in self.rules:
                findings.extend(self._rule_mmap_lifetime(ctx))
            if "R011" in self.rules:
                findings.extend(self._rule_identity_token(ctx))
        return findings

    # ----------------------------------------------------------------- pass 1

    def _build_index(self) -> None:
        self._classes = {}
        self._by_ctx = {}
        self._merged_cache = {}
        for ctx in self.contexts:
            entries: list[_CClass] = []
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    entries.append(self._index_class(ctx, node))
            self._by_ctx[ctx.path] = entries
            for cls in entries:
                # Last definition wins, matching the classic linter.
                self._classes[cls.name] = cls
        for cls in self._classes.values():
            cls.releases_mmap = any(
                m in entry.methods
                for entry in self._chain(cls.name)
                for m in ("_drop_mmap", "close")
            )

    def _index_class(self, ctx: _FileContext, node: ast.ClassDef) -> _CClass:
        bases = tuple(n for n in (_last_name(b) for b in node.bases) if n)
        cls = _CClass(node.name, ctx.path, node, bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = stmt
                cls.returns[stmt.name] = _ann_names(stmt.returns)
        for func in cls.methods.values():
            for stmt in _ordered_stmts(func.body):
                self._index_assignment(ctx, cls, stmt)
        return cls

    def _index_assignment(self, ctx: _FileContext, cls: _CClass,
                          stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value, ann = stmt.targets[0], stmt.value, None
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value, ann = stmt.target, stmt.value, stmt.annotation
        elif isinstance(stmt, ast.AnnAssign):
            target, value, ann = stmt.target, None, stmt.annotation
        else:
            return
        attr = _self_attr(target)
        if attr is None:
            # ``self.X[k] = <typed>`` contributes an element type.
            if (isinstance(target, ast.Subscript)
                    and (sub := _self_attr(target.value)) is not None
                    and value is not None):
                types = self._value_types(cls, value)
                if types:
                    cls.elem_types.setdefault(sub, set()).update(types)
            return
        if value is not None and _is_lock_expr(value):
            cls.lock_attrs.add(attr)
        line = ctx.lines[stmt.lineno - 1] if stmt.lineno <= len(ctx.lines) \
            else ""
        match = _GUARDED_BY.search(line)
        if match:
            cls.guarded[attr] = match.group(1)
        types = set(self._value_types(cls, value)) if value is not None \
            else set()
        types |= _ann_names(ann)
        types.discard("None")
        if types:
            cls.attr_types.setdefault(attr, set()).update(types)
        if value is not None:
            elems = self._elem_value_types(cls, value)
            if elems:
                cls.elem_types.setdefault(attr, set()).update(elems)

    def _value_types(self, cls: _CClass, value: ast.expr | None) -> set[str]:
        """Candidate class names of an assigned expression (own-class
        method returns resolve through their annotations)."""
        if value is None:
            return set()
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                return {func.id}
            attr = _self_attr(func)
            if attr is not None:
                return set(cls.returns.get(attr, ()))
            return set()
        if isinstance(value, ast.IfExp):
            return (self._value_types(cls, value.body)
                    | self._value_types(cls, value.orelse))
        if isinstance(value, ast.BoolOp):
            out: set[str] = set()
            for operand in value.values:
                out |= self._value_types(cls, operand)
            return out
        return set()

    def _elem_value_types(self, cls: _CClass, value: ast.expr) -> set[str]:
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._value_types(cls, value.elt)
        if isinstance(value, ast.DictComp):
            return self._value_types(cls, value.value)
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            out: set[str] = set()
            for elt in value.elts:
                out |= self._value_types(cls, elt)
            return out
        if isinstance(value, ast.Dict):
            out = set()
            for elt in value.values:
                out |= self._value_types(cls, elt)
            return out
        return set()

    # ----------------------------------------------------- chain / resolution

    def _chain(self, name: str) -> list[_CClass]:
        chain: list[_CClass] = []
        queue = [name]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes.get(current)
            if info is None:
                continue
            chain.append(info)
            queue.extend(info.bases)
        return chain

    def merged(self, name: str) -> _Merged:
        cached = self._merged_cache.get(name)
        if cached is not None:
            return cached
        merged = _Merged(set(), {}, {}, {})
        for info in self._chain(name):
            merged.lock_attrs |= info.lock_attrs
            for attr, lock in info.guarded.items():
                merged.guarded.setdefault(attr, lock)
            for attr, types in info.attr_types.items():
                merged.attr_types.setdefault(attr, set()).update(types)
            for attr, types in info.elem_types.items():
                merged.elem_types.setdefault(attr, set()).update(types)
        self._merged_cache[name] = merged
        return merged

    def lock_node(self, cls_name: str, attr: str) -> str:
        """Graph node for ``self.<attr>``: named for the declaring class,
        so a subclass acquiring an inherited lock shares its node."""
        for info in self._chain(cls_name):
            if attr in info.lock_attrs:
                return f"{info.name}.{attr}"
        return f"{cls_name}.{attr}"

    def resolve_method(self, cls_name: str, method: str,
                       after: str | None = None,
                       ) -> tuple[_CClass, ast.FunctionDef] | None:
        """(defining class, node) for ``method`` on ``cls_name``.

        ``after`` skips chain entries up to and including that class —
        the ``super().m()`` resolution path.
        """
        chain = self._chain(cls_name)
        if after is not None:
            for i, info in enumerate(chain):
                if info.name == after:
                    chain = chain[i + 1:]
                    break
        for info in chain:
            if method in info.methods:
                return info, info.methods[method]
        return None

    # ------------------------------------------------------------------- R007

    def _rule_lock_order(self) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for (u, v) in self.lock_edges:
            graph.setdefault(u, set()).add(v)
        findings: list[Finding] = []
        for (u, v), (path, line, col) in sorted(self.lock_edges.items()):
            back = _shortest_path(graph, v, u)
            if back is None:
                continue
            cycle = " -> ".join([u, *back])
            findings.append(Finding(
                path, line, col, "R007",
                f"lock-order cycle: acquiring {v} while holding {u} closes "
                f"the cycle {cycle}; threads taking these locks in opposite "
                "orders can deadlock",
            ))
        return findings

    # ------------------------------------------------------------------- R009

    def _rule_raw_acquire(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for stmts in _stmt_lists(ctx.tree):
            for i, stmt in enumerate(stmts):
                call = self._acquire_stmt(stmt)
                if call is None:
                    continue
                receiver = _dotted(call.func.value)
                if self._released_in_next(stmts, i, receiver):
                    continue
                findings.append(Finding(
                    ctx.path, stmt.lineno, stmt.col_offset, "R009",
                    f"raw {call.func.attr}() with no try/finally release; "
                    "an exception here leaks the lock — use the context "
                    "manager or release in a finally block",
                ))
        return findings

    @staticmethod
    def _acquire_stmt(stmt: ast.stmt) -> ast.Call | None:
        if (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr.startswith("acquire")):
            return stmt.value
        return None

    @staticmethod
    def _released_in_next(stmts, i: int, receiver: str | None) -> bool:
        if i + 1 >= len(stmts) or not isinstance(stmts[i + 1], ast.Try):
            return False
        for node in ast.walk(ast.Module(body=stmts[i + 1].finalbody,
                                        type_ignores=[])):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr.startswith("release")
                    and _dotted(node.func.value) == receiver):
                return True
        return False

    # ------------------------------------------------------------------- R010

    def _rule_mmap_lifetime(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls in self._by_ctx.get(ctx.path, []):
            if self._classes.get(cls.name, cls).releases_mmap:
                continue
            for func in cls.methods.values():
                findings.extend(self._check_mmap_escape(ctx, func))
        in_class = {id(f) for cls in self._by_ctx.get(ctx.path, [])  # lint: disable=R011 (AST nodes stay strongly referenced by the contexts for the analyzer's lifetime)
                    for f in cls.methods.values()}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and id(node) not in in_class:  # lint: disable=R011 (AST nodes stay strongly referenced by the contexts for the analyzer's lifetime)
                findings.extend(self._check_mmap_escape(ctx, node))
        return findings

    def _check_mmap_escape(self, ctx: _FileContext, func) -> list[Finding]:
        tainted: set[str] = set()

        def is_tainted(expr: ast.expr | None) -> bool:
            if expr is None:
                return False
            if isinstance(expr, ast.Name):
                return expr.id in tainted
            if isinstance(expr, ast.Attribute):
                return "mmap" in expr.attr
            if isinstance(expr, ast.Subscript):
                return is_tainted(expr.value)
            if isinstance(expr, ast.Call):
                if _dotted(expr.func) == "mmap.mmap":
                    return True
                if isinstance(expr.func, ast.Attribute):
                    if expr.func.attr == "_mmap_view":
                        return True
                    if expr.func.attr == "frombuffer" and expr.args:
                        return is_tainted(expr.args[0])
                    # .copy()/.tobytes()/np.array(...) launder the view.
                return False
            return False

        findings: list[Finding] = []
        for stmt in _ordered_stmts(func.body):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if is_tainted(stmt.value):
                        tainted.add(target.id)
                    else:
                        tainted.discard(target.id)
                    continue
                if _self_attr(target) is not None and is_tainted(stmt.value):
                    findings.append(Finding(
                        ctx.path, stmt.lineno, stmt.col_offset, "R010",
                        "mmap-backed view stored on self by a class with no "
                        "_drop_mmap()/close() teardown path; the view "
                        "outlives any control of the underlying map "
                        "(copy it, or add the sanctioned release path)",
                    ))
            elif isinstance(stmt, (ast.Return, ast.Expr)):
                value = stmt.value
                if isinstance(value, (ast.Yield, ast.YieldFrom)):
                    value = value.value
                elif isinstance(stmt, ast.Expr):
                    continue
                if is_tainted(value):
                    findings.append(Finding(
                        ctx.path, stmt.lineno, stmt.col_offset, "R010",
                        "mmap-backed view escapes the function that mapped "
                        "it; the caller holds a pointer into a buffer it "
                        "cannot unmap safely (return a .copy() instead)",
                    ))
        return findings

    # ------------------------------------------------------------------- R011

    def _rule_identity_token(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        seen: set[int] = set()

        def id_calls(expr: ast.expr):
            for sub in ast.walk(expr):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "id"):
                    yield sub

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                exprs = [node.left, *node.comparators]
            elif isinstance(node, ast.Assign):
                exprs = [node.value]
            else:
                continue
            for expr in exprs:
                for call in id_calls(expr):
                    if call.lineno in seen:
                        continue
                    seen.add(call.lineno)
                    findings.append(Finding(
                        ctx.path, call.lineno, call.col_offset, "R011",
                        "id() used as an identity token without a strong "
                        "reference; CPython reuses the id of a freed object "
                        "for its replacement — hold the object and compare "
                        "with `is`",
                    ))
        return findings


# ------------------------------------------------------- R007 lock-order walk


@dataclass
class _WalkEnv:
    """One method being walked from one concrete class."""

    cls: _CClass     # concrete class (late-binding root)
    owner: _CClass   # class whose body defines the function
    locals: dict[str, set[str]]


class _LockWalker:
    """Builds the lock-acquisition graph by abstract execution.

    Every method of every class is walked from every concrete subclass
    with the set of held lock *names*; acquiring a new name records an
    edge from each held name.  Held names re-acquired are skipped
    (re-entrancy; also what keeps same-class cross-instance nesting,
    like offline reshard, from reading as a self-cycle — mirroring the
    witness's object-identity rule).
    """

    _MAX_DEPTH = 24

    def __init__(self, analyzer: ConcurrencyAnalyzer):
        self.analyzer = analyzer
        self.edges: dict[tuple[str, str], tuple[str, int, int]] = {}
        self._done: set[tuple] = set()
        self._locals_cache: dict[tuple[str, int], dict[str, set[str]]] = {}

    def walk_all(self) -> None:
        for entries in self.analyzer._by_ctx.values():
            for cls in entries:
                for info in self.analyzer._chain(cls.name):
                    for func in info.methods.values():
                        self._walk(cls, info, func, {})

    def _walk(self, cls: _CClass, owner: _CClass, func: ast.FunctionDef,
              held: dict[str, str], depth: int = 0) -> None:
        key = (cls.name, id(func), tuple(sorted(held)))  # lint: disable=R011 (AST nodes stay strongly referenced by the contexts for the analyzer's lifetime)
        if key in self._done or depth > self._MAX_DEPTH:
            return
        self._done.add(key)
        env = _WalkEnv(cls, owner, self._local_types(cls, func))
        for stmt in func.body:
            self._exec(env, stmt, held, depth)

    # ------------------------------------------------------- local type infer

    def _local_types(self, cls: _CClass,
                     func: ast.FunctionDef) -> dict[str, set[str]]:
        cache_key = (cls.name, id(func))  # lint: disable=R011 (AST nodes stay strongly referenced by the contexts for the analyzer's lifetime)
        cached = self._locals_cache.get(cache_key)
        if cached is not None:
            return cached
        merged = self.analyzer.merged(cls.name)
        types: dict[str, set[str]] = {}
        args = list(func.args.args) + list(func.args.kwonlyargs)
        if func.args.vararg:
            args.append(func.args.vararg)
        for arg in args:
            names = _ann_names(arg.annotation)
            names.discard("None")
            if names:
                types[arg.arg] = names
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                inferred = self._expr_types(cls, merged, types, node.value)
                if inferred:
                    types.setdefault(node.targets[0].id, set()).update(inferred)
            elif isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.target, ast.Name):
                inferred = self._iter_types(cls, merged, types, node.iter)
                if inferred:
                    types.setdefault(node.target.id, set()).update(inferred)
        self._locals_cache[cache_key] = types
        return types

    def _expr_types(self, cls: _CClass, merged: _Merged,
                    local: dict[str, set[str]],
                    expr: ast.expr) -> set[str]:
        if isinstance(expr, ast.Name):
            return set(local.get(expr.id, ()))
        attr = _self_attr(expr)
        if attr is not None:
            return set(merged.attr_types.get(attr, ()))
        if isinstance(expr, ast.Subscript):
            sub = _self_attr(expr.value)
            if sub is not None:
                return set(merged.elem_types.get(sub, ()))
            return set()
        if isinstance(expr, ast.IfExp):
            return (self._expr_types(cls, merged, local, expr.body)
                    | self._expr_types(cls, merged, local, expr.orelse))
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in self.analyzer._classes:
                    return {func.id}
                return set()
            if isinstance(func, ast.Attribute):
                receivers = self._expr_types(cls, merged, local, func.value)
                out: set[str] = set()
                for recv in receivers:
                    for info in self.analyzer._chain(recv):
                        if func.attr in info.returns:
                            out |= info.returns[func.attr]
                            break
                out.discard("None")
                return out
        return set()

    def _iter_types(self, cls: _CClass, merged: _Merged,
                    local: dict[str, set[str]],
                    expr: ast.expr) -> set[str]:
        """Element types of a ``for`` iterable."""
        attr = _self_attr(expr)
        if attr is not None:
            return set(merged.elem_types.get(attr, ()))
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "values"):
            sub = _self_attr(expr.func.value)
            if sub is not None:
                return set(merged.elem_types.get(sub, ()))
        return set()

    # ------------------------------------------------------ abstract executor

    def _exec(self, env: _WalkEnv, node: ast.AST,
              held: dict[str, str], depth: int) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = dict(held)
            for item in node.items:
                acq = self._acquisition(env, item.context_expr)
                if acq is not None:
                    name, mode, loc = acq
                    if name not in new_held:
                        for holder in new_held:
                            self._edge(holder, name, env, loc)
                        new_held[name] = mode
                else:
                    self._scan_calls(env, item.context_expr, new_held, depth)
            for stmt in node.body:
                self._exec(env, stmt, new_held, depth)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return
        if isinstance(node, ast.expr):
            self._scan_calls(env, node, held, depth)
            return
        for child in ast.iter_child_nodes(node):
            self._exec(env, child, held, depth)

    def _acquisition(self, env: _WalkEnv,
                     expr: ast.expr) -> tuple[str, str, ast.expr] | None:
        base = expr
        mode = "exclusive"
        if isinstance(expr, ast.Call):
            func = expr.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _ACQUIRE_METHODS):
                mode = "shared" if _shared(func.attr) else "exclusive"
                base = func.value
            else:
                return None
        attr = _self_attr(base)
        if attr is None:
            return None
        if attr not in self.analyzer.merged(env.cls.name).lock_attrs:
            return None
        return self.analyzer.lock_node(env.cls.name, attr), mode, base

    def _edge(self, holder: str, acquired: str, env: _WalkEnv,
              loc: ast.expr) -> None:
        key = (holder, acquired)
        if key not in self.edges:
            self.edges[key] = (env.owner.path, loc.lineno, loc.col_offset)

    def _scan_calls(self, env: _WalkEnv, expr: ast.expr,
                    held: dict[str, str], depth: int) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                self._handle_call(env, sub, held, depth)

    def _handle_call(self, env: _WalkEnv, call: ast.Call,
                     held: dict[str, str], depth: int) -> None:
        analyzer = self.analyzer
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in analyzer._classes:
                resolved = analyzer.resolve_method(func.id, "__init__")
                if resolved is not None:
                    owner, node = resolved
                    self._walk(analyzer._classes[func.id], owner, node,
                               held, depth + 1)
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            resolved = analyzer.resolve_method(env.cls.name, method)
            if resolved is not None:
                owner, node = resolved
                self._walk(env.cls, owner, node, held, depth + 1)
            return
        if (isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"):
            resolved = analyzer.resolve_method(env.cls.name, method,
                                               after=env.owner.name)
            if resolved is not None:
                owner, node = resolved
                self._walk(env.cls, owner, node, held, depth + 1)
            return
        merged = analyzer.merged(env.cls.name)
        for type_name in self._expr_types(env.cls, merged,
                                          env.locals, receiver):
            resolved = analyzer.resolve_method(type_name, method)
            if resolved is not None:
                owner, node = resolved
                concrete = analyzer._classes.get(type_name)
                if concrete is not None:
                    self._walk(concrete, owner, node, held, depth + 1)


# ------------------------------------------------ R008/R012 lexical discipline


class _LexicalChecker:
    """Per-class lexical pass: guarded-state (R008) and
    blocking-under-lock (R012).

    Tracks the *exclusively held* lock attributes through ``with``
    spans (``with self._lock:`` / ``.write()`` / ``.acquire_write()``)
    and acquire/try/finally spans.  The shared side never counts:
    holding ``read()`` neither licenses a guarded mutation nor blocks
    writers long enough to matter for R012's contract.
    """

    def __init__(self, analyzer: ConcurrencyAnalyzer, ctx: _FileContext,
                 cls: _CClass):
        self.analyzer = analyzer
        self.ctx = ctx
        self.cls = cls
        self.merged = analyzer.merged(cls.name)
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        for name, func in self.cls.methods.items():
            self._in_init = name == "__init__"
            self._stmts(func.body, frozenset())
        rules = self.analyzer.rules
        return [f for f in self.findings if f.rule in rules]

    # -------------------------------------------------------------- traversal

    def _stmts(self, stmts, held: frozenset[str]) -> None:
        i = 0
        while i < len(stmts):
            stmt = stmts[i]
            acquired = self._acquire_expr_stmt(stmt)
            if acquired is not None and i + 1 < len(stmts) \
                    and isinstance(stmts[i + 1], ast.Try):
                attr, exclusive = acquired
                try_stmt = stmts[i + 1]
                inner = held | {attr} if exclusive else held
                self._stmts(try_stmt.body, inner)
                self._stmts(try_stmt.orelse, inner)
                for handler in try_stmt.handlers:
                    self._stmts(handler.body, inner)
                self._stmts(try_stmt.finalbody, held)
                i += 2
                continue
            self._stmt(stmt, held)
            i += 1

    def _stmt(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_held = set(held)
            for item in stmt.items:
                attr = self._with_acquisition(item.context_expr)
                if attr is not None:
                    new_held.add(attr)
                else:
                    self._check_expr(item.context_expr, held)
            self._stmts(stmt.body, frozenset(new_held))
            return
        self._check_mutation_targets(stmt, held)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(child, held)
        for fieldname in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, fieldname, None)
            if sub:
                self._stmts(sub, held)
        for handler in getattr(stmt, "handlers", []):
            self._stmts(handler.body, held)

    def _with_acquisition(self, expr: ast.expr) -> str | None:
        """Lock attr exclusively acquired by a with-item, else None."""
        base = expr
        if isinstance(expr, ast.Call):
            func = expr.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in _ACQUIRE_METHODS):
                return None
            if _shared(func.attr):
                # Shared hold: neither licenses a guarded mutation nor
                # counts for R012 (readers don't serialize the world).
                return None
            base = func.value
        attr = _self_attr(base)
        if attr is not None and attr in self.merged.lock_attrs:
            return attr
        return None

    def _acquire_expr_stmt(self, stmt: ast.stmt
                           ) -> tuple[str, bool] | None:
        """(lock attr, exclusive?) for ``self.X.acquire*()`` statements."""
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr.startswith("acquire")):
            return None
        attr = _self_attr(stmt.value.func.value)
        if attr is None or attr not in self.merged.lock_attrs:
            return None
        return attr, not _shared(stmt.value.func.attr)

    # ----------------------------------------------------------------- checks

    def _check_mutation_targets(self, stmt: ast.stmt,
                                held: frozenset[str]) -> None:
        if self._in_init:
            return
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = stmt.targets
        else:
            return
        for target in targets:
            for attr in self._mutated_attrs(target):
                self._flag_unguarded(attr, stmt, held)

    def _mutated_attrs(self, target: ast.expr):
        attr = _self_attr(target)
        if attr is not None:
            yield attr
            return
        if isinstance(target, ast.Subscript):
            sub = _self_attr(target.value)
            if sub is not None:
                yield sub
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._mutated_attrs(elt)

    def _flag_unguarded(self, attr: str, node: ast.AST,
                        held: frozenset[str]) -> None:
        lock = self.merged.guarded.get(attr)
        if lock is None or lock in held or "R008" not in self.analyzer.rules:
            return
        self.findings.append(Finding(
            self.ctx.path, node.lineno, node.col_offset, "R008",
            f"self.{attr} is declared guarded-by self.{lock} but is mutated "
            "here without holding its exclusive side",
        ))

    def _check_expr(self, expr: ast.expr, held: frozenset[str]) -> None:
        for call in ast.walk(expr):
            if not isinstance(call, ast.Call):
                continue
            # R008: mutating container methods on a guarded attribute.
            if not self._in_init and isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _MUTATORS:
                recv = call.func.value
                attr = _self_attr(recv)
                if attr is None and isinstance(recv, ast.Subscript):
                    attr = _self_attr(recv.value)
                if attr is not None:
                    self._flag_unguarded(attr, call, held)
            if held:
                self._check_blocking(call, held)

    def _check_blocking(self, call: ast.Call,
                        held: frozenset[str]) -> None:
        if "R012" not in self.analyzer.rules:
            return
        reason = None
        dotted = _dotted(call.func)
        if dotted in _BLOCKING_DOTTED:
            reason = f"{dotted}() blocks on the OS"
        elif isinstance(call.func, ast.Name) and call.func.id == "open":
            reason = "open() performs file I/O"
        elif isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _BLOCKING_ATTRS:
                reason = f".{attr}() joins asynchronous work"
            elif attr == "flush" and self._sync_true(call):
                reason = ".flush(sync=True) waits on fsync"
        if reason is None:
            return
        locks = ", ".join(f"self.{name}" for name in sorted(held))
        self.findings.append(Finding(
            self.ctx.path, call.lineno, call.col_offset, "R012",
            f"{reason} while the exclusive side of {locks} is held; every "
            "reader and writer stalls behind this call — move it outside "
            "the critical section",
        ))

    @staticmethod
    def _sync_true(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "sync" and isinstance(kw.value, ast.Constant):
                return kw.value.value is True
        if call.args and isinstance(call.args[0], ast.Constant):
            return call.args[0].value is True
        return False


# ---------------------------------------------------------------- public API


def _load_contexts(paths) -> list[_FileContext]:
    from pathlib import Path

    from .linter import Linter, _parse_pragmas

    contexts: list[_FileContext] = []
    for raw in sorted(Linter._collect(paths)):
        source = Path(raw).read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(raw))
        except SyntaxError:
            continue
        pragmas, bare = _parse_pragmas(source)
        contexts.append(_FileContext(str(raw), tree, pragmas, bare,
                                     source.splitlines()))
    return contexts


def static_lock_edges(paths) -> set[tuple[str, str]]:
    """The statically provable lock-order edges under ``paths``.

    The runtime witness asserts that the union of these edges with the
    orders it observed stays acyclic — static analysis proposes, the
    test suite disposes.
    """
    analyzer = ConcurrencyAnalyzer(_load_contexts(paths))
    analyzer.run()
    return set(analyzer.lock_edges)
