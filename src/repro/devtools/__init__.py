"""Developer tooling: the VEND linters, soundness auditor, and witness.

``repro lint`` runs :mod:`.linter` (rules R001–R006) and, with
``--concurrency``, :mod:`.concurrency` (R007–R012) over source trees;
``repro audit`` runs :mod:`.audit`'s differential soundness sweep over
every registered solution; :mod:`.witness` is the opt-in runtime
lock-order recorder the chaos/parallel suites compare against the
static order.  All three are wired into CI — see DESIGN.md §9/§14.

Exports resolve lazily (PEP 562): the storage layer imports
:mod:`.witness` at module load, and an eager ``from .audit import …``
here would close the cycle ``storage → devtools → audit → apps →
storage``.
"""

from __future__ import annotations

_EXPORTS = {
    "Finding": ".linter",
    "Linter": ".linter",
    "lint_paths": ".linter",
    "RULES": ".linter",
    "CONCURRENCY_RULES": ".linter",
    "ConcurrencyAnalyzer": ".concurrency",
    "find_cycle": ".concurrency",
    "static_lock_edges": ".concurrency",
    "LockOrderWitness": ".witness",
    "get_witness": ".witness",
    "wrap_lock": ".witness",
    "AuditReport": ".audit",
    "AuditViolation": ".audit",
    "SoundnessAuditor": ".audit",
    "ParallelAuditReport": ".audit",
    "audit_parallel_engine": ".audit",
    "ChaosAuditReport": ".audit",
    "audit_chaos": ".audit",
    "StreamAuditReport": ".audit",
    "audit_stream": ".audit",
    "FuzzReport": ".fuzz",
    "PoisonedFilter": ".fuzz",
    "ShadowGraph": ".fuzz",
    "run_fuzz": ".fuzz",
    "strategy_for": ".fuzz",
    "FUZZ_SEED_ENV": ".fuzz",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(module_name, __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
