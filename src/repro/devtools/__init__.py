"""Developer tooling: the VEND invariant linter and soundness auditor.

``repro lint`` runs :mod:`.linter` (rules R001–R005) over source trees;
``repro audit`` runs :mod:`.audit`'s differential soundness sweep over
every registered solution.  Both are wired into CI — see DESIGN.md §9.
"""

from .audit import (
    AuditReport,
    AuditViolation,
    ChaosAuditReport,
    ParallelAuditReport,
    SoundnessAuditor,
    audit_chaos,
    audit_parallel_engine,
)
from .linter import RULES, Finding, Linter, lint_paths

__all__ = [
    "Finding",
    "Linter",
    "lint_paths",
    "RULES",
    "AuditReport",
    "AuditViolation",
    "SoundnessAuditor",
    "ParallelAuditReport",
    "audit_parallel_engine",
    "ChaosAuditReport",
    "audit_chaos",
]
