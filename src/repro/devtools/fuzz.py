"""Schema-driven fuzzing of the edge-query server.

The server's contract (DESIGN.md §15) has two halves, and this module
attacks both from the schemas in :mod:`repro.server.schemas`:

- **Soundness** — no sequence of mutations and probes may ever produce
  a *false no-edge* verdict: if the shadow ground-truth graph (a plain
  dict-of-sets fed the exact same mutations) holds an edge, the server
  must answer ``true``.  This is the paper's zero-false-negative
  invariant carried across the wire; a lying filter, a torn batch, a
  race between the coalescer and a mutation — all surface here.
- **Robustness** — malformed input (invalid JSON, schema violations,
  junk framing) must always be answered with a structured 4xx, never a
  5xx and never a hang.

Valid payloads are *generated from the same schema dicts the server
validates with* (hypothesis strategies via :func:`strategy_for`), so
the attack surface description cannot drift from the contract — the
schemathesis idea, specialized to our five endpoints.  Invalid
payloads are schema-guided corruptions of valid ones plus raw junk.

Phase A drives one client through hypothesis-generated
mutate-then-probe sequences; phase B freezes the graph and hammers it
with ``clients`` concurrent threads (distinct ``X-Client-Id``s, honest
``Retry-After`` handling) mixing probes and garbage.  Both phases feed
one :class:`FuzzReport`; ``repro fuzz`` exits non-zero unless
``report.ok``.

Seeded end to end: ``seed`` (default ``$REPRO_FUZZ_SEED``) fixes
hypothesis's search and every thread's RNG, so a CI failure replays
locally with the same number.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field

from ..server.schemas import (
    MAX_MUTATION_OPS,
    MAX_PROBE_PAIRS,
    MAX_VERTEX_ID,
    check_mutation_op,
)

__all__ = [
    "FUZZ_SEED_ENV",
    "FuzzReport",
    "PoisonedFilter",
    "ShadowGraph",
    "run_fuzz",
    "strategy_for",
]

#: Environment variable CI uses to sweep fuzz seeds.
FUZZ_SEED_ENV = "REPRO_FUZZ_SEED"

#: Fuzzing draws vertices from a small universe so probes actually hit
#: edges the mutations created (ids sparse in 2**62 never collide).
DEFAULT_UNIVERSE = 24


# -- ground truth -----------------------------------------------------------


class ShadowGraph:
    """Dict-of-sets ground truth mirroring the server's mutation log.

    Deliberately nothing like the system under test — no encoding, no
    storage, no filter — so a bug cannot cancel itself out by living
    on both sides of the comparison.
    """

    def __init__(self):
        self._adj: dict[int, set[int]] = {}

    def apply(self, op: dict) -> None:
        verb = op["op"]
        if verb == "add_edge":
            self._adj.setdefault(op["u"], set()).add(op["v"])
            self._adj.setdefault(op["v"], set()).add(op["u"])
        elif verb == "remove_edge":
            self._adj.get(op["u"], set()).discard(op["v"])
            self._adj.get(op["v"], set()).discard(op["u"])
        elif verb == "add_vertex":
            self._adj.setdefault(op["v"], set())
        elif verb == "remove_vertex":
            neighbors = self._adj.pop(op["v"], set())
            for u in neighbors:
                self._adj.get(u, set()).discard(op["v"])
        else:
            raise ValueError(f"unknown op {verb!r}")

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, ())

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u, nbrs in self._adj.items()
                for v in nbrs if u < v]

    def __len__(self) -> int:
        return len(self._adj)


# -- schema → hypothesis strategies ----------------------------------------


def strategy_for(schema: dict, vertex_ids=None):
    """A hypothesis strategy generating values conforming to ``schema``.

    This is the generic walker over the tiny schema language of
    :mod:`repro.server.schemas` — any schema those dicts can express,
    this can generate.  ``vertex_ids`` (a strategy) narrows every
    bounded-int leaf to interesting ids so generated edges collide.
    """
    from hypothesis import strategies as st

    kind = schema.get("type")
    if kind == "int":
        if vertex_ids is not None:
            return vertex_ids
        return st.integers(min_value=schema.get("min", -(2**63)),
                           max_value=schema.get("max", 2**63))
    if kind == "string":
        enum = schema.get("enum")
        if enum is not None:
            return st.sampled_from(list(enum))
        return st.text(max_size=32)
    if kind == "bool":
        return st.booleans()
    if kind == "array":
        return st.lists(
            strategy_for(schema["items"], vertex_ids),
            min_size=schema.get("min_items", 0),
            # Cap generated arrays well below the schema bound: the
            # point is request diversity, not 4096-pair payloads.
            max_size=min(schema.get("max_items", 8), 8),
        )
    if kind == "object":
        required, optional = {}, {}
        for name, sub in schema.get("fields", {}).items():
            target = required if sub.get("required") else optional
            target[name] = strategy_for(sub, vertex_ids)
        return st.fixed_dictionaries(required, optional=optional)
    raise ValueError(f"unknown schema type {kind!r}")


def valid_mutation_ops(vertex_ids):
    """Strategy for one cross-field-valid mutation op."""
    from hypothesis import strategies as st
    from ..server.schemas import MUTATION_OP

    return (strategy_for(MUTATION_OP, vertex_ids)
            .filter(lambda op: not check_mutation_op(op)))


def _corruptions(universe: int):
    """Schema-guided invalid payloads: ``(endpoint, body_bytes)``.

    Each entry violates exactly one rule (wrong type, missing field,
    bound, enum, self-loop, unknown field, oversize, non-JSON, bad
    UTF-8) so a regression pinpoints which check went missing.
    """
    mid = universe // 2
    return [
        ("/v1/edges:probe", b"this is not json"),
        ("/v1/edges:probe", b"\xff\xfe\x00garbage"),
        ("/v1/edges:probe", b""),
        ("/v1/edges:probe", b"[]"),
        ("/v1/edges:probe", b'{"pairs": 7}'),
        ("/v1/edges:probe", b'{"pairs": [[1]]}'),
        ("/v1/edges:probe", b'{"pairs": [[1, 2, 3]]}'),
        ("/v1/edges:probe", b'{"pairs": [[-1, 2]]}'),
        ("/v1/edges:probe", b'{"pairs": [[true, 2]]}'),
        ("/v1/edges:probe", b'{"pairs": [["1", 2]]}'),
        ("/v1/edges:probe",
         json.dumps({"pairs": [[0, MAX_VERTEX_ID + 1]]}).encode()),
        ("/v1/edges:probe",
         json.dumps({"pairs": [[0, 1]] * (MAX_PROBE_PAIRS + 1)}).encode()),
        ("/v1/edges:probe", b'{"pairs": [[0, 1]], "extra": true}'),
        ("/v1/neighbors", b'{}'),
        ("/v1/neighbors", b'{"vertex": "zero"}'),
        ("/v1/neighbors", b'{"vertex": -3}'),
        ("/v1/neighbors", b'{"vertex": 1, "depth": 2}'),
        ("/v1/mutations", b'{"ops": []}'),
        ("/v1/mutations", b'{"ops": [{"op": "explode", "v": 1}]}'),
        ("/v1/mutations", b'{"ops": [{"op": "add_edge", "u": 1}]}'),
        ("/v1/mutations",
         json.dumps({"ops": [{"op": "add_edge", "u": mid,
                              "v": mid}]}).encode()),
        ("/v1/mutations",
         json.dumps({"ops": [{"op": "add_vertex", "u": 1,
                              "v": 2}]}).encode()),
        ("/v1/mutations",
         json.dumps({"ops": [{"op": "add_vertex", "v": 1}]
                     * (MAX_MUTATION_OPS + 1)}).encode()),
    ]
    return docs


# -- the report -------------------------------------------------------------


@dataclass
class FuzzReport:
    """Everything both fuzz phases observed, worst news first."""

    seed: int
    examples: int = 0
    requests: int = 0
    #: Shadow has the edge, server said no — the unforgivable verdict.
    false_no_edge: list[str] = field(default_factory=list)
    #: Server said edge, shadow disagrees (unsound the other way).
    phantom_edges: list[str] = field(default_factory=list)
    #: Any 5xx, transport error, or invalid-JSON success body.
    server_errors: list[str] = field(default_factory=list)
    #: Malformed payloads not answered with a 4xx.
    bad_status: list[str] = field(default_factory=list)

    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    @property
    def ok(self) -> bool:
        return not (self.false_no_edge or self.phantom_edges
                    or self.server_errors or self.bad_status)

    def book(self, bucket: str, message: str, cap: int = 25) -> None:
        """Thread-safe append, bounded so a hot failure stays readable."""
        with self._lock:
            entries = getattr(self, bucket)
            if len(entries) < cap:
                entries.append(message)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (f"fuzz[seed={self.seed}]: {verdict} — "
                f"{self.examples} examples, {self.requests} requests, "
                f"{len(self.false_no_edge)} false no-edge, "
                f"{len(self.phantom_edges)} phantom edges, "
                f"{len(self.server_errors)} server errors, "
                f"{len(self.bad_status)} bad statuses")

    def details(self, limit: int = 10) -> str:
        lines = []
        for bucket in ("false_no_edge", "phantom_edges", "server_errors",
                       "bad_status"):
            for message in getattr(self, bucket)[:limit]:
                lines.append(f"  [{bucket}] {message}")
        return "\n".join(lines)


# -- the HTTP client --------------------------------------------------------


class _FuzzClient:
    """One keep-alive connection with honest 429 handling."""

    def __init__(self, host: str, port: int, client_id: str,
                 report: FuzzReport, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.report = report
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str, body: bytes | None = None,
                retries: int = 8):
        """Issue one request; returns ``(status, parsed_body_or_None)``.

        429s are retried after the server's suggested ``Retry-After``
        (capped — a fuzz run should not sleep for real); anything the
        transport coughs up is booked as a server error.
        """
        headers = {"X-Client-Id": self.client_id}
        if body is not None:
            headers["Content-Type"] = "application/json"
        for _attempt in range(retries + 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                status = response.status
            except (OSError, http.client.HTTPException) as exc:
                self.close()
                self.report.book(
                    "server_errors",
                    f"{method} {path}: transport error {exc!r}")
                return None, None
            self.report.requests += 1  # benign race: diagnostics only
            if status == 429:
                retry_after = response.headers.get("Retry-After")
                try:
                    delay = float(retry_after)
                except (TypeError, ValueError):
                    self.report.book(
                        "server_errors",
                        f"{method} {path}: 429 without a numeric "
                        f"Retry-After ({retry_after!r})")
                    return status, None
                time.sleep(min(max(delay, 0.0), 0.05))
                continue
            if status >= 500:
                self.report.book(
                    "server_errors",
                    f"{method} {path}: HTTP {status} "
                    f"{payload[:120]!r}")
                return status, None
            try:
                doc = json.loads(payload) if payload else None
            except json.JSONDecodeError:
                if path != "/metrics":
                    self.report.book(
                        "server_errors",
                        f"{method} {path}: unparseable body "
                        f"{payload[:120]!r}")
                doc = payload.decode("utf-8", "replace")
            return status, doc
        self.report.book(
            "server_errors",
            f"{method} {path}: still 429 after {retries} retries")
        return 429, None


# -- fuzz phases ------------------------------------------------------------


def _check_probe(client: _FuzzClient, shadow: ShadowGraph,
                 pairs: list[tuple[int, int]], where: str) -> None:
    """Probe ``pairs`` and compare every verdict against the shadow."""
    body = json.dumps({"pairs": [list(p) for p in pairs]}).encode()
    status, doc = client.request("POST", "/v1/edges:probe", body)
    if status is None or status == 429:
        return
    if status != 200 or not isinstance(doc, dict):
        client.report.book(
            "server_errors",
            f"{where}: probe of {len(pairs)} pairs → HTTP {status}")
        return
    results = doc.get("results")
    if not isinstance(results, list) or len(results) != len(pairs):
        client.report.book(
            "server_errors",
            f"{where}: probe returned {results!r} for {len(pairs)} pairs")
        return
    for (u, v), verdict in zip(pairs, results):
        truth = shadow.has_edge(u, v)
        if truth and not verdict:
            client.report.book(
                "false_no_edge",
                f"{where}: edge ({u}, {v}) exists but server said no")
        elif verdict and not truth:
            client.report.book(
                "phantom_edges",
                f"{where}: server claims edge ({u}, {v}) that was "
                f"never added")


def _check_malformed(client: _FuzzClient, path: str, body: bytes,
                     where: str) -> None:
    status, _doc = client.request("POST", path, body)
    if status is None or status == 429:
        return  # transport errors were already booked
    if not 400 <= status < 500:
        client.report.book(
            "bad_status",
            f"{where}: malformed POST {path} ({body[:60]!r}) → "
            f"HTTP {status}, wanted 4xx")


def _sequential_phase(client: _FuzzClient, shadow: ShadowGraph,
                      seed: int, examples: int, universe: int) -> None:
    """Phase A: hypothesis-driven mutate → probe → garbage sequences.

    Violations are *collected*, not asserted — server state persists
    across examples, so shrinking could not replay a failure anyway;
    determinism comes from the seed, diagnosis from the report.
    """
    from hypothesis import HealthCheck, given, settings
    from hypothesis import seed as hypothesis_seed
    from hypothesis import strategies as st

    vertex_ids = st.integers(min_value=0, max_value=universe - 1)
    ops_strategy = st.lists(valid_mutation_ops(vertex_ids),
                            min_size=1, max_size=6)
    pairs_strategy = st.lists(
        st.tuples(vertex_ids, vertex_ids).filter(lambda p: p[0] != p[1]),
        min_size=1, max_size=12)
    junk = _corruptions(universe)
    report = client.report

    @settings(max_examples=examples, database=None, deadline=None,
              suppress_health_check=list(HealthCheck), derandomize=False)
    @hypothesis_seed(seed)
    @given(ops=ops_strategy, pairs=pairs_strategy,
           junk_index=st.integers(min_value=0, max_value=len(junk) - 1),
           probe_removed=st.booleans())
    def drive(ops, pairs, junk_index, probe_removed):
        report.examples += 1
        where = f"phaseA#{report.examples}"
        body = json.dumps({"ops": ops}).encode()
        status, doc = client.request("POST", "/v1/mutations", body)
        if status == 200 and isinstance(doc, dict):
            # The shadow applies exactly what the server acknowledged.
            for op in ops:
                shadow.apply(op)
        elif status not in (None, 429):
            report.book(
                "server_errors",
                f"{where}: valid mutations → HTTP {status}: {doc!r}")
        probe = list(pairs)
        if probe_removed and ops:
            # Aim some probes at just-touched endpoints: the regime
            # where a stale filter or torn update would lie.
            for op in ops[:3]:
                if "u" in op:
                    probe.append((op["u"], op["v"]))
        _check_probe(client, shadow, probe, where)
        path, garbage = junk[junk_index]
        _check_malformed(client, path, garbage, where)

    drive()


def _concurrent_phase(host: str, port: int, shadow: ShadowGraph,
                      report: FuzzReport, seed: int, clients: int,
                      per_client: int, universe: int) -> None:
    """Phase B: ``clients`` threads hammer a frozen graph at once.

    No mutations in flight, so every probe has one right answer — any
    disagreement is a concurrency bug in the server (torn coalescing,
    cross-request result scattering, racy masking), not staleness.
    """
    import random

    junk = _corruptions(universe)
    edges = shadow.edges()
    barrier = threading.Barrier(clients)

    def worker(worker_id: int) -> None:
        rng = random.Random(seed * 7919 + worker_id)
        client = _FuzzClient(host, port, f"fuzz-{worker_id}", report)
        try:
            barrier.wait(timeout=30)
            for i in range(per_client):
                where = f"phaseB[c{worker_id}#{i}]"
                roll = rng.random()
                if roll < 0.70:
                    pairs = []
                    for _ in range(rng.randint(1, 16)):
                        if edges and rng.random() < 0.5:
                            u, v = rng.choice(edges)
                            if rng.random() < 0.5:
                                u, v = v, u
                        else:
                            u = rng.randrange(universe)
                            v = rng.randrange(universe)
                            while v == u:
                                v = rng.randrange(universe)
                        pairs.append((u, v))
                    _check_probe(client, shadow, pairs, where)
                elif roll < 0.90:
                    path, garbage = junk[rng.randrange(len(junk))]
                    _check_malformed(client, path, garbage, where)
                else:
                    status, _doc = client.request("GET", "/healthz")
                    if status not in (None, 200, 429, 503):
                        report.book(
                            "server_errors",
                            f"{where}: healthz → HTTP {status}")
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(i,),
                                name=f"fuzz-client-{i}", daemon=True)
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
        if thread.is_alive():
            report.book("server_errors",
                        f"{thread.name} still running after 300s (hang?)")


def check_exact_metrics(host: str, port: int, report: FuzzReport,
                        probes: int = 7) -> None:
    """Scrape ``/metrics`` around a known request count; verify exact
    integer deltas and the absence of ``%g``-style rounding artifacts.
    """
    client = _FuzzClient(host, port, "fuzz-metrics", report)

    def scrape() -> dict[str, str]:
        status, text = client.request("GET", "/metrics")
        if status != 200 or not isinstance(text, str):
            report.book("server_errors",
                        f"metrics: scrape → HTTP {status}")
            return {}
        out = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, _, value = line.rpartition(" ")
            out[name] = value
        return out

    try:
        before = scrape()
        body = json.dumps({"pairs": [[0, 1]]}).encode()
        for _ in range(probes):
            status, _doc = client.request("POST", "/v1/edges:probe", body)
            if status != 200:
                report.book("server_errors",
                            f"metrics: warm probe → HTTP {status}")
                return
        after = scrape()
    finally:
        client.close()
    if not before or not after:
        return

    def probe_total(samples: dict[str, str]) -> int | None:
        # Sum across server scopes: several servers may share the
        # process registry, but only the one under test is moving.
        keys = [k for k in samples
                if k.startswith("repro_server_requests_total")
                and 'endpoint="/v1/edges:probe"' in k
                and 'code="200"' in k]
        return sum(int(samples[k]) for k in keys) if keys else None

    total_after = probe_total(after)
    if total_after is None:
        report.book("server_errors",
                    "metrics: no requests_total series for the probe "
                    "endpoint")
        return
    delta = total_after - (probe_total(before) or 0)
    if delta != probes:
        report.book(
            "server_errors",
            f"metrics: requests_total moved by {delta}, expected exactly "
            f"{probes} — counter exposition is not exact")
    for name, value in after.items():
        if "e+" in value or "E+" in value:
            report.book(
                "server_errors",
                f"metrics: {name} rendered in scientific notation "
                f"({value}) — %g rounding is back")


# -- entry point ------------------------------------------------------------


def run_fuzz(host: str, port: int, seed: int = 0, examples: int = 40,
             clients: int = 64, per_client: int = 20,
             universe: int = DEFAULT_UNIVERSE,
             check_metrics: bool = False,
             shadow: ShadowGraph | None = None) -> FuzzReport:
    """Fuzz a live server; returns the combined two-phase report.

    The server must start *empty* (or ``shadow`` must describe its
    current edges exactly) — ground truth is maintained client-side
    from the acknowledged mutations.
    """
    report = FuzzReport(seed=seed)
    shadow = shadow if shadow is not None else ShadowGraph()
    if examples > 0:
        client = _FuzzClient(host, port, "fuzz-sequential", report)
        try:
            _sequential_phase(client, shadow, seed, examples, universe)
        finally:
            client.close()
    if clients > 0 and per_client > 0:
        _concurrent_phase(host, port, shadow, report, seed, clients,
                          per_client, universe)
    if check_metrics:
        check_exact_metrics(host, port, report)
    return report


# -- the planted bug --------------------------------------------------------


class PoisonedFilter:
    """A filter that lies: claims one real edge is a certain non-edge.

    Installed over ``db._engine.nonedge_filter`` in tests to prove the
    fuzz harness *detects* soundness violations rather than vacuously
    passing: a probe of the poisoned pair produces a false no-edge
    verdict, which :func:`run_fuzz` must book.

    ``is_nonedge_batch`` is deliberately withheld (not delegated) so
    the engine's batch path falls back to the scalar predicate and the
    lie reaches every probe.
    """

    def __init__(self, inner, poisoned_pair: tuple[int, int]):
        self._inner = inner
        self._poison = (min(poisoned_pair), max(poisoned_pair))

    def is_nonedge(self, u: int, v: int) -> bool:
        if (min(u, v), max(u, v)) == self._poison:
            return True
        return self._inner.is_nonedge(u, v)

    def __getattr__(self, name: str):
        if name == "is_nonedge_batch":
            raise AttributeError(name)
        return getattr(self._inner, name)
