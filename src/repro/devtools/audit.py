"""Runtime soundness auditing — the ``repro audit`` sweep.

The linter (:mod:`repro.devtools.linter`) checks invariants statically;
this module checks them *differentially* at runtime.  A
:class:`SoundnessAuditor` wraps any registered solution and verifies,
against ground truth adjacency, the three properties VEND's value rests
on:

(a) **zero false no-edge verdicts** — ``is_nonedge(u, v)`` must never
    return True for an existing edge (Definition 4's one-sided
    contract), checked over every current edge *and* seeded
    RandPair/CommPair workloads;
(b) **scalar/batch agreement** — ``is_nonedge_batch`` must answer
    exactly like the scalar NDF, which catches stale batch snapshots
    (the R003 bug class) at runtime;
(c) **post-maintenance validity** — after a seeded insert+delete phase
    the same checks must still hold: solutions with maintenance hooks
    (``supports_maintenance``) are mutated in place, static baselines
    are rebuilt against the mutated graph (their documented maintenance
    story).

Everything is seeded; ``repro audit --seed N`` reproduces a sweep
bit-for-bit, and CI rotates ``REPRO_AUDIT_SEED`` over several seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.base import VendSolution, nonedge_batch_mask
from ..graph import Graph
from ..workloads import common_neighbor_pairs, random_pairs
from ..workloads.updates import sample_deletions, sample_insertions

__all__ = [
    "AuditViolation",
    "AuditReport",
    "SoundnessAuditor",
    "ParallelAuditReport",
    "audit_parallel_engine",
    "ChaosAuditReport",
    "audit_chaos",
    "StreamAuditReport",
    "audit_stream",
]


@dataclass(frozen=True)
class AuditViolation:
    """One broken invariant, with the offending pair and phase."""

    check: str   # "false-nonedge" | "batch-mismatch" | "maintenance-error"
    phase: str   # "static" | "maintenance"
    pair: tuple[int, int]
    detail: str

    def format(self) -> str:
        u, v = self.pair
        return f"[{self.phase}] {self.check} on ({u}, {v}): {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one solution's audit."""

    solution: str
    seed: int
    edges_checked: int = 0
    pairs_checked: int = 0
    detections: int = 0
    maintenance_mode: str = "skipped"   # "hooks" | "rebuild" | "skipped"
    inserts_applied: int = 0
    deletes_applied: int = 0
    deleted_pairs_detected: int = 0
    violations: list[AuditViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return (
            f"{self.solution:<10} seed={self.seed} "
            f"edges={self.edges_checked} pairs={self.pairs_checked} "
            f"detections={self.detections} "
            f"maintenance={self.maintenance_mode} "
            f"(+{self.inserts_applied}/-{self.deletes_applied}) {status}"
        )


class SoundnessAuditor:
    """Differential checker for VEND solutions over a ground-truth graph.

    Parameters
    ----------
    graph:
        Ground truth.  The auditor works on a private copy, so the
        caller's graph is never mutated by the maintenance phase.
    seed:
        Master seed for every sampled workload.
    pairs:
        RandPair/CommPair sample size per phase.
    updates:
        Insertions *and* deletions applied in the maintenance phase.
    scalar_sample:
        Pairs re-checked with the scalar NDF for batch agreement (the
        batch path is checked on every pair).
    max_violations:
        Recording cap per audit; checking stops early once reached.
    """

    def __init__(self, graph: Graph, seed: int = 0, pairs: int = 2000,
                 updates: int = 50, scalar_sample: int = 500,
                 max_violations: int = 20):
        self._edges = sorted(graph.edges())
        self.seed = seed
        self.pairs = pairs
        self.updates = updates
        self.scalar_sample = scalar_sample
        self.max_violations = max_violations

    # ------------------------------------------------------------------ audit

    def audit(self, solution: VendSolution,
              maintenance: bool = True) -> AuditReport:
        """Build ``solution`` on the graph and run every check phase."""
        graph = Graph(self._edges)
        report = AuditReport(solution=getattr(solution, "name", "?"),
                             seed=self.seed)
        solution.build(graph)
        self._check_phase(solution, graph, "static", report)
        if maintenance and not self._full(report):
            self._maintenance_phase(solution, graph, report)
        return report

    # ------------------------------------------------------------------ phases

    def _check_phase(self, solution, graph: Graph, phase: str,
                     report: AuditReport) -> None:
        self._check_edges(solution, graph, phase, report)
        offset = 0 if phase == "static" else 1000
        workload = random_pairs(graph, self.pairs, seed=self.seed + offset)
        workload += common_neighbor_pairs(graph, self.pairs,
                                          seed=self.seed + offset + 1)
        self._check_pairs(solution, graph, workload, phase, report)

    def _check_edges(self, solution, graph: Graph, phase: str,
                     report: AuditReport) -> None:
        """(a) on every current edge, via the batch path + a scalar sample."""
        edges = sorted(graph.edges())
        if not edges:
            return
        mask = nonedge_batch_mask(solution, edges)
        report.edges_checked += len(edges)
        for (u, v), wrong in zip(edges, mask.tolist()):
            if wrong and not self._full(report):
                report.violations.append(AuditViolation(
                    "false-nonedge", phase, (u, v),
                    "batch NDF certifies an existing edge as an NEpair",
                ))
        step = max(1, len(edges) // self.scalar_sample)
        for u, v in edges[::step]:
            if self._full(report):
                break
            for a, b in ((u, v), (v, u)):
                if solution.is_nonedge(a, b):
                    report.violations.append(AuditViolation(
                        "false-nonedge", phase, (a, b),
                        "scalar NDF certifies an existing edge as an NEpair",
                    ))

    def _check_pairs(self, solution, graph: Graph, workload, phase: str,
                     report: AuditReport) -> None:
        """(a) + (b) over a seeded mixed workload."""
        if not workload:
            return
        mask = nonedge_batch_mask(solution, workload)
        report.pairs_checked += len(workload)
        report.detections += int(mask.sum())
        for (u, v), certain in zip(workload, mask.tolist()):
            if certain and graph.has_edge(u, v) and not self._full(report):
                report.violations.append(AuditViolation(
                    "false-nonedge", phase, (u, v),
                    "batch NDF certifies an existing edge as an NEpair",
                ))
        step = max(1, len(workload) // self.scalar_sample)
        for index in range(0, len(workload), step):
            if self._full(report):
                break
            u, v = workload[index]
            scalar = solution.is_nonedge(u, v)
            if scalar != bool(mask[index]):
                report.violations.append(AuditViolation(
                    "batch-mismatch", phase, (u, v),
                    f"scalar NDF says {scalar} but the batch path says "
                    f"{bool(mask[index])} (stale snapshot?)",
                ))

    def _maintenance_phase(self, solution, graph: Graph,
                           report: AuditReport) -> None:
        """(c): seeded insert+delete phase, then re-run every check."""
        insertions = sample_insertions(graph, self.updates,
                                       seed=self.seed + 7)
        deletions = sample_deletions(graph, self.updates,
                                     seed=self.seed + 8)
        use_hooks = bool(getattr(solution, "supports_maintenance", False))
        report.maintenance_mode = "hooks" if use_hooks else "rebuild"
        try:
            for u, v in insertions:
                graph.add_edge(u, v)
                if use_hooks:
                    solution.insert_edge(u, v, graph.sorted_neighbors)
                report.inserts_applied += 1
            for u, v in deletions:
                if not graph.has_edge(u, v):
                    continue  # deleted transitively / sampled twice
                graph.remove_edge(u, v)
                if use_hooks:
                    solution.delete_edge(u, v, graph.sorted_neighbors)
                report.deletes_applied += 1
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            report.violations.append(AuditViolation(
                "maintenance-error", "maintenance", (-1, -1),
                f"{type(exc).__name__}: {exc}",
            ))
            return
        if not use_hooks:
            solution.build(graph)
        # Inserted edges are the sharpest probe: a stale snapshot or a
        # broken insert path shows up here first.
        for u, v in insertions:
            if self._full(report):
                break
            if solution.is_nonedge(u, v):
                report.violations.append(AuditViolation(
                    "false-nonedge", "maintenance", (u, v),
                    "freshly inserted edge still certified as an NEpair",
                ))
        for u, v in deletions:
            if not graph.has_edge(u, v) and solution.is_nonedge(u, v):
                report.deleted_pairs_detected += 1
        self._check_phase(solution, graph, "maintenance", report)

    def _full(self, report: AuditReport) -> bool:
        return len(report.violations) >= self.max_violations


@dataclass
class ParallelAuditReport:
    """Outcome of one sharded-engine differential audit."""

    solution: str
    shards: int
    workers: int
    seed: int
    pairs_checked: int = 0
    false_noedges: int = 0
    verdict_mismatches: int = 0
    stats_mismatches: list[str] = field(default_factory=list)
    attribution_mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.false_noedges and not self.verdict_mismatches
                and not self.stats_mismatches
                and not self.attribution_mismatches)

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"FAIL (false_noedges={self.false_noedges} "
            f"mismatches={self.verdict_mismatches} "
            f"stats={self.stats_mismatches} "
            f"attribution={self.attribution_mismatches})"
        )
        return (
            f"{self.solution:<10} shards={self.shards} workers={self.workers} "
            f"seed={self.seed} pairs={self.pairs_checked} {status}"
        )


_PARITY_FIELDS = ("total", "filtered", "executed", "cache_served",
                  "disk_served", "positives")


def _load_mixed_log(open_store, graph: Graph, compress: bool,
                    use_mmap: bool):
    """Load ``graph`` so the log mixes record formats when compressing.

    The first half of the vertices is written through a plain v2
    (raw-record) store; the store is then closed and reopened with the
    audit's target configuration for the second half.  With
    ``compress`` on, the resulting log replays raw v2 records and
    StreamVByte v3 records side by side — the mixed-format regime the
    compressed read tier must serve bit-for-bit.
    """
    verts = sorted(graph.vertices())
    half = len(verts) // 2
    store = open_store(False, False)
    for v in verts[:half]:
        store.put_neighbors(v, graph.sorted_neighbors(v))
    store.close()
    store = open_store(compress, use_mmap)
    for v in verts[half:]:
        store.put_neighbors(v, graph.sorted_neighbors(v))
    return store


def audit_parallel_engine(graph: Graph, solution: VendSolution,
                          shards: int = 4, workers: int = 4,
                          seed: int = 0, pairs: int = 2000,
                          updates: int = 25, compress: bool = False,
                          use_mmap: bool = False, executor: str = "thread",
                          workdir=None) -> ParallelAuditReport:
    """Differential audit of the shard-parallel engine vs the serial one.

    Runs the same seeded workload through a serial
    :class:`~repro.apps.EdgeQueryEngine` over a single-file store and a
    :class:`~repro.apps.ParallelEdgeQueryEngine` over a hash-partitioned
    store, both loaded from the same ground-truth graph, and checks:

    - **soundness** — zero false no-edge verdicts from the sharded
      engine against ground truth (Definition 4 survives threading);
    - **verdict equivalence** — bitwise-identical answer arrays,
      including after a seeded insert+delete maintenance phase;
    - **stats parity** — the parallel engine's aggregate counters match
      the serial engine's exactly (per-shard dedup == global dedup);
    - **attribution** — per-shard ``cache_served + disk_served`` series
      sum exactly to the engine totals despite thread fan-out.

    ``compress``/``use_mmap``/``executor`` sweep the PR 6 storage tier:
    any of them switches both sides to disk-backed stores (under
    ``workdir``, or a temporary directory) whose logs are loaded in two
    halves — raw v2 records first, then the target format — so a
    compressed audit always replays a mixed v2→v3 log.
    ``executor="process"`` additionally runs the parallel side on the
    spawn-based process pool with shared-memory code publication.
    """
    import contextlib
    import tempfile
    from pathlib import Path

    import numpy as np

    from ..apps.edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine
    from ..storage import GraphStore, ShardedGraphStore

    stack = contextlib.ExitStack()
    needs_disk = compress or use_mmap or executor == "process"
    if needs_disk:
        if workdir is None:
            workdir = stack.enter_context(tempfile.TemporaryDirectory())
        base = Path(workdir)
        serial_store = _load_mixed_log(
            lambda c, m: GraphStore(base / "serial.log", compress=c,
                                    use_mmap=m),
            graph, compress, use_mmap)
        sharded_store = _load_mixed_log(
            lambda c, m: ShardedGraphStore(base / "sharded.log",
                                           num_shards=shards, compress=c,
                                           use_mmap=m),
            graph, compress, use_mmap)
    else:
        serial_store = GraphStore()
        serial_store.bulk_load(graph)
        sharded_store = ShardedGraphStore(num_shards=shards)
        sharded_store.bulk_load(graph)
    serial = EdgeQueryEngine(serial_store, solution)
    parallel = ParallelEdgeQueryEngine(sharded_store, solution,
                                       workers=workers, executor=executor)
    report = ParallelAuditReport(
        solution=getattr(solution, "name", "?"), shards=shards,
        workers=workers, seed=seed,
    )

    def run_phase(phase_graph: Graph, offset: int) -> None:
        workload = random_pairs(phase_graph, pairs, seed=seed + offset)
        workload += common_neighbor_pairs(phase_graph, pairs,
                                          seed=seed + offset + 1)
        workload += sorted(phase_graph.edges())
        us = np.asarray([u for u, _ in workload], dtype=np.int64)
        vs = np.asarray([v for _, v in workload], dtype=np.int64)
        expected = serial.has_edge_batch(us, vs)
        got = parallel.has_edge_batch(us, vs)
        report.pairs_checked += len(workload)
        report.verdict_mismatches += int((expected != got).sum())
        truth = np.fromiter(
            (phase_graph.has_edge(int(u), int(v)) for u, v in workload),
            dtype=bool, count=len(workload),
        )
        report.false_noedges += int((truth & ~got).sum())

    run_phase(graph, 0)

    # Maintenance: mutate both stores in step with the graph copy,
    # rebuild the (shared) filter, and re-check equivalence.
    mutated = Graph(sorted(graph.edges()))
    for u, v in sample_insertions(mutated, updates, seed=seed + 7):
        mutated.add_edge(u, v)
        serial_store.insert_edge(u, v)
        sharded_store.insert_edge(u, v)
    for u, v in sample_deletions(mutated, updates, seed=seed + 8):
        if mutated.has_edge(u, v):
            mutated.remove_edge(u, v)
            serial_store.delete_edge(u, v)
            sharded_store.delete_edge(u, v)
    solution.build(mutated)
    run_phase(mutated, 1000)

    for name in _PARITY_FIELDS:
        serial_value = getattr(serial.stats, name)
        parallel_value = getattr(parallel.stats, name)
        if serial_value != parallel_value:
            report.stats_mismatches.append(
                f"{name}: serial={serial_value} parallel={parallel_value}")
        shard_sum = sum(getattr(s, name) for s in parallel.shard_stats)
        if shard_sum != parallel_value:
            report.attribution_mismatches.append(
                f"{name}: shard_sum={shard_sum} engine={parallel_value}")
    parallel.close()
    serial_store.close()
    sharded_store.close()
    stack.close()
    return report


@dataclass
class ChaosAuditReport:
    """Outcome of the kill-a-shard + online-reshard chaos sweep."""

    solution: str
    shards: int
    replicas: int
    seed: int
    pairs_checked: int = 0
    false_noedges: int = 0
    verdict_mismatches: int = 0
    failovers: int = 0
    repairs: int = 0
    reshard_to: int = 0
    reshard_rounds: int = 0
    degraded_after_heal: bool = False
    store_divergence: int = 0
    soundness_violations: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.false_noedges and not self.verdict_mismatches
                and not self.degraded_after_heal and not self.store_divergence
                and not self.soundness_violations and not self.errors
                and self.failovers > 0)

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"FAIL (false_noedges={self.false_noedges} "
            f"mismatches={self.verdict_mismatches} "
            f"failovers={self.failovers} "
            f"degraded_after_heal={self.degraded_after_heal} "
            f"divergence={self.store_divergence} "
            f"soundness={self.soundness_violations} "
            f"errors={self.errors})"
        )
        return (
            f"{self.solution:<10} chaos shards={self.shards}"
            f"->{self.reshard_to} replicas={self.replicas} seed={self.seed} "
            f"pairs={self.pairs_checked} failovers={self.failovers} "
            f"repairs={self.repairs} {status}"
        )


def audit_chaos(graph: Graph, solution: VendSolution, shards: int = 4,
                replicas: int = 1, workers: int = 4, seed: int = 0,
                pairs: int = 1000, updates: int = 20,
                reshard_to: int | None = None) -> ChaosAuditReport:
    """Kill a shard mid-workload, heal it, then reshard online — and
    require correct answers throughout.

    The sweep drives a serial reference engine and a replicated sharded
    :class:`~repro.apps.ParallelEdgeQueryEngine` through four phases,
    checking after every batch that the sharded verdicts match the
    serial ones bitwise and never contradict ground truth:

    1. **baseline** — a clean seeded workload;
    2. **kill** — shard 0's primary starts failing every read (its
       :class:`~repro.storage.faults.FaultInjectingKVStore` is turned
       up to ``read_error_rate=1.0``); reads must fail over to a
       replica with zero wrong answers, and ``failovers`` must move;
    3. **heal** — fault rates drop to zero and
       ``store.reset_degraded()`` repairs + reinstates; the store must
       come back non-degraded;
    4. **online reshard** — ``begin_reshard(reshard_to)`` (default
       ``max(1, shards // 2)``), with migration chunks interleaved
       against live query batches *and* seeded insert/delete traffic,
       then the generation flip.  The post-migration store is read back
       whole and compared record-for-record against the mutated ground
       truth, and a :class:`SoundnessAuditor` pass on the final graph
       gates the result.

    The primary injectors are seeded from ``seed`` (CI rotates
    ``REPRO_FAULT_SEED`` into it), so every run is reproducible.
    """
    import numpy as np

    from ..apps.edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine
    from ..storage import (
        FaultConfig,
        FaultInjectingKVStore,
        GraphStore,
        ShardedGraphStore,
    )
    from ..storage.kvstore import InMemoryKVStore

    if reshard_to is None:
        reshard_to = max(1, shards // 2)
    report = ChaosAuditReport(
        solution=getattr(solution, "name", "?"), shards=shards,
        replicas=max(1, replicas), seed=seed, reshard_to=reshard_to,
    )

    # Wrap every *primary* in a seeded fault injector; replicas stay
    # clean.  ``_build_segment`` calls the factory primary-first for
    # each shard (and again for each new generation), so a global call
    # counter modulo the copy count identifies the primary.
    copies_per_shard = report.replicas + 1
    primary_injectors: list[FaultInjectingKVStore] = []
    calls = [0]

    def kv_factory(seg_path, shard):
        is_primary = calls[0] % copies_per_shard == 0
        calls[0] += 1
        inner = InMemoryKVStore()
        if not is_primary:
            return inner
        injector = FaultInjectingKVStore(
            inner, FaultConfig(seed=seed + len(primary_injectors)))
        primary_injectors.append(injector)
        return injector

    serial_store = GraphStore()
    serial_store.bulk_load(graph)
    sharded_store = ShardedGraphStore(num_shards=shards,
                                      kv_factory=kv_factory,
                                      replicas=report.replicas)
    sharded_store.bulk_load(graph)
    serial = EdgeQueryEngine(serial_store, solution)
    parallel = ParallelEdgeQueryEngine(sharded_store, solution,
                                       workers=workers)
    mutated = Graph(sorted(graph.edges()))

    def run_phase(offset: int, phase: str, count: int = pairs) -> None:
        workload = random_pairs(mutated, count, seed=seed + offset)
        workload += common_neighbor_pairs(mutated, count,
                                          seed=seed + offset + 1)
        workload += sorted(mutated.edges())
        us = np.asarray([u for u, _ in workload], dtype=np.int64)
        vs = np.asarray([v for _, v in workload], dtype=np.int64)
        try:
            expected = serial.has_edge_batch(us, vs)
            got = parallel.has_edge_batch(us, vs)
        except Exception as exc:  # noqa: BLE001 - a crash is a finding
            report.errors.append(f"[{phase}] {type(exc).__name__}: {exc}")
            return
        report.pairs_checked += len(workload)
        report.verdict_mismatches += int((expected != got).sum())
        truth = np.fromiter(
            (mutated.has_edge(int(u), int(v)) for u, v in workload),
            dtype=bool, count=len(workload),
        )
        report.false_noedges += int((truth & ~got).sum())

    def mutate(offset: int, count: int) -> None:
        for u, v in sample_insertions(mutated, count, seed=seed + offset):
            mutated.add_edge(u, v)
            serial_store.insert_edge(u, v)
            sharded_store.insert_edge(u, v)
        for u, v in sample_deletions(mutated, count, seed=seed + offset + 1):
            if mutated.has_edge(u, v):
                mutated.remove_edge(u, v)
                serial_store.delete_edge(u, v)
                sharded_store.delete_edge(u, v)
        solution.build(mutated)

    def failover_count() -> int:
        return sum(seg.replication_stats.failovers
                   for seg in sharded_store.segments
                   if getattr(seg, "is_replicated", False))

    # Phase 1: baseline.
    run_phase(0, "baseline")

    # Phase 2: kill shard 0's primary mid-workload.
    primary_injectors[0].config.read_error_rate = 1.0
    run_phase(100, "kill")
    if failover_count() == 0:
        report.errors.append(
            "[kill] no failover recorded with the primary dead")

    # Phase 3: heal and repair.
    primary_injectors[0].config.read_error_rate = 0.0
    sharded_store.reset_degraded()
    report.repairs = sum(seg.replication_stats.repairs
                         for seg in sharded_store.segments
                         if getattr(seg, "is_replicated", False))
    if sharded_store.degraded:
        report.degraded_after_heal = True
    run_phase(200, "healed")
    # Book failovers now: the reshard flip retires the generation whose
    # replica sets absorbed the kill.
    report.failovers = failover_count()

    # Phase 4: online reshard under concurrent reads and writes.
    chunk = max(16, sharded_store.num_vertices // 8)
    sharded_store.begin_reshard(reshard_to)
    while True:
        moved = sharded_store.migrate_step(chunk)
        mutate(300 + 10 * report.reshard_rounds, max(1, updates // 4))
        run_phase(400 + 10 * report.reshard_rounds, "resharding",
                  count=max(1, pairs // 4))
        report.reshard_rounds += 1
        if moved == 0 or report.reshard_rounds >= 8:
            break
    sharded_store.finish_reshard()
    if sharded_store.num_shards != reshard_to:
        report.errors.append(
            f"[reshard] flip landed on {sharded_store.num_shards} shards, "
            f"wanted {reshard_to}")
    run_phase(900, "post-reshard")

    # Post-migration: the flipped store must hold exactly the mutated
    # ground truth, record for record.
    stored = {}
    for v in sharded_store.vertices():
        stored[v] = list(sharded_store.get_neighbors(v))
    expected_adj = {v: mutated.sorted_neighbors(v)
                    for v in mutated.vertices()}
    for v, neighbors in expected_adj.items():
        if stored.get(v) != neighbors:
            report.store_divergence += 1
    report.store_divergence += sum(1 for v in stored
                                   if v not in expected_adj)

    # Gate on the soundness auditor against the final graph.
    auditor = SoundnessAuditor(mutated, seed=seed, pairs=pairs,
                               updates=updates)
    sound = auditor.audit(solution)
    report.soundness_violations = len(sound.violations)

    parallel.close()
    serial_store.close()
    sharded_store.close()
    return report


@dataclass
class StreamAuditReport:
    """Outcome of one hot-cache-on-vs-off streaming differential audit."""

    solution: str
    stream: str
    shards: int
    seed: int
    ops: int = 0
    probes_checked: int = 0
    inserts: int = 0
    deletes: int = 0
    false_noedges: int = 0
    verdict_mismatches: int = 0
    stats_mismatches: list[str] = field(default_factory=list)
    hot_hits: int = 0
    hot_invalidations: int = 0

    @property
    def ok(self) -> bool:
        return (not self.false_noedges and not self.verdict_mismatches
                and not self.stats_mismatches)

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"FAIL (false_noedges={self.false_noedges} "
            f"mismatches={self.verdict_mismatches} "
            f"stats={self.stats_mismatches})"
        )
        return (
            f"{self.solution:<10} stream={self.stream} shards={self.shards} "
            f"seed={self.seed} probes={self.probes_checked} "
            f"writes={self.inserts}+{self.deletes} "
            f"hot_hits={self.hot_hits} "
            f"hot_invalidations={self.hot_invalidations} {status}"
        )


_STORAGE_PARITY_FIELDS = ("disk_reads", "bytes_read", "disk_writes",
                          "bytes_written")


def audit_stream(graph: Graph, solution: VendSolution,
                 stream_kind: str = "churn", shards: int = 4,
                 workers: int = 4, seed: int = 0, ops: int = 6000,
                 hot_cache_bytes: int = 1 << 20, compress: bool = True,
                 use_mmap: bool = True,
                 executor: str = "thread") -> StreamAuditReport:
    """Churn-storm differential audit: hot cache on vs off, bit for bit.

    Replays one seeded :func:`~repro.workloads.streams.make_stream`
    workload through two identically configured shard-parallel engines
    — the only difference being ``hot_cache_bytes`` — applying every
    write to both stores and to a shadow ground-truth graph.  After
    every probe run it checks:

    - **verdict equivalence** — the hot engine answers bitwise
      identically to the cold one (the stats-transparency contract
      survives write storms, i.e. invalidation actually works);
    - **soundness** — neither engine produces a false no-edge verdict
      against the shadow graph;
    - **stats parity** — at end of stream, query counters *and*
      logical storage counters (``disk_reads``/``bytes_read``/…) agree
      exactly between the two configurations.

    The filter is shared and rebuilt from the shadow graph after each
    write storm, so probe verdicts isolate the storage tier — a stale
    hot-cache entry has nowhere to hide behind filter noise.
    """
    import contextlib
    import tempfile
    from pathlib import Path

    import numpy as np

    from ..apps.edge_query import ParallelEdgeQueryEngine
    from ..storage import ShardedGraphStore
    from ..workloads.streams import OP_INSERT, OP_PROBE, make_stream

    stream = make_stream(stream_kind, graph, ops, seed=seed)
    report = StreamAuditReport(
        solution=getattr(solution, "name", "?"), stream=stream.name,
        shards=shards, seed=seed, ops=len(stream),
    )
    shadow = Graph(sorted(graph.edges()))
    solution.build(shadow)
    with contextlib.ExitStack() as stack:
        base = Path(stack.enter_context(tempfile.TemporaryDirectory()))
        stores = []
        engines = []
        for tag, hot in (("cold", 0), ("hot", hot_cache_bytes)):
            store = ShardedGraphStore(base / f"{tag}.log", num_shards=shards,
                                      compress=compress, use_mmap=use_mmap,
                                      hot_cache_bytes=hot)
            store.bulk_load(graph)
            stores.append(store)
            engines.append(ParallelEdgeQueryEngine(store, solution,
                                                   workers=workers,
                                                   executor=executor))
        cold_store, hot_store = stores
        cold, hot = engines
        filter_stale = False
        for kind, start, end in stream.segments():
            if kind == OP_PROBE:
                if filter_stale:
                    solution.build(shadow)
                    filter_stale = False
                us = stream.us[start:end]
                vs = stream.vs[start:end]
                expected = cold.has_edge_batch(us, vs)
                got = hot.has_edge_batch(us, vs)
                report.probes_checked += end - start
                report.verdict_mismatches += int((expected != got).sum())
                truth = np.fromiter(
                    (shadow.has_edge(int(u), int(v))
                     for u, v in zip(us, vs)),
                    dtype=bool, count=end - start,
                )
                report.false_noedges += int((truth & ~got).sum())
                report.false_noedges += int((truth & ~expected).sum())
                continue
            for i in range(start, end):
                u, v = int(stream.us[i]), int(stream.vs[i])
                if kind == OP_INSERT:
                    shadow.add_edge(u, v)
                    cold_store.insert_edge(u, v)
                    hot_store.insert_edge(u, v)
                    report.inserts += 1
                else:
                    shadow.remove_edge(u, v)
                    cold_store.delete_edge(u, v)
                    hot_store.delete_edge(u, v)
                    report.deletes += 1
            filter_stale = True
        for name in _PARITY_FIELDS:
            cold_value = getattr(cold.stats, name)
            hot_value = getattr(hot.stats, name)
            if cold_value != hot_value:
                report.stats_mismatches.append(
                    f"query.{name}: cold={cold_value} hot={hot_value}")
        for name in _STORAGE_PARITY_FIELDS:
            cold_value = getattr(cold_store.stats, name)
            hot_value = getattr(hot_store.stats, name)
            if cold_value != hot_value:
                report.stats_mismatches.append(
                    f"storage.{name}: cold={cold_value} hot={hot_value}")
        for cache in hot_store.hot_caches():
            report.hot_hits += cache.stats.hits
            report.hot_invalidations += cache.stats.invalidations
        for engine in engines:
            engine.close()
        for store in stores:
            store.close()
    return report
