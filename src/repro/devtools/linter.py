"""VEND-specific static analysis — the ``repro lint`` pass.

Generic linters cannot see VEND's invariants: the one-sided soundness
contract (``F(f(u), f(v)) = 1`` only for true NEpairs) survives only if
every solution ships a complete interface, every mutation drops the
cached batch snapshot, and the uint32 lane model of ``repro.simd`` is
never silently promoted to int64/float64.  This module is an AST pass
that enforces exactly those repo-specific hazards:

==== =====================  =====================================================
ID   name                   what it catches
==== =====================  =====================================================
R001 dtype-safety           untyped ``np.array``/``np.asarray`` and int64/uint32
                            arithmetic mixing in ``core/``, ``simd/``, ``storage/``
                            hot paths (implicit upcasts break the 32-bit lanes)
R002 solution-completeness  a ``@register_solution`` class missing the scalar
                            NDF, ``build``, ``memory_bytes``, the batch path, or
                            a maintenance declaration (hooks or an explicit
                            ``supports_maintenance`` attribute)
R003 cache-invalidation     a mutating method (``build``/``insert_*``/
                            ``delete_*``) on a VEND solution that never calls
                            ``self._invalidate_batch()`` — stale snapshots make
                            ``is_nonedge_batch`` unsound after maintenance
R004 seeded-randomness      unseeded ``np.random.*`` / ``random.*`` usage, which
                            breaks benchmark and fault-injection reproducibility
R005 unsafe-exception       bare ``except:``, swallowed ``CorruptRecordError``,
                            and ``except Exception: pass``
R006 counter-registry       direct mutation of a stats-holder field
                            (``self.stats.x += 1``) outside ``repro.obs``;
                            counters must go through the registry views
                            (``self.stats.inc("x")``) so exports and scoped
                            attribution stay correct
==== =====================  =====================================================

Intentional violations are waived inline with a pragma on the flagged
line (the statement's *first* line for multi-line statements)::

    blob = np.asarray(raw)  # lint: disable=R001 (dtype decided by caller)

The parenthesized reason is required by the parser: a pragma without
one is itself flagged as ``R000-style``, and that finding cannot be
waived.

A second, opt-in ruleset (R007–R012, the concurrency contracts: lock
ordering, guarded state, raw acquires, mmap-view lifetimes, identity
tokens, blocking under locks) is implemented in
:mod:`repro.devtools.concurrency` and enabled with
``lint_paths(..., concurrency=True)`` / ``repro lint --concurrency``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Finding", "Linter", "lint_paths", "RULES", "CONCURRENCY_RULES"]

RULES = {
    "R001": "dtype-safety",
    "R002": "solution-completeness",
    "R003": "cache-invalidation",
    "R004": "seeded-randomness",
    "R005": "unsafe-exception",
    "R006": "counter-registry",
}

#: Opt-in concurrency-contract ruleset, implemented in
#: :mod:`repro.devtools.concurrency` (imported lazily to keep the
#: classic pass dependency-free).
CONCURRENCY_RULES = {
    "R007": "lock-order",
    "R008": "guarded-state",
    "R009": "raw-acquire",
    "R010": "mmap-lifetime",
    "R011": "identity-token",
    "R012": "blocking-under-lock",
}

#: Path components whose files count as dtype-sensitive hot paths (R001).
HOT_PARTS = ("core", "simd", "storage")

#: Methods that mutate codes/adjacency and must invalidate the snapshot.
MUTATORS = frozenset(
    {"build", "insert_edge", "delete_edge", "insert_vertex", "delete_vertex"}
)

#: The interface every registered solution must expose (R002).
REQUIRED_METHODS = ("build", "is_nonedge", "memory_bytes", "is_nonedge_batch")

#: ``self.<holder>.<field>`` attribute names treated as registry-backed
#: counter holders (R006).  Local result records (``stats.x = ...`` on a
#: plain variable) are deliberately not flagged.
STATS_HOLDERS = frozenset({
    "stats", "fault_stats", "query_stats", "storage_stats", "db_stats",
    "_stats",
})

_PRAGMA = re.compile(r"#\s*lint:\s*disable=([A-Z0-9,\s]+?)(?:\s*\(|$)")

#: A pragma counts as *reasoned* only with a non-empty parenthesized
#: explanation after the rule list (``# lint: disable=R001 (why)``).
_PRAGMA_REASON = re.compile(
    r"#\s*lint:\s*disable=[A-Z0-9,\s]+?\s*\(\s*[^)\s][^)]*\)"
)

#: Module-level ``random`` functions that mutate the unseeded global RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "sample", "shuffle", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "paretovariate",
    "vonmisesvariate", "weibullvariate", "seed",
})

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_LEGACY_NP_RANDOM_FNS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "exponential", "bytes",
    "beta", "gamma", "geometric", "zipf",
})

#: dtype groups for the R001 mixing check.
_SIGNED = frozenset({"int8", "int16", "int32", "int64", "intp", "int_"})
_UNSIGNED = frozenset({"uint8", "uint16", "uint32", "uint64", "uintp"})

_ARRAY_CTORS = frozenset({"array", "asarray"})
_DTYPED_CTORS = _ARRAY_CTORS | {
    "zeros", "ones", "full", "empty", "arange", "fromiter", "frombuffer",
    "zeros_like", "full_like", "empty_like",
}

_MIXING_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod,
               ast.LShift, ast.RShift, ast.BitOr, ast.BitAnd, ast.BitXor)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class _ClassInfo:
    """AST-level summary of one class definition (cross-file index entry)."""

    name: str
    path: str
    line: int
    col: int
    bases: tuple[str, ...]
    methods: frozenset[str]
    attrs: frozenset[str]
    registered: bool
    node: ast.ClassDef


@dataclass
class _FileContext:
    path: str
    tree: ast.Module
    pragmas: dict[int, set[str]]
    #: Lines (1-based numbers) carrying a pragma with no written reason.
    bare_pragmas: list[int] = field(default_factory=list)
    #: Raw source lines; the concurrency pass reads ``# guarded-by:``
    #: annotations straight from them.
    lines: list[str] = field(default_factory=list)
    module_aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, str] = field(default_factory=dict)
    hot: bool = False


def _last_name(node: ast.expr) -> str | None:
    """Trailing identifier of a Name/Attribute expression, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _parse_pragmas(source: str) -> tuple[dict[int, set[str]], list[int]]:
    """Pragma map plus the lines whose pragma lacks a written reason."""
    pragmas: dict[int, set[str]] = {}
    bare: list[int] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            pragmas[lineno] = rules
            if not _PRAGMA_REASON.search(line):
                bare.append(lineno)
    return pragmas, bare


class Linter:
    """Two-pass AST analyzer for the VEND rule catalog.

    Pass 1 indexes every class definition across the analyzed files so
    inheritance-aware rules (R002/R003) see methods provided by
    intermediate bases like ``_ModHashVend``.  Pass 2 runs the per-file
    rules.  The abstract ``VendSolution`` root is never charged with
    providing an implementation: each registered solution must earn its
    interface within its own (analyzed) class chain.
    """

    def __init__(self, rules: set[str] | None = None,
                 hot_parts: tuple[str, ...] = HOT_PARTS,
                 concurrency: bool = False):
        if rules is not None:
            self.rules = set(rules)
        else:
            self.rules = set(RULES)
            if concurrency:
                self.rules |= set(CONCURRENCY_RULES)
        self.hot_parts = hot_parts
        self._classes: dict[str, _ClassInfo] = {}

    # ------------------------------------------------------------ entry points

    def lint_paths(self, paths) -> list[Finding]:
        files = sorted(self._collect(paths))
        contexts: list[_FileContext] = []
        findings: list[Finding] = []
        self._classes = {}
        for path in files:
            source = Path(path).read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                findings.append(Finding(str(path), exc.lineno or 1, 0, "R000",
                                        f"syntax error: {exc.msg}"))
                continue
            pragmas, bare = _parse_pragmas(source)
            ctx = _FileContext(str(path), tree, pragmas, bare,
                               source.splitlines())
            ctx.hot = any(part in Path(path).parts for part in self.hot_parts)
            self._scan_imports(ctx)
            self._index_classes(ctx)
            contexts.append(ctx)
            for lineno in bare:
                findings.append(Finding(
                    str(path), lineno, 0, "R000-style",
                    "pragma without a reason; write "
                    "`# lint: disable=R0xx (why this is safe)`",
                ))
        for ctx in contexts:
            findings.extend(self._lint_file(ctx))
        conc_rules = self.rules & set(CONCURRENCY_RULES)
        if conc_rules:
            from .concurrency import ConcurrencyAnalyzer
            raw = ConcurrencyAnalyzer(contexts, rules=conc_rules).run()
            by_path = {ctx.path: ctx for ctx in contexts}
            findings.extend(
                f for f in raw
                if f.rule not in by_path[f.path].pragmas.get(f.line, ())
            )
        return sorted(findings)

    @staticmethod
    def _collect(paths) -> list[str]:
        files: list[str] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(
                    str(p) for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                )
            else:
                files.append(str(path))
        return files

    # ------------------------------------------------------------------ pass 1

    def _scan_imports(self, ctx: _FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    ctx.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    ctx.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _index_classes(self, ctx: _FileContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = set()
            attrs = set()
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            attrs.add(target.id)
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        attrs.add(stmt.target.id)
            bases = tuple(
                name for name in (_last_name(b) for b in node.bases) if name
            )
            registered = any(
                _last_name(d) == "register_solution" for d in node.decorator_list
            )
            info = _ClassInfo(node.name, ctx.path, node.lineno, node.col_offset,
                              bases, frozenset(methods), frozenset(attrs),
                              registered, node)
            # Last definition wins; class names are unique in this repo.
            self._classes[node.name] = info

    def _chain(self, name: str) -> list[_ClassInfo]:
        """``name`` plus analyzed ancestors, stopping at ``VendSolution``."""
        chain: list[_ClassInfo] = []
        queue = [name]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen or current == "VendSolution":
                continue
            seen.add(current)
            info = self._classes.get(current)
            if info is None:
                continue
            chain.append(info)
            queue.extend(info.bases)
        return chain

    def _descends_from_vend_solution(self, info: _ClassInfo) -> bool:
        queue = list(info.bases)
        seen: set[str] = set()
        while queue:
            base = queue.pop(0)
            if base == "VendSolution":
                return True
            if base in seen:
                continue
            seen.add(base)
            parent = self._classes.get(base)
            if parent is not None:
                queue.extend(parent.bases)
        return False

    # ------------------------------------------------------------------ pass 2

    def _lint_file(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        if "R001" in self.rules and ctx.hot:
            findings.extend(self._rule_dtype_safety(ctx))
        if "R002" in self.rules or "R003" in self.rules:
            findings.extend(self._rule_solutions(ctx))
        if "R004" in self.rules:
            findings.extend(self._rule_seeded_randomness(ctx))
        if "R005" in self.rules:
            findings.extend(self._rule_exceptions(ctx))
        if "R006" in self.rules and "obs" not in Path(ctx.path).parts:
            findings.extend(self._rule_counter_mutation(ctx))
        return [
            f for f in findings
            if f.rule not in ctx.pragmas.get(f.line, ())
        ]

    # -- R001 ------------------------------------------------------------------

    def _numpy_names(self, ctx: _FileContext) -> set[str]:
        return {alias for alias, module in ctx.module_aliases.items()
                if module == "numpy"}

    def _dtype_group(self, node: ast.expr | None) -> str | None:
        """Classify a ``dtype=`` argument expression: signed/unsigned/other."""
        name = None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value
        else:
            name = _last_name(node) if node is not None else None
        if name in _SIGNED or name == "int":
            return "signed"
        if name in _UNSIGNED:
            return "unsigned"
        return "other" if name else None

    def _rule_dtype_safety(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        numpy_names = self._numpy_names(ctx)

        def ctor_name(call: ast.Call) -> str | None:
            func = call.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in numpy_names):
                return func.attr
            return None

        # (a) untyped array constructors.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            ctor = ctor_name(node)
            if ctor in _ARRAY_CTORS:
                has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
                has_positional_dtype = len(node.args) >= 2
                if not has_dtype and not has_positional_dtype:
                    findings.append(Finding(
                        ctx.path, node.lineno, node.col_offset, "R001",
                        f"np.{ctor}(...) without an explicit dtype in a hot "
                        "path; implicit promotion breaks the uint32 lane model",
                    ))

        # (b) flow-insensitive int64/uint32 mixing inside each function.
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            env: dict[str, str] = {}
            conflicted: set[str] = set()
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                group = self._infer_group(node.value, ctor_name, numpy_names)
                if group is None:
                    conflicted.add(target.id)
                    env.pop(target.id, None)
                elif target.id in env and env[target.id] != group:
                    conflicted.add(target.id)
                    env.pop(target.id, None)
                elif target.id not in conflicted:
                    env[target.id] = group
            for node in ast.walk(func):
                if (isinstance(node, ast.BinOp)
                        and isinstance(node.op, _MIXING_OPS)):
                    lhs = env.get(node.left.id) if isinstance(node.left, ast.Name) else None
                    rhs = env.get(node.right.id) if isinstance(node.right, ast.Name) else None
                    if {lhs, rhs} == {"signed", "unsigned"}:
                        findings.append(Finding(
                            ctx.path, node.lineno, node.col_offset, "R001",
                            "arithmetic mixes signed and unsigned integer "
                            "arrays; NumPy promotes out of the 32-bit lane "
                            "model (cast one side explicitly)",
                        ))
        return findings

    def _infer_group(self, value: ast.expr, ctor_name, numpy_names) -> str | None:
        """Signed/unsigned classification of an assigned expression."""
        if isinstance(value, ast.Call):
            ctor = ctor_name(value)
            if ctor in _DTYPED_CTORS:
                for kw in value.keywords:
                    if kw.arg == "dtype":
                        return self._dtype_group(kw.value)
                if len(value.args) >= 2:
                    return self._dtype_group(value.args[1])
                return None
            # x = arr.astype(np.uint32)
            if (isinstance(value.func, ast.Attribute)
                    and value.func.attr == "astype" and value.args):
                return self._dtype_group(value.args[0])
            # x = np.uint32(...)
            if (isinstance(value.func, ast.Attribute)
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id in numpy_names):
                return self._dtype_group(value.func)
        return None

    # -- R002 / R003 -----------------------------------------------------------

    def _rule_solutions(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = self._classes.get(node.name)
            if info is None or info.path != ctx.path:
                continue
            is_solution = self._descends_from_vend_solution(info)
            if "R002" in self.rules and info.registered:
                findings.extend(self._check_completeness(ctx, info))
            if "R003" in self.rules and (is_solution or info.registered):
                findings.extend(self._check_invalidation(ctx, info))
        return findings

    def _check_completeness(self, ctx: _FileContext,
                            info: _ClassInfo) -> list[Finding]:
        chain = self._chain(info.name)
        methods: set[str] = set()
        attrs: set[str] = set()
        for entry in chain:
            methods |= entry.methods
            attrs |= entry.attrs
        findings = []
        labels = {
            "build": "a build() encoder",
            "is_nonedge": "the scalar NDF is_nonedge()",
            "memory_bytes": "memory_bytes()",
            "is_nonedge_batch": "a batch snapshot path (is_nonedge_batch())",
        }
        for method in REQUIRED_METHODS:
            if method not in methods:
                findings.append(Finding(
                    ctx.path, info.line, info.col, "R002",
                    f"registered solution {info.name!r} never defines "
                    f"{labels[method]} in its class chain",
                ))
        has_hooks = {"insert_edge", "delete_edge"} <= methods
        declares = "supports_maintenance" in attrs
        if not has_hooks and not declares:
            findings.append(Finding(
                ctx.path, info.line, info.col, "R002",
                f"registered solution {info.name!r} neither implements the "
                "insert_edge/delete_edge maintenance hooks nor declares "
                "`supports_maintenance` explicitly",
            ))
        return findings

    def _check_invalidation(self, ctx: _FileContext,
                            info: _ClassInfo) -> list[Finding]:
        findings = []
        for stmt in info.node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name not in MUTATORS:
                continue
            if any(_last_name(d) == "abstractmethod"
                   for d in stmt.decorator_list):
                continue
            if not self._invalidates(stmt):
                findings.append(Finding(
                    ctx.path, stmt.lineno, stmt.col_offset, "R003",
                    f"mutating method {stmt.name!r} never calls "
                    "self._invalidate_batch(); a stale batch snapshot makes "
                    "is_nonedge_batch() unsound after this mutation",
                ))
        return findings

    @staticmethod
    def _invalidates(func: ast.AST) -> bool:
        """True if the body invalidates directly or defers to code that does
        (``super().anything(...)`` or another mutating ``self`` method)."""
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if (isinstance(callee.value, ast.Name)
                    and callee.value.id == "self"
                    and callee.attr in MUTATORS | {"_invalidate_batch"}):
                return True
            if (isinstance(callee.value, ast.Call)
                    and isinstance(callee.value.func, ast.Name)
                    and callee.value.func.id == "super"):
                return True
        return False

    # -- R004 ------------------------------------------------------------------

    def _rule_seeded_randomness(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            full = self._resolve_call(ctx, node)
            if full is None:
                continue
            message = None
            if full == "numpy.random.default_rng" and not node.args \
                    and not node.keywords:
                message = ("np.random.default_rng() without a seed; pass an "
                           "explicit seed for reproducible runs")
            elif (full.startswith("numpy.random.")
                    and full.rsplit(".", 1)[1] in _LEGACY_NP_RANDOM_FNS):
                message = (f"{full}() uses the unseeded legacy global "
                           "RandomState; use np.random.default_rng(seed)")
            elif full == "random.Random" and not node.args and not node.keywords:
                message = ("random.Random() without a seed; pass an explicit "
                           "seed for reproducible runs")
            elif full == "random.SystemRandom":
                message = ("random.SystemRandom is unseedable and breaks "
                           "reproducibility")
            elif (full.startswith("random.")
                    and full.rsplit(".", 1)[1] in _GLOBAL_RANDOM_FNS):
                message = (f"{full}() uses the unseeded global RNG; construct "
                           "random.Random(seed) instead")
            if message:
                findings.append(Finding(ctx.path, node.lineno,
                                        node.col_offset, "R004", message))
        return findings

    def _resolve_call(self, ctx: _FileContext, node: ast.Call) -> str | None:
        """Canonical dotted target of a call, resolved through imports."""
        dotted = _dotted(node.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ctx.module_aliases:
            module = ctx.module_aliases[head]
            return f"{module}.{rest}" if rest else module
        if not rest and head in ctx.from_imports:
            return ctx.from_imports[head]
        return None

    # -- R005 ------------------------------------------------------------------

    def _rule_exceptions(self, ctx: _FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._caught_names(node.type)
            if node.type is None:
                findings.append(Finding(
                    ctx.path, node.lineno, node.col_offset, "R005",
                    "bare `except:` catches SystemExit/KeyboardInterrupt and "
                    "hides corruption; catch a concrete exception",
                ))
                continue
            body_raises = any(isinstance(n, ast.Raise) for n in ast.walk(node))
            if "CorruptRecordError" in caught and not body_raises:
                findings.append(Finding(
                    ctx.path, node.lineno, node.col_offset, "R005",
                    "handler swallows CorruptRecordError; checksum failures "
                    "must propagate (or be re-raised after cleanup)",
                ))
            elif caught & {"Exception", "BaseException"} \
                    and self._is_silent(node):
                findings.append(Finding(
                    ctx.path, node.lineno, node.col_offset, "R005",
                    f"`except {'/'.join(sorted(caught))}` with a pass-only "
                    "body silently swallows every error (including "
                    "CorruptRecordError)",
                ))
        return findings

    @staticmethod
    def _caught_names(type_node: ast.expr | None) -> set[str]:
        if type_node is None:
            return set()
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        names = set()
        for entry in nodes:
            name = _last_name(entry)
            if name:
                names.add(name)
        return names

    # -- R006 ------------------------------------------------------------------

    def _rule_counter_mutation(self, ctx: _FileContext) -> list[Finding]:
        """Counters must be mutated through the obs registry views.

        Flags ``self.<holder>.<field> += ...`` and direct assignment to
        the same shape, where ``<holder>`` is a known stats attribute.
        The registry views themselves (``repro/obs/``) are the one
        place allowed to touch series storage.
        """
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Assign):
                targets = node.targets
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == "self"
                        and target.value.attr in STATS_HOLDERS):
                    continue
                holder, fld = target.value.attr, target.attr
                findings.append(Finding(
                    ctx.path, node.lineno, node.col_offset, "R006",
                    f"counter `self.{holder}.{fld}` mutated directly; go "
                    f'through the registry view (`self.{holder}.inc('
                    f'"{fld}")`) so exports and per-scope attribution stay '
                    "correct",
                ))
        return findings

    @staticmethod
    def _is_silent(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring / ellipsis
            if isinstance(stmt, ast.Continue):
                continue
            return False
        return True


def lint_paths(paths, rules: set[str] | None = None,
               hot_parts: tuple[str, ...] = HOT_PARTS,
               concurrency: bool = False) -> list[Finding]:
    """Lint files/directories and return sorted findings.

    ``concurrency=True`` adds the R007–R012 concurrency-contract pass
    on top of the classic ruleset (ignored when ``rules`` is given
    explicitly — name the concurrency rules there instead).
    """
    return Linter(rules=rules, hot_parts=hot_parts,
                  concurrency=concurrency).lint_paths(paths)
