"""Graph substrate: data structures, generators, peeling, and I/O."""

from .csr import CSRGraph
from .generators import (
    banded_regular_graph,
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_graph,
    random_edge_sample,
    rmat_graph,
)
from .graph import DiGraph, Graph
from .io import read_edge_list, write_edge_list
from .kcore import PeelResult, core_numbers, peel
from .metrics import degree_percentile, is_power_law, powerlaw_exponent

__all__ = [
    "Graph",
    "CSRGraph",
    "DiGraph",
    "PeelResult",
    "peel",
    "core_numbers",
    "powerlaw_graph",
    "barabasi_albert_graph",
    "banded_regular_graph",
    "erdos_renyi_graph",
    "rmat_graph",
    "random_edge_sample",
    "read_edge_list",
    "powerlaw_exponent",
    "is_power_law",
    "degree_percentile",
    "write_edge_list",
]
