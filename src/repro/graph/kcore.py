"""Iterative peeling (Section IV-A) and k-core utilities.

The partial VEND solution removes, round by round, every vertex whose
*current* degree is below a threshold, recording for each removed vertex
the neighbors it still had at removal time.  The survivors form the core
subgraph ``C_G^k``; its maximal connected component is the classic
k-core (Seidman 1983), which :func:`core_numbers` computes independently
so tests can cross-check the peeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import Graph

__all__ = ["PeelResult", "peel", "core_numbers"]


@dataclass
class PeelResult:
    """Outcome of peeling ``graph`` at ``threshold``.

    Attributes
    ----------
    threshold:
        Vertices were removed while their degree was ``< threshold``.
    rounds:
        ``rounds[i]`` is the list of vertices removed in round ``i+1``.
    round_of:
        Map from peeled vertex to its 1-based removal round.
    residual_neighbors:
        For each peeled vertex, its neighbors (ascending) in the graph
        as it stood at the *start* of its removal round — exactly the
        set the paper stores in ``f^α(v)``.
    core_vertices:
        Vertices of the core subgraph ``C_G^threshold`` (never peeled).
    core_adjacency:
        Sorted adjacency lists of the core subgraph.
    """

    threshold: int
    rounds: list[list[int]] = field(default_factory=list)
    round_of: dict[int, int] = field(default_factory=dict)
    residual_neighbors: dict[int, list[int]] = field(default_factory=dict)
    core_vertices: set[int] = field(default_factory=set)
    core_adjacency: dict[int, list[int]] = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    def is_peeled(self, v: int) -> bool:
        return v in self.round_of

    def core_edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self.core_adjacency.values()) // 2


def peel(graph: Graph, threshold: int) -> PeelResult:
    """Peel ``graph``: repeatedly remove all vertices of degree < threshold.

    Runs in ``O(|V| + |E|)`` using degree counters — the input graph is
    not modified.  Round semantics follow the paper: all sub-threshold
    vertices of a round are flagged together, and each records its
    neighbors *before* any vertex of that round is removed (so two
    sub-threshold vertices adjacent to each other both record the edge).
    """
    if threshold < 1:
        raise ValueError("peel threshold must be >= 1")
    result = PeelResult(threshold=threshold)
    degree = {v: graph.degree(v) for v in graph.vertices()}
    alive = set(degree)
    pending = [v for v, d in degree.items() if d < threshold]
    round_no = 0
    while pending:
        round_no += 1
        batch = sorted(set(pending))
        # Record residual neighbors against the graph at round start.
        for v in batch:
            result.round_of[v] = round_no
            result.residual_neighbors[v] = sorted(
                u for u in graph.neighbors(v) if u in alive
            )
        result.rounds.append(batch)
        # Now remove the whole batch and find next round's victims.
        next_pending: list[int] = []
        batch_set = set(batch)
        alive -= batch_set
        for v in batch:
            for u in graph.neighbors(v):
                if u in alive:
                    degree[u] -= 1
                    if degree[u] == threshold - 1:
                        next_pending.append(u)
        pending = next_pending
    result.core_vertices = alive
    for v in alive:
        result.core_adjacency[v] = sorted(
            u for u in graph.neighbors(v) if u in alive
        )
    return result


def core_numbers(graph: Graph) -> dict[int, int]:
    """Classic k-core decomposition via min-degree peeling.

    Returns the core number of every vertex; used by tests to validate
    that :func:`peel` leaves exactly the vertices of core number
    ``>= threshold``.  Uses a lazy-deletion heap, ``O(E log V)``.
    """
    import heapq

    current = {v: graph.degree(v) for v in graph.vertices()}
    heap = [(d, v) for v, d in current.items()]
    heapq.heapify(heap)
    core: dict[int, int] = {}
    removed: set[int] = set()
    k = 0
    while heap:
        d, v = heapq.heappop(heap)
        if v in removed or d != current[v]:
            continue
        k = max(k, d)
        core[v] = k
        removed.add(v)
        for u in graph.neighbors(v):
            if u not in removed:
                current[u] -= 1
                heapq.heappush(heap, (current[u], u))
    return core
