"""Degree-distribution metrics.

Table I labels each dataset power-law or not; these helpers compute
that label from data instead of trusting the generator: a discrete
maximum-likelihood tail exponent (the Hill/Clauset estimator over
degrees above a cutoff) and a heavy-tail heuristic based on how far
the maximum degree sits above the mean.
"""

from __future__ import annotations

import math

from .graph import Graph

__all__ = ["powerlaw_exponent", "is_power_law", "degree_percentile"]


def powerlaw_exponent(graph: Graph, d_min: int = 2) -> float:
    """MLE exponent of ``P(d) ∝ d^-α`` over degrees ``>= d_min``.

    Uses the continuous approximation
    ``α = 1 + n / Σ ln(d_i / (d_min - 0.5))`` (Clauset et al. 2009);
    returns ``inf`` when no vertex reaches the cutoff.
    """
    if d_min < 1:
        raise ValueError("d_min must be >= 1")
    tail = [graph.degree(v) for v in graph.vertices()
            if graph.degree(v) >= d_min]
    if not tail:
        return math.inf
    log_sum = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if log_sum <= 0:
        return math.inf
    return 1.0 + len(tail) / log_sum


def degree_percentile(graph: Graph, fraction: float) -> int:
    """The degree below which ``fraction`` of the vertices fall."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    degrees = sorted(graph.degree(v) for v in graph.vertices())
    if not degrees:
        return 0
    index = min(len(degrees) - 1, int(fraction * len(degrees)))
    return degrees[index]


def is_power_law(graph: Graph) -> bool:
    """Heavy-tail heuristic matching Table I's power-law column.

    A graph counts as power-law when its maximum degree towers over
    the mean (hubs exist) *and* the median vertex sits well below the
    mean (mass at small degrees) — both false for near-regular graphs
    like Cage.
    """
    if graph.num_vertices < 10:
        return False
    mean = graph.average_degree()
    if mean == 0:
        return False
    max_degree = max(graph.degree(v) for v in graph.vertices())
    median = degree_percentile(graph, 0.5)
    return max_degree > 3 * mean and median < 0.75 * mean
