"""Core graph data structures.

The paper (Definition 1) assumes an undirected, unweighted simple graph:
no self loops and at most one edge per vertex pair.  Vertex IDs are
non-negative integers; the generators in :mod:`repro.graph.generators`
produce IDs in ``1..n`` because several VEND internals (the periodic
modular hash used by block selection) reason about the ID universe
``[1, max_vertex_id]``.

``Graph`` stores adjacency as sets for O(1) edge tests plus a lazily
maintained sorted-array view (``sorted_neighbors``) because every VEND
encoder consumes neighbor lists in ascending ID order.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

__all__ = ["Graph", "DiGraph"]


class Graph:
    """An undirected simple graph with sorted-neighbor views.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self loops are rejected,
        duplicate edges are ignored (simple-graph semantics).
    """

    def __init__(self, edges: Iterable[tuple[int, int]] | None = None):
        self._adj: dict[int, set[int]] = {}
        self._sorted: dict[int, list[int]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- basic accessors -------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of (undirected) edges currently in the graph."""
        return self._num_edges

    @property
    def max_vertex_id(self) -> int:
        """Largest vertex ID present, or 0 for an empty graph."""
        return max(self._adj, default=0)

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex IDs (insertion order)."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges once each, as ``(u, v)`` with ``u < v``."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def has_vertex(self, v: int) -> bool:
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    def neighbors(self, v: int) -> set[int]:
        """The neighbor set ``N_G(v)`` (a live set — do not mutate)."""
        return self._adj[v]

    def sorted_neighbors(self, v: int) -> list[int]:
        """Neighbors of ``v`` in ascending ID order (cached)."""
        cached = self._sorted.get(v)
        if cached is None:
            cached = sorted(self._adj[v])
            self._sorted[v] = cached
        return cached

    def average_degree(self) -> float:
        """Average degree ``2|E| / |V|`` (0 for the empty graph)."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    def degree_histogram(self) -> dict[int, int]:
        """Map from degree value to the number of vertices with it."""
        hist: dict[int, int] = {}
        for nbrs in self._adj.values():
            d = len(nbrs)
            hist[d] = hist.get(d, 0) + 1
        return hist

    # -- mutation ---------------------------------------------------------

    def add_vertex(self, v: int) -> None:
        """Ensure ``v`` exists (no-op if already present)."""
        if not isinstance(v, int) or v < 0:
            raise ValueError(f"vertex ID must be a non-negative int, got {v!r}")
        self._adj.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``(u, v)``; returns False if it already existed."""
        if u == v:
            raise ValueError(f"self loops are not allowed (vertex {u})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._insert_sorted(u, v)
        self._insert_sorted(v, u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge ``(u, v)``; returns False if it did not exist."""
        nbrs = self._adj.get(u)
        if nbrs is None or v not in nbrs:
            return False
        nbrs.discard(v)
        self._adj[v].discard(u)
        self._remove_sorted(u, v)
        self._remove_sorted(v, u)
        self._num_edges -= 1
        return True

    def remove_vertex(self, v: int) -> bool:
        """Delete ``v`` and all incident edges; False if absent."""
        nbrs = self._adj.pop(v, None)
        if nbrs is None:
            return False
        self._sorted.pop(v, None)
        for u in nbrs:
            self._adj[u].discard(v)
            self._remove_sorted(u, v)
        self._num_edges -= len(nbrs)
        return True

    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    # -- internal ----------------------------------------------------------

    def _insert_sorted(self, v: int, nbr: int) -> None:
        cached = self._sorted.get(v)
        if cached is not None:
            bisect.insort(cached, nbr)

    def _remove_sorted(self, v: int, nbr: int) -> None:
        cached = self._sorted.get(v)
        if cached is not None:
            idx = bisect.bisect_left(cached, nbr)
            if idx < len(cached) and cached[idx] == nbr:
                cached.pop(idx)

    def __contains__(self, v: int) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"


class DiGraph:
    """A directed simple graph, used by the directed-extension case study.

    The paper's Appendix E.3 extends VEND to directed graphs by treating
    the adjacency list of a vertex as the union of in- and out-neighbors
    for encoding, while queries carry direction.  ``DiGraph`` therefore
    exposes ``out_neighbors`` / ``in_neighbors`` plus an ``as_undirected``
    projection used to build codes.
    """

    def __init__(self, edges: Iterable[tuple[int, int]] | None = None):
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def max_vertex_id(self) -> int:
        return max(self._out, default=0)

    def vertices(self) -> Iterator[int]:
        return iter(self._out)

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def add_vertex(self, v: int) -> None:
        if not isinstance(v, int) or v < 0:
            raise ValueError(f"vertex ID must be a non-negative int, got {v!r}")
        self._out.setdefault(v, set())
        self._in.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> bool:
        if u == v:
            raise ValueError(f"self loops are not allowed (vertex {u})")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._out[u]:
            return False
        self._out[u].add(v)
        self._in[v].add(u)
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self._out.get(u)
        return nbrs is not None and v in nbrs

    def out_neighbors(self, v: int) -> set[int]:
        return self._out[v]

    def in_neighbors(self, v: int) -> set[int]:
        return self._in[v]

    def as_undirected(self) -> Graph:
        """Project to an undirected graph (union of in/out adjacency)."""
        g = Graph()
        for v in self._out:
            g.add_vertex(v)
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def __repr__(self) -> str:
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
