"""Edge-list text I/O.

Real VEND deployments ingest SNAP/LAW-style edge lists (one ``u v`` pair
per line, ``#`` comments).  These helpers read and write that format so
examples can round-trip graphs through files.
"""

from __future__ import annotations

from pathlib import Path

from .graph import DiGraph, Graph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(path: str | Path, directed: bool = False) -> Graph | DiGraph:
    """Parse an edge-list file into a graph.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; self loops are silently dropped (simple-graph semantics).
    """
    g: Graph | DiGraph = DiGraph() if directed else Graph()
    with open(path) as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u != v:
                g.add_edge(u, v)
    return g


def write_edge_list(graph: Graph | DiGraph, path: str | Path) -> int:
    """Write the graph as an edge list; returns the number of lines."""
    count = 0
    with open(path, "w") as handle:
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
            count += 1
    return count
