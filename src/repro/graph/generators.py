"""Synthetic graph generators.

The paper evaluates on five power-law web/social graphs plus one
non-power-law graph (Cage, where "most vertices are of degree larger
than 10").  These generators produce deterministic scaled-down graphs
with the same distribution *shape*:

- :func:`powerlaw_graph` — configuration-model graph with Zipf-like
  degrees, tunable average degree, mirroring As-Sk/Wiki/Uk/Gsh/Orkut.
- :func:`barabasi_albert_graph` — preferential attachment, an
  alternative power-law source used in tests.
- :func:`banded_regular_graph` — near-regular banded graph (every
  vertex connects to ~d neighbors with nearby IDs), mirroring Cage's
  non-power-law, locality-heavy structure.
- :func:`erdos_renyi_graph` — G(n, m) uniform random graph.

All generators take a ``seed`` and return a :class:`~repro.graph.Graph`
with vertex IDs ``1..n``.
"""

from __future__ import annotations

import random

import numpy as np

from .graph import Graph

__all__ = [
    "powerlaw_graph",
    "rmat_graph",
    "barabasi_albert_graph",
    "banded_regular_graph",
    "erdos_renyi_graph",
    "random_edge_sample",
]


def _zipf_degrees(n: int, avg_degree: float, exponent: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Draw a degree sequence with a Zipf tail and the target mean.

    The exponent is fitted (bisection — the mean of ``P(d) ∝
    d^-exponent`` over ``[1, n-1]`` decreases monotonically in the
    exponent) so the sequence keeps genuine degree-1 mass, like real
    power-law graphs, instead of rescaling degrees multiplicatively.
    ``exponent`` seeds the search as an upper bound hint.
    """
    support = np.arange(1, n, dtype=np.float64)

    def mean_for(e: float) -> float:
        weights = support ** (-e)
        weights /= weights.sum()
        return float((support * weights).sum())

    lo, hi = 1.01, max(exponent, 4.0)
    if mean_for(hi) >= avg_degree:
        fitted = hi
    elif mean_for(lo) <= avg_degree:
        fitted = lo
    else:
        for _ in range(40):
            mid = (lo + hi) / 2
            if mean_for(mid) > avg_degree:
                lo = mid
            else:
                hi = mid
        fitted = (lo + hi) / 2
    weights = support ** (-fitted)
    weights /= weights.sum()
    degrees = rng.choice(np.arange(1, n), size=n, p=weights)
    return np.minimum(degrees.astype(np.int64), n - 1)


def powerlaw_graph(n: int, avg_degree: float = 10.0, exponent: float = 2.1,
                   seed: int = 0) -> Graph:
    """Configuration-model power-law graph with ``n`` vertices.

    Multi-edges and self loops produced by the stub matching are
    dropped, which is the standard simple-graph projection; the realized
    average degree is therefore slightly below ``avg_degree``.
    """
    if n < 3:
        raise ValueError("powerlaw_graph needs n >= 3")
    rng = np.random.default_rng(seed)
    degrees = _zipf_degrees(n, avg_degree, exponent, rng)
    stubs = np.repeat(np.arange(1, n + 1), degrees)
    if len(stubs) % 2:
        stubs = stubs[:-1]
    rng.shuffle(stubs)
    half = len(stubs) // 2
    us, vs = stubs[:half], stubs[half:]
    g = Graph()
    for v in range(1, n + 1):
        g.add_vertex(v)
    mask = us != vs
    for u, v in zip(us[mask].tolist(), vs[mask].tolist()):
        g.add_edge(u, v)
    return g


def barabasi_albert_graph(n: int, m: int = 4, seed: int = 0) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``m`` existing vertices chosen
    proportionally to degree (via the repeated-endpoint trick).
    """
    if n <= m:
        raise ValueError("barabasi_albert_graph needs n > m")
    rng = random.Random(seed)
    g = Graph()
    targets = list(range(1, m + 1))
    for v in targets:
        g.add_vertex(v)
    repeated: list[int] = []
    for v in range(m + 1, n + 1):
        chosen = set()
        while len(chosen) < m:
            if repeated and rng.random() < 0.9:
                chosen.add(rng.choice(repeated))
            else:
                chosen.add(rng.choice(targets))
        for t in chosen:
            g.add_edge(v, t)
            repeated.append(t)
            repeated.append(v)
        targets.append(v)
    return g


def banded_regular_graph(n: int, degree: int = 16, bandwidth: int = 200,
                         seed: int = 0) -> Graph:
    """Near-regular graph with banded (local) structure, like Cage.

    Every vertex connects to roughly ``degree`` partners whose IDs fall
    within ``bandwidth`` of its own, so degrees concentrate around the
    target (non-power-law) and edges are ID-local.
    """
    if degree >= n:
        raise ValueError("banded_regular_graph needs degree < n")
    rng = random.Random(seed)
    g = Graph()
    for v in range(1, n + 1):
        g.add_vertex(v)
    half = max(1, degree // 2)
    for v in range(1, n + 1):
        attempts = 0
        added = 0
        while added < half and attempts < 8 * half:
            attempts += 1
            offset = rng.randint(1, bandwidth)
            u = v + offset
            if u > n:
                u = v - offset
            if u >= 1 and u != v and g.add_edge(v, u):
                added += 1
    return g


def rmat_graph(scale: int, num_edges: int,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               seed: int = 0) -> Graph:
    """R-MAT (recursive matrix) graph — the Graph500 workload family.

    ``2^scale`` vertices; each edge lands in the adjacency matrix by
    recursively choosing a quadrant with probabilities ``a, b, c, d``
    (``d = 1 - a - b - c``).  Skewed quadrants produce the power-law,
    community-clustered structure graph databases benchmark against.
    Self loops and duplicates are dropped (simple-graph projection).
    """
    if scale < 2:
        raise ValueError("rmat_graph needs scale >= 2")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must sum to <= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    # Vectorized: one (scale x num_edges) matrix of quadrant draws.
    draws = rng.random((scale, num_edges))
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        quadrant = draws[level]
        right = (quadrant >= a) & (quadrant < a + b)
        lower = (quadrant >= a + b) & (quadrant < a + b + c)
        diagonal = quadrant >= a + b + c
        bit = np.int64(1 << (scale - level - 1))
        cols += bit * (right | diagonal)
        rows += bit * (lower | diagonal)
    g = Graph()
    for v in range(1, n + 1):
        g.add_vertex(v)
    mask = rows != cols
    for u, v in zip((rows[mask] + 1).tolist(), (cols[mask] + 1).tolist()):
        g.add_edge(u, v)
    return g


def erdos_renyi_graph(n: int, num_edges: int, seed: int = 0) -> Graph:
    """Uniform random graph G(n, m) with exactly ``num_edges`` edges."""
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise ValueError(f"G({n}) holds at most {max_edges} edges")
    rng = random.Random(seed)
    g = Graph()
    for v in range(1, n + 1):
        g.add_vertex(v)
    added = 0
    while added < num_edges:
        u = rng.randint(1, n)
        v = rng.randint(1, n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def random_edge_sample(g: Graph, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """Sample ``count`` distinct existing edges uniformly at random."""
    edges = list(g.edges())
    rng = random.Random(seed)
    if count >= len(edges):
        return edges
    return rng.sample(edges, count)
