"""Immutable CSR (compressed sparse row) graph snapshot.

The paper's Appendix E.2 compares disk-resident VEND against Aspen, an
*in-memory* graph framework.  ``CSRGraph`` plays Aspen's role: the
whole adjacency structure packed into two numpy arrays, answering edge
queries by binary search with no disk involved.  It is the fair
"if the graph fits in RAM you don't need VEND" baseline — and the case
study measures how close disk + VEND gets to it.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """Read-only adjacency in CSR form.

    Vertex IDs are remapped to dense ``0..n-1`` internally; public
    methods accept the original IDs.
    """

    def __init__(self, graph: Graph):
        self._ids = np.array(sorted(graph.vertices()), dtype=np.int64)
        self._index = {int(v): i for i, v in enumerate(self._ids)}
        degrees = np.array(
            [graph.degree(int(v)) for v in self._ids], dtype=np.int64
        )
        self._offsets = np.zeros(len(self._ids) + 1, dtype=np.int64)
        np.cumsum(degrees, out=self._offsets[1:])
        self._targets = np.empty(int(self._offsets[-1]), dtype=np.int64)
        for i, v in enumerate(self._ids):
            start, end = self._offsets[i], self._offsets[i + 1]
            self._targets[start:end] = graph.sorted_neighbors(int(v))

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return len(self._targets) // 2

    def vertices(self) -> list[int]:
        return self._ids.tolist()

    def degree(self, v: int) -> int:
        i = self._index[v]
        return int(self._offsets[i + 1] - self._offsets[i])

    def neighbors(self, v: int) -> np.ndarray:
        """The sorted neighbor array of ``v`` (a read-only view)."""
        i = self._index[v]
        return self._targets[self._offsets[i]:self._offsets[i + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Binary-search edge query, fully in memory."""
        i = self._index.get(u)
        if i is None or v not in self._index:
            return False
        start, end = int(self._offsets[i]), int(self._offsets[i + 1])
        pos = int(np.searchsorted(self._targets[start:end], v))
        return pos < end - start and int(self._targets[start + pos]) == v

    def memory_bytes(self) -> int:
        """Bytes held by the CSR arrays (the in-memory cost VEND avoids)."""
        return (self._ids.nbytes + self._offsets.nbytes
                + self._targets.nbytes)

    def triangle_count(self) -> int:
        """In-memory triangle count via sorted-intersection (reference)."""
        count = 0
        for i, v in enumerate(self._ids):
            start, end = int(self._offsets[i]), int(self._offsets[i + 1])
            adjacency = self._targets[start:end]
            bigger = adjacency[adjacency > v]
            for j in bigger:
                count += int(np.intersect1d(
                    bigger[bigger > j], self.neighbors(int(j)),
                    assume_unique=True,
                ).size)
        return count

    def __repr__(self) -> str:
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
