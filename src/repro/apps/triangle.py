"""VEND-accelerated external-memory triangle counting — Section I-A2.

Two SOTA frameworks from the paper, both driven by the disk-resident
:class:`~repro.storage.GraphStore`:

- :func:`edge_iterator_count` — Algorithm 1: the edge-iterator method
  with adjacency lists on disk.  Before fetching ``adj(j)``, VEND tests
  ``j`` against every later neighbor of ``i``; if all are certified
  NEpairs the disk access is skipped entirely.
- :func:`trigon_count` — Algorithm 2: the Trigon-style partitioned
  counter.  Destinations are split into intervals fitting a memory
  budget; pass 1 writes per-partition adjacency and companion files of
  ``<i, j, K>`` triples (VEND discards triples whose ``K`` is fully
  certified), pass 2 loads each partition and intersects in memory.
  VEND's win is the shrunken companion file I/O.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.base import NonedgeFilter, nonedge_batch_mask
from ..obs import ReadReceipt
from ..storage import GraphStore

__all__ = ["TriangleStats", "edge_iterator_count", "trigon_count"]

_U32 = struct.Struct("<I")


@dataclass
class TriangleStats:
    """Outcome and cost profile of one triangle-counting run."""

    triangles: int = 0
    disk_reads: int = 0
    skipped_fetches: int = 0      # Algorithm 1: adj(j) loads avoided
    vend_tests: int = 0
    companion_triples: int = 0    # Algorithm 2: triples written
    filtered_triples: int = 0     # Algorithm 2: triples VEND discarded
    companion_bytes: int = 0
    elapsed_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


def edge_iterator_count(store: GraphStore,
                        vend: NonedgeFilter | None = None) -> TriangleStats:
    """Algorithm 1: edge-iterator counting over disk-resident adjacency.

    Batched execution: per source vertex ``i`` every candidate pair
    ``(j, k)`` — the upper triangle of ``i``'s larger neighbors — is
    tested in ONE vectorized NDF call; adjacency rows that survive are
    fetched with one multi-get and intersected via ``searchsorted``.
    The counters keep the scalar semantics (one skipped fetch per fully
    certified row, one NDF test per candidate pair).
    """
    stats = TriangleStats()
    start = time.perf_counter()
    receipt = ReadReceipt()
    for i in sorted(store.vertices()):
        adj_i = store.get_neighbors_array(i, receipt=receipt)
        bigger = adj_i[adj_i > i]
        m = len(bigger)
        if m < 2:
            continue
        rows, cols = np.triu_indices(m, k=1)
        row_counts = np.bincount(rows, minlength=m)
        if vend is not None:
            certain = nonedge_batch_mask(vend, bigger[rows], bigger[cols])
            stats.vend_tests += len(rows)
            certified = np.bincount(rows[certain], minlength=m)
            fully_certified = (row_counts > 0) & (certified == row_counts)
            stats.skipped_fetches += int(fully_certified.sum())
            active = (row_counts > 0) & ~fully_certified
        else:
            active = row_counts > 0
        active_rows = np.flatnonzero(active)
        if len(active_rows) == 0:
            continue
        adjacency = store.get_neighbors_many(
            [int(j) for j in bigger[active_rows]], receipt=receipt
        )
        for r in active_rows:
            adj_j = adjacency[int(bigger[r])]
            if len(adj_j) == 0:
                continue
            wanted = bigger[r + 1:]
            pos = np.minimum(adj_j.searchsorted(wanted), len(adj_j) - 1)
            stats.triangles += int(np.count_nonzero(adj_j[pos] == wanted))
    stats.disk_reads = receipt.disk_reads
    stats.elapsed_seconds = time.perf_counter() - start
    return stats


def _partition_bounds(store: GraphStore, num_partitions: int,
                      receipt: ReadReceipt | None = None) -> list[int]:
    """Destination-interval boundaries with balanced edge counts."""
    vertices = sorted(store.vertices())
    max_id = vertices[-1] if vertices else 0
    if num_partitions <= 1:
        return [0, max_id + 1]
    degrees = [(v, len(store.get_neighbors(v, receipt=receipt)))
               for v in vertices]
    total = sum(d for _, d in degrees)
    per_partition = max(1, total // num_partitions)
    bounds = [0]
    acc = 0
    for v, d in degrees:
        acc += d
        if acc >= per_partition and len(bounds) < num_partitions:
            bounds.append(v + 1)
            acc = 0
    bounds.append(max_id + 1)
    return bounds


def _write_record(handle, values: list[int]) -> int:
    blob = b"".join(_U32.pack(x) for x in values)
    handle.write(blob)
    return len(blob)


def trigon_count(store: GraphStore, workdir: str | Path,
                 memory_budget_edges: int = 10_000,
                 vend: NonedgeFilter | None = None) -> TriangleStats:
    """Algorithm 2: Trigon-style partitioned counting with real files.

    ``memory_budget_edges`` is the paper's ``M``: the maximum number of
    edges a partition may hold in memory at once.
    """
    if memory_budget_edges < 1:
        raise ValueError("memory budget must be >= 1 edge")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    stats = TriangleStats()
    start = time.perf_counter()
    receipt = ReadReceipt()

    total_degree = sum(len(store.get_neighbors(v, receipt=receipt))
                       for v in store.vertices())
    num_partitions = max(1, -(-total_degree // (2 * memory_budget_edges)))
    bounds = _partition_bounds(store, num_partitions, receipt=receipt)
    num_partitions = len(bounds) - 1
    stats.extra["partitions"] = num_partitions

    # ---- pass 1: write per-partition adjacency and companion files.
    part_files = [open(workdir / f"part_{p}.bin", "wb")
                  for p in range(num_partitions)]
    comp_files = [open(workdir / f"comp_{p}.bin", "wb")
                  for p in range(num_partitions)]
    try:
        for i in sorted(store.vertices()):
            adj_i = store.get_neighbors_array(i, receipt=receipt)
            # Partition i's adjacency by destination interval: sorted
            # input makes each interval one searchsorted slice.
            for p in range(num_partitions):
                lo, hi = bounds[p], bounds[p + 1]
                a, b = np.searchsorted(adj_i, [lo, hi])
                if b > a:
                    within = adj_i[a:b].tolist()
                    _write_record(part_files[p], [i, len(within), *within])
            # Companion triples <i, j, K> (Algorithm 2, lines 5-9).
            bigger = adj_i[adj_i > i]
            tasks: list[tuple[int, int, np.ndarray]] = []  # (p, j, block)
            for index in range(len(bigger) - 1):
                j = int(bigger[index])
                later = bigger[index + 1:]
                for p in range(num_partitions):
                    lo, hi = bounds[p], bounds[p + 1]
                    a, b = np.searchsorted(later, [lo, hi])
                    if b > a:
                        tasks.append((p, j, later[a:b]))
            if not tasks:
                continue
            if vend is not None:
                # One vectorized NDF pass over every block of vertex i.
                lengths = np.asarray([len(block) for _, _, block in tasks])
                js = np.repeat(
                    np.asarray([j for _, j, _ in tasks], dtype=np.int64),
                    lengths,
                )
                thirds = np.concatenate([block for _, _, block in tasks])
                certain = nonedge_batch_mask(vend, js, thirds)
                stats.vend_tests += len(js)
                starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
                block_certified = np.logical_and.reduceat(certain, starts)
            for t, (p, j, block) in enumerate(tasks):
                if vend is not None and block_certified[t]:
                    stats.filtered_triples += 1
                    continue
                stats.companion_triples += 1
                stats.companion_bytes += _write_record(
                    comp_files[p], [i, j, len(block), *block.tolist()]
                )
    finally:
        for handle in part_files + comp_files:
            handle.close()

    # ---- pass 2: load each partition, intersect companion triples.
    for p in range(num_partitions):
        adjacency: dict[int, set[int]] = {}
        raw = (workdir / f"part_{p}.bin").read_bytes()
        pos = 0
        while pos < len(raw):
            v = _U32.unpack_from(raw, pos)[0]
            n = _U32.unpack_from(raw, pos + 4)[0]
            members = struct.unpack_from(f"<{n}I", raw, pos + 8)
            adjacency[v] = set(members)
            pos += 8 + 4 * n
        raw = (workdir / f"comp_{p}.bin").read_bytes()
        pos = 0
        while pos < len(raw):
            _i = _U32.unpack_from(raw, pos)[0]
            j = _U32.unpack_from(raw, pos + 4)[0]
            n = _U32.unpack_from(raw, pos + 8)[0]
            block = struct.unpack_from(f"<{n}I", raw, pos + 12)
            pos += 12 + 4 * n
            neighbors_in_p = adjacency.get(j)
            if neighbors_in_p:
                stats.triangles += sum(1 for k in block if k in neighbors_in_p)

    stats.disk_reads = receipt.disk_reads
    stats.elapsed_seconds = time.perf_counter() - start
    return stats
