"""Edge-query engine over disk storage with optional VEND filtering.

This is Fig. 1's architecture: queries first consult the in-memory
NDF; only pairs the filter cannot certify as NEpairs reach the
disk-resident adjacency store.  The engine's statistics (filtered
count, executed count, disk reads) drive the Fig. 9 experiment.

Two execution paths share the same statistics:

- :meth:`EdgeQueryEngine.has_edge` / :meth:`EdgeQueryEngine.run` —
  the scalar path, one Python dispatch per pair;
- :meth:`EdgeQueryEngine.has_edge_batch` / :meth:`EdgeQueryEngine.run_batch`
  — the batched pipeline: one vectorized NDF pass over the whole pair
  array, survivors grouped by left endpoint, one deduplicated
  multi-get against storage, and membership answered by a single
  ``searchsorted`` sweep.  Prefer it whenever pairs arrive in bulk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.base import NonedgeFilter, endpoint_arrays, nonedge_batch_mask
from ..storage import GraphStore

__all__ = ["QueryStats", "EdgeQueryEngine"]


@dataclass
class QueryStats:
    """Aggregate outcome of a query batch."""

    total: int = 0
    filtered: int = 0      # answered "no edge" by the NDF alone
    executed: int = 0      # required a storage lookup
    positives: int = 0     # edges that actually existed
    cache_served: int = 0  # executed lookups absorbed by the block cache
    disk_served: int = 0   # executed lookups that paid a physical read
    degraded: bool = False  # storage reported IO faults during the batch
    elapsed_seconds: float = 0.0

    @property
    def filter_rate(self) -> float:
        return self.filtered / self.total if self.total else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, type(getattr(self, name))())


class EdgeQueryEngine:
    """Answers edge queries, short-circuiting through a VEND filter.

    Parameters
    ----------
    store:
        The disk-backed adjacency store (source of truth).
    nonedge_filter:
        Any :class:`~repro.core.base.NonedgeFilter` (VEND solution,
        columnar snapshot, or Bloom comparator), or None for the
        paper's Non-VEND baseline.
    """

    def __init__(self, store: GraphStore,
                 nonedge_filter: NonedgeFilter | None = None):
        self.store = store
        self.nonedge_filter = nonedge_filter
        self.stats = QueryStats()

    def has_edge(self, u: int, v: int) -> bool:
        """One edge query: NDF first, storage only when undetermined."""
        self.stats.total += 1
        if self.nonedge_filter is not None and self.nonedge_filter.is_nonedge(u, v):
            self.stats.filtered += 1
            return False
        self.stats.executed += 1
        storage = self.store.stats
        hits_before, reads_before = storage.cache_hits, storage.disk_reads
        exists = self.store.has_edge(u, v)
        self.stats.cache_served += storage.cache_hits - hits_before
        self.stats.disk_served += storage.disk_reads - reads_before
        if getattr(self.store, "degraded", False):
            self.stats.degraded = True
        if exists:
            self.stats.positives += 1
        return exists

    def has_edge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Answer a pair batch through the vectorized pipeline.

        Accepts aligned endpoint arrays or a sequence of ``(u, v)``
        tuples; returns a bool array of edge-existence answers and
        accumulates the same :class:`QueryStats` the scalar path does.
        Because surviving left endpoints are deduplicated before the
        multi-get, ``cache_served + disk_served`` may be smaller than
        ``executed`` — that gap is exactly the I/O batching saved.
        """
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        n = len(us)
        self.stats.total += n
        answers = np.zeros(n, dtype=bool)
        if n == 0:
            return answers
        if self.nonedge_filter is not None:
            certain = nonedge_batch_mask(self.nonedge_filter, us, vs)
            self.stats.filtered += int(certain.sum())
            survivors = ~certain
        else:
            survivors = np.ones(n, dtype=bool)
        count = int(survivors.sum())
        if count:
            self.stats.executed += count
            storage = self.store.stats
            hits_before, reads_before = storage.cache_hits, storage.disk_reads
            exists = self.store.has_edge_many(us[survivors], vs[survivors])
            self.stats.cache_served += storage.cache_hits - hits_before
            self.stats.disk_served += storage.disk_reads - reads_before
            if getattr(self.store, "degraded", False):
                self.stats.degraded = True
            self.stats.positives += int(exists.sum())
            answers[survivors] = exists
        return answers

    def run(self, pairs: list[tuple[int, int]]) -> QueryStats:
        """Answer a batch one pair at a time (scalar reference path)."""
        start = time.perf_counter()
        for u, v in pairs:
            self.has_edge(u, v)
        self.stats.elapsed_seconds += time.perf_counter() - start
        return self.stats

    def run_batch(self, pairs, pairs_v=None) -> QueryStats:
        """Answer a batch through the vectorized pipeline, timed."""
        start = time.perf_counter()
        self.has_edge_batch(pairs, pairs_v)
        self.stats.elapsed_seconds += time.perf_counter() - start
        return self.stats
