"""Edge-query engine over disk storage with optional VEND filtering.

This is Fig. 1's architecture: queries first consult the in-memory
NDF; only pairs the filter cannot certify as NEpairs reach the
disk-resident adjacency store.  The engine's statistics (filtered
count, executed count, disk reads) drive the Fig. 9 experiment.

Two execution paths share the same statistics:

- :meth:`EdgeQueryEngine.has_edge` / :meth:`EdgeQueryEngine.run` —
  the scalar path, one Python dispatch per pair;
- :meth:`EdgeQueryEngine.has_edge_batch` / :meth:`EdgeQueryEngine.run_batch`
  — the batched pipeline: one vectorized NDF pass over the whole pair
  array, survivors grouped by left endpoint, one deduplicated
  multi-get against storage, and membership answered by a single
  ``searchsorted`` sweep.  Prefer it whenever pairs arrive in bulk.

Attribution is receipt-scoped: every storage call made on behalf of a
query threads its own :class:`~repro.obs.ReadReceipt`, so an engine's
``cache_served``/``disk_served`` counters book exactly the I/O *its*
queries caused — never another engine's traffic or an index-maintenance
fetch that happened to touch the same shared store (the historical
diff-the-shared-globals pattern misattributed both).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext

import numpy as np

from ..core.base import NonedgeFilter, endpoint_arrays, nonedge_batch_mask
from ..core.batch import shard_slices, warm_batch_snapshot
from ..devtools.witness import wrap_lock
from ..obs import QueryStats, ReadReceipt, default_tracer
from ..storage import GraphStore, ShardedGraphStore
from ..storage.kvstore import DiskKVStore
from ..storage.shm import SharedObject, attach_shard_reader, attach_shared

__all__ = ["QueryStats", "EdgeQueryEngine", "ParallelEdgeQueryEngine"]


class EdgeQueryEngine:
    """Answers edge queries, short-circuiting through a VEND filter.

    Parameters
    ----------
    store:
        The disk-backed adjacency store (source of truth).
    nonedge_filter:
        Any :class:`~repro.core.base.NonedgeFilter` (VEND solution,
        columnar snapshot, or Bloom comparator), or None for the
        paper's Non-VEND baseline.
    """

    def __init__(self, store: GraphStore,
                 nonedge_filter: NonedgeFilter | None = None):
        self.store = store
        self.nonedge_filter = nonedge_filter
        self.stats = QueryStats(store=store)
        registry = self.stats.registry
        self._latency = registry.histogram(
            "repro_query_latency_seconds",
            "Wall-clock latency of engine query calls",
        )

    def _observe_latency(self, path: str, seconds: float) -> None:
        self._latency.labels(engine=self.stats.scope, path=path).observe(
            seconds)

    def has_edge(self, u: int, v: int) -> bool:
        """One edge query: NDF first, storage only when undetermined."""
        tracer = default_tracer()
        start = time.perf_counter()
        try:
            with tracer.span("query", engine=self.stats.scope):
                self.stats.inc("total")
                if self.nonedge_filter is not None:
                    with tracer.span("ndf_filter"):
                        certain = self.nonedge_filter.is_nonedge(u, v)
                    if certain:
                        self.stats.inc("filtered")
                        return False
                self.stats.inc("executed")
                receipt = ReadReceipt()
                exists = self.store.has_edge(u, v, receipt=receipt)
                self.stats.inc("cache_served", receipt.cache_hits)
                self.stats.inc("disk_served", receipt.disk_reads)
                if exists:
                    self.stats.inc("positives")
                return exists
        finally:
            self._observe_latency("scalar", time.perf_counter() - start)

    def has_edge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Answer a pair batch through the vectorized pipeline.

        Accepts aligned endpoint arrays or a sequence of ``(u, v)``
        tuples; returns a bool array of edge-existence answers and
        accumulates the same :class:`QueryStats` the scalar path does.
        Because surviving left endpoints are deduplicated before the
        multi-get, ``cache_served + disk_served`` may be smaller than
        ``executed`` — that gap is exactly the I/O batching saved.
        """
        tracer = default_tracer()
        start = time.perf_counter()
        try:
            return self._has_edge_batch(tracer, pairs_u, pairs_v)
        finally:
            self._observe_latency("batch", time.perf_counter() - start)

    def _has_edge_batch(self, tracer, pairs_u, pairs_v) -> np.ndarray:
        with tracer.span("query_batch", engine=self.stats.scope):
            us, vs = endpoint_arrays(pairs_u, pairs_v)
            n = len(us)
            self.stats.inc("total", n)
            answers = np.zeros(n, dtype=bool)
            if n == 0:
                return answers
            if self.nonedge_filter is not None:
                with tracer.span("ndf_filter"):
                    certain = nonedge_batch_mask(self.nonedge_filter, us, vs)
                self.stats.inc("filtered", int(certain.sum()))
                survivors = ~certain
            else:
                survivors = np.ones(n, dtype=bool)
            count = int(survivors.sum())
            if count:
                self.stats.inc("executed", count)
                receipt = ReadReceipt()
                # The blob-native probe (identical verdicts and booking,
                # packed multi-get + bulk blob decode) is the batched
                # hot path; stores without it keep the dict multi-get.
                probe = getattr(self.store, "probe_edges", None)
                if probe is None:
                    probe = self.store.has_edge_many
                exists = probe(us[survivors], vs[survivors],
                               receipt=receipt)
                self.stats.inc("cache_served", receipt.cache_hits)
                self.stats.inc("disk_served", receipt.disk_reads)
                self.stats.inc("positives", int(exists.sum()))
                answers[survivors] = exists
            return answers

    def run(self, pairs: list[tuple[int, int]]) -> QueryStats:
        """Answer a batch one pair at a time (scalar reference path)."""
        start = time.perf_counter()
        for u, v in pairs:
            self.has_edge(u, v)
        self.stats.inc("elapsed_seconds", time.perf_counter() - start)
        return self.stats

    def run_batch(self, pairs, pairs_v=None) -> QueryStats:
        """Answer a batch through the vectorized pipeline, timed."""
        start = time.perf_counter()
        self.has_edge_batch(pairs, pairs_v)
        self.stats.inc("elapsed_seconds", time.perf_counter() - start)
        return self.stats


def _process_query_slice(shard, us, vs, filter_meta, shard_meta):
    """One process-pool task: NDF + mmap membership probe for one shard.

    Runs in a worker process.  The NDF solution and the shard's packed
    read state arrive as shared-memory metas (see
    :mod:`repro.storage.shm`); both attachments are cached per worker
    and survive across tasks until the coordinator publishes a new
    generation.  The worker computes with zero shared mutable state —
    verdicts and logical read accounting travel back for the
    coordinator to book, exactly like the thread path's receipts.
    """
    filt = attach_shared(filter_meta) if filter_meta is not None else None
    reader = attach_shard_reader(shard_meta)
    with default_tracer().span("query_shard", shard=str(shard)):
        n = len(us)
        answers = np.zeros(n, dtype=bool)
        if filt is not None:
            certain = nonedge_batch_mask(filt, us, vs)
            survivors = ~certain
        else:
            survivors = np.ones(n, dtype=bool)
        executed = int(survivors.sum())
        n_records = n_bytes = 0
        if executed:
            unique_us, group = np.unique(us[survivors], return_inverse=True)
            verdicts, n_records, n_bytes = reader.probe(
                unique_us, group, vs[survivors])
            answers[survivors] = verdicts
        return answers, n - executed, executed, n_records, n_bytes


class ParallelEdgeQueryEngine(EdgeQueryEngine):
    """Shard-parallel batch execution over a :class:`ShardedGraphStore`.

    :meth:`run_batch` partitions the pair array by the shard owning
    each left endpoint, fans the per-shard work — vectorized NDF
    filtering plus the segment's deduplicated multi-get — out to a
    ``ThreadPoolExecutor``, and merges verdicts back in input order.
    The numpy kernels and file reads release the GIL, so shard tasks
    overlap where the machine allows it; on a single core the shard
    path still wins through the blob-native probe and bulk-booked
    stats.

    Correctness under threads rests on three rules, all enforced here:

    - **No shared mutable counters across threads.**  Pool tasks write
      only task-local state (a private :class:`ReadReceipt` and local
      arrays); every ``stats.inc`` happens on the coordinator thread
      after the join barrier, under ``_book_lock``.  ``CounterSeries``
      increments are read-modify-write and must never race.
    - **Snapshots are warmed before fan-out.**  Solutions rebuild their
      batch snapshot lazily after maintenance; the coordinator forces
      that rebuild on its own thread so pool threads only ever read a
      frozen snapshot.
    - **Verdicts are merged by original position.**  Each slice carries
      its input-order index array, so the answer array is bitwise
      identical to the serial pipeline's regardless of task completion
      order.

    Attribution stays exact: per-shard :class:`QueryStats` (labeled
    ``shard="<i>"`` under this engine's scope) are booked from the same
    task receipts as the aggregate, so the per-shard
    ``cache_served + disk_served`` totals sum to the engine totals by
    construction.

    ``executor="process"`` swaps the thread pool for a spawn-context
    ``ProcessPoolExecutor``: NDF filtering and the membership sweep are
    pure-Python-free numpy loops, but on batches dominated by filter
    evaluation the GIL still serializes thread workers — processes
    escape it.  The NDF solution and each shard's packed read state are
    published once through :mod:`repro.storage.shm` (protocol-5 pickles
    whose buffers live in one shared-memory block per object); workers
    attach read-only and serve probes off their own mmap of the shard
    log.  Republication is triggered by filter snapshot identity and by
    each segment's ``mutation_count``, and all stats booking stays on
    the coordinator, so per-shard sums and aggregate totals remain
    bitwise identical to thread mode.  Requires plain disk-backed,
    uncached segments (enforced at construction).
    """

    def __init__(self, store: ShardedGraphStore,
                 nonedge_filter: NonedgeFilter | None = None,
                 workers: int | None = None,
                 executor: str = "thread"):
        super().__init__(store, nonedge_filter)
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        self.workers = workers or store.num_shards
        self.executor = executor
        if executor == "process":
            self._validate_process_segments(store)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            # role -> live SharedObject; role -> generation token.
            self._published: dict[str, SharedObject] = {}
            self._published_gen: dict[str, object] = {}
            self._filter_gen = 0
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=f"{self.stats.scope}-shard",
            )
        self._book_lock = wrap_lock(threading.Lock(),
                                    "ParallelEdgeQueryEngine._book_lock")
        self._store_generation = getattr(store, "generation", 0)  # guarded-by: self._book_lock
        self.shard_stats = self._build_shard_stats()  # guarded-by: self._book_lock

    def _build_shard_stats(self) -> list[QueryStats]:
        return [
            QueryStats(store=segment, scope=self.stats.scope, shard=str(i))
            for i, segment in enumerate(self.store.segments)
        ]

    def _read_guard(self):
        """The store's shared-side mutation guard (no-op for stores
        without one).  Held across a whole batch so a mutation or a
        reshard generation flip can never land mid-merge."""
        guard = getattr(self.store, "read_guard", None)
        return guard() if guard is not None else nullcontext()

    def _sync_generation(self) -> None:
        """Refresh per-shard bookkeeping after a topology change.

        ``store.generation`` bumps when an online reshard begins (the
        routable segment space grows to old + new) and again at the
        flip (it shrinks to the new layout).  Callers hold the shared
        guard, so the topology cannot move again mid-sync.  Per-shard
        series are label-keyed (engine scope + shard index), so shard
        ``i`` of the new layout continues the series of shard ``i`` of
        the old one — aggregate totals are unaffected.
        """
        generation = getattr(self.store, "generation", 0)
        if generation == self._store_generation:
            return
        with self._book_lock:
            if generation == self._store_generation:
                return
            self.shard_stats = self._build_shard_stats()
            self._store_generation = generation

    @staticmethod
    def _validate_process_segments(store: ShardedGraphStore) -> None:
        """Process mode serves reads in detached workers, so every
        segment must be a plain disk-backed ``DiskKVStore`` with the
        block cache off: workers cannot see a coordinator-side cache
        (stats would diverge from the serial engine), an in-memory
        store has no file to map, and a fault-injecting wrapper's
        dice rolls cannot be replicated across processes.  Replicated
        segments are rejected for the same reason: failover is
        coordinator-side state workers cannot observe.

        The decoded-blob **hot cache** is deliberately allowed: it is
        stats-transparent (hits book the same logical reads a cold
        read would), and process mode serves it worker-side — each
        ``MappedShardReader`` builds its own from the published
        ``hot_cache_bytes`` budget, rebuilt (cold) whenever a
        mutation-driven republish retires the old reader.
        """
        if getattr(store, "num_replicas", 0):
            raise ValueError(
                "executor='process' does not support replicated shards: "
                "failover state lives in the coordinator")
        for i, seg in enumerate(store.segments):
            if getattr(seg, "is_replicated", False):
                raise ValueError(
                    f"executor='process' does not support replicated "
                    f"shards; shard {i} is a ReplicatedShard")
            kv = seg._kv
            if type(kv) is not DiskKVStore:
                raise ValueError(
                    f"executor='process' needs plain DiskKVStore segments; "
                    f"shard {i} is {type(kv).__name__}")
            if kv._cache is not None:
                raise ValueError(
                    "executor='process' requires cache_bytes=0: the block "
                    "cache lives in the coordinator and workers would "
                    "bypass it, skewing cache_served/disk_served parity")

    def has_edge(self, u: int, v: int) -> bool:
        """Scalar query routed to the owning shard, dual-booked."""
        tracer = default_tracer()
        start = time.perf_counter()
        try:
            with self._read_guard():
                self._sync_generation()
                return self._has_edge_guarded(tracer, u, v)
        finally:
            self._observe_latency("scalar", time.perf_counter() - start)

    def _has_edge_guarded(self, tracer, u: int, v: int) -> bool:
        shard = self.store.router.shard_of(u)
        stats = self.shard_stats[shard]
        with tracer.span("query", engine=self.stats.scope,
                         shard=str(shard)), self._book_lock:
            self.stats.inc("total")
            stats.inc("total")
            if self.nonedge_filter is not None:
                with tracer.span("ndf_filter"):
                    certain = self.nonedge_filter.is_nonedge(u, v)
                if certain:
                    self.stats.inc("filtered")
                    stats.inc("filtered")
                    return False
            self.stats.inc("executed")
            stats.inc("executed")
            receipt = ReadReceipt()
            exists = self.store.has_edge(u, v, receipt=receipt)
            for view in (self.stats, stats):
                view.inc("cache_served", receipt.cache_hits)
                view.inc("disk_served", receipt.disk_reads)
                if exists:
                    view.inc("positives")
            return exists

    def _query_slice(self, shard: int, us: np.ndarray, vs: np.ndarray):
        """One pool task: NDF + storage probe for one shard's pairs.

        Touches nothing shared and mutable — results and the private
        receipt travel back to the coordinator for booking.
        """
        with default_tracer().span("query_shard", shard=str(shard)):
            n = len(us)
            answers = np.zeros(n, dtype=bool)
            receipt = ReadReceipt()
            if self.nonedge_filter is not None:
                with default_tracer().span("ndf_filter", shard=str(shard)):
                    certain = nonedge_batch_mask(self.nonedge_filter, us, vs)
                survivors = ~certain
            else:
                survivors = np.ones(n, dtype=bool)
            executed = int(survivors.sum())
            if executed:
                exists = self.store.probe_shard(
                    shard, us[survivors], vs[survivors], receipt=receipt)
                answers[survivors] = exists
            return answers, n - executed, executed, receipt

    def _refresh_publications(self) -> dict[str, dict | None]:
        """(Re)publish the filter and stale shard states; return metas.

        The filter is republished when its identity or batch snapshot
        changed (solutions swap ``_batch_index`` for a fresh object on
        every maintenance-driven rebuild, so object identity is a
        sound staleness signal).  The token holds strong references
        and compares with ``is`` — comparing ``id()`` values is not
        sound, because CPython reuses the id of a freed snapshot for
        its replacement, which silently skipped the republish and left
        workers filtering with stale codes.  Shard state is
        republished when the segment's ``mutation_count`` moved.
        Superseded blocks are unlinked immediately — attached workers
        keep their mapping until they pick up the new generation.
        """
        metas: dict[str, dict | None] = {}
        filt = self.nonedge_filter
        if filt is None:
            metas["filter"] = None
        else:
            token = (filt, getattr(filt, "_batch_index", None))
            prev = self._published_gen.get("filter")
            if (prev is None or prev[0] is not token[0]
                    or prev[1] is not token[1]):
                self._filter_gen += 1
                shared = SharedObject(filt, "filter", self._filter_gen)
                old = self._published.get("filter")
                self._published["filter"] = shared
                self._published_gen["filter"] = token
                if old is not None:
                    old.close()
            metas["filter"] = self._published["filter"].meta
        for i, seg in enumerate(self.store.segments):
            role = f"shard{i}"
            generation = seg._kv.mutation_count
            if (role not in self._published
                    or self._published_gen.get(role) != generation):
                shared = SharedObject(seg._kv.export_packed_state(),
                                      role, generation)
                old = self._published.get(role)
                self._published[role] = shared
                self._published_gen[role] = generation
                if old is not None:
                    old.close()
            metas[role] = self._published[role].meta
        return metas

    def _has_edge_batch(self, tracer, pairs_u, pairs_v) -> np.ndarray:
        with tracer.span("query_batch", engine=self.stats.scope):
            us, vs = endpoint_arrays(pairs_u, pairs_v)
            n = len(us)
            answers = np.zeros(n, dtype=bool)
            if n == 0:
                return answers
            if self.nonedge_filter is not None:
                warm_batch_snapshot(self.nonedge_filter)
            # The shared guard spans partition → fan-out → merge, so a
            # mutation or reshard flip cannot move a vertex between the
            # routing decision and the per-segment probe.  Pool tasks
            # rely on the coordinator's hold; they take no locks.
            with self._read_guard():
                self._sync_generation()
                if self.executor == "process":
                    return self._process_batch(us, vs, answers)
                slices = list(shard_slices(self.store.router, us, vs))
                futures = [
                    (shard, idx,
                     self._pool.submit(self._query_slice, shard, su, sv))
                    for shard, idx, su, sv in slices
                ]
                # Join every future *before* taking the booking lock:
                # waiting on pool tasks under self._book_lock would
                # stall the scalar path behind the slowest shard probe.
                results = [(shard, idx, future.result())
                           for shard, idx, future in futures]
                with self._book_lock:
                    self.stats.inc("total", n)
                    for shard, idx, result in results:
                        slice_answers, filtered, executed, receipt = result
                        answers[idx] = slice_answers
                        positives = int(slice_answers.sum())
                        shard_view = self.shard_stats[shard]
                        shard_view.inc("total", len(idx))
                        for view in (self.stats, shard_view):
                            view.inc("filtered", filtered)
                            view.inc("executed", executed)
                            view.inc("cache_served", receipt.cache_hits)
                            view.inc("disk_served", receipt.disk_reads)
                            view.inc("positives", positives)
                return answers

    def _process_batch(self, us, vs, answers) -> np.ndarray:
        """Fan a batch out to the process pool and book the results.

        Booking mirrors the thread path field for field; the one
        difference is that worker reads bypass the coordinator's
        ``StorageStats``, so their logical read accounting
        (records + stored bytes, identical to what the in-process
        packed tier books) is applied to each segment's stats here.
        """
        n = len(us)
        metas = self._refresh_publications()
        slices = list(shard_slices(self.store.router, us, vs))
        futures = [
            (shard, idx,
             self._pool.submit(_process_query_slice, shard, su, sv,
                               metas["filter"], metas[f"shard{shard}"]))
            for shard, idx, su, sv in slices
        ]
        # As in the thread path: join outside the booking lock so the
        # scalar path is never serialized behind a worker process.
        results = [(shard, idx, future.result())
                   for shard, idx, future in futures]
        with self._book_lock:
            self.stats.inc("total", n)
            for shard, idx, result in results:
                slice_answers, filtered, executed, n_records, n_bytes = result
                answers[idx] = slice_answers
                positives = int(slice_answers.sum())
                shard_view = self.shard_stats[shard]
                shard_view.inc("total", len(idx))
                if n_records:
                    seg_stats = self.store.segments[shard].stats
                    seg_stats.inc("disk_reads", n_records)
                    seg_stats.inc("bytes_read", n_bytes)
                for view in (self.stats, shard_view):
                    view.inc("filtered", filtered)
                    view.inc("executed", executed)
                    view.inc("disk_served", n_records)
                    view.inc("positives", positives)
        return answers

    def close(self) -> None:
        """Shut down the worker pool and unlink any published shared
        memory (idempotent)."""
        self._pool.shutdown(wait=True)
        for shared in getattr(self, "_published", {}).values():
            shared.close()
        if self.executor == "process":
            self._published = {}
            self._published_gen = {}

    def __enter__(self) -> "ParallelEdgeQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
