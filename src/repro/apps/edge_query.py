"""Edge-query engine over disk storage with optional VEND filtering.

This is Fig. 1's architecture: queries first consult the in-memory
NDF; only pairs the filter cannot certify as NEpairs reach the
disk-resident adjacency store.  The engine's statistics (filtered
count, executed count, disk reads) drive the Fig. 9 experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.base import NonedgeFilter
from ..storage import GraphStore

__all__ = ["QueryStats", "EdgeQueryEngine"]


@dataclass
class QueryStats:
    """Aggregate outcome of a query batch."""

    total: int = 0
    filtered: int = 0      # answered "no edge" by the NDF alone
    executed: int = 0      # required a storage lookup
    positives: int = 0     # edges that actually existed
    elapsed_seconds: float = 0.0

    @property
    def filter_rate(self) -> float:
        return self.filtered / self.total if self.total else 0.0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, type(getattr(self, name))())


class EdgeQueryEngine:
    """Answers edge queries, short-circuiting through a VEND filter.

    Parameters
    ----------
    store:
        The disk-backed adjacency store (source of truth).
    nonedge_filter:
        Any :class:`~repro.core.base.NonedgeFilter` (VEND solution or
        Bloom comparator), or None for the paper's Non-VEND baseline.
    """

    def __init__(self, store: GraphStore,
                 nonedge_filter: NonedgeFilter | None = None):
        self.store = store
        self.nonedge_filter = nonedge_filter
        self.stats = QueryStats()

    def has_edge(self, u: int, v: int) -> bool:
        """One edge query: NDF first, storage only when undetermined."""
        self.stats.total += 1
        if self.nonedge_filter is not None and self.nonedge_filter.is_nonedge(u, v):
            self.stats.filtered += 1
            return False
        self.stats.executed += 1
        exists = self.store.has_edge(u, v)
        if exists:
            self.stats.positives += 1
        return exists

    def run(self, pairs: list[tuple[int, int]]) -> QueryStats:
        """Answer a batch and accumulate wall-clock time."""
        start = time.perf_counter()
        for u, v in pairs:
            self.has_edge(u, v)
        self.stats.elapsed_seconds += time.perf_counter() - start
        return self.stats
