"""Edge-query engine over disk storage with optional VEND filtering.

This is Fig. 1's architecture: queries first consult the in-memory
NDF; only pairs the filter cannot certify as NEpairs reach the
disk-resident adjacency store.  The engine's statistics (filtered
count, executed count, disk reads) drive the Fig. 9 experiment.

Two execution paths share the same statistics:

- :meth:`EdgeQueryEngine.has_edge` / :meth:`EdgeQueryEngine.run` —
  the scalar path, one Python dispatch per pair;
- :meth:`EdgeQueryEngine.has_edge_batch` / :meth:`EdgeQueryEngine.run_batch`
  — the batched pipeline: one vectorized NDF pass over the whole pair
  array, survivors grouped by left endpoint, one deduplicated
  multi-get against storage, and membership answered by a single
  ``searchsorted`` sweep.  Prefer it whenever pairs arrive in bulk.

Attribution is receipt-scoped: every storage call made on behalf of a
query threads its own :class:`~repro.obs.ReadReceipt`, so an engine's
``cache_served``/``disk_served`` counters book exactly the I/O *its*
queries caused — never another engine's traffic or an index-maintenance
fetch that happened to touch the same shared store (the historical
diff-the-shared-globals pattern misattributed both).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.base import NonedgeFilter, endpoint_arrays, nonedge_batch_mask
from ..obs import QueryStats, ReadReceipt, default_tracer
from ..storage import GraphStore

__all__ = ["QueryStats", "EdgeQueryEngine"]


class EdgeQueryEngine:
    """Answers edge queries, short-circuiting through a VEND filter.

    Parameters
    ----------
    store:
        The disk-backed adjacency store (source of truth).
    nonedge_filter:
        Any :class:`~repro.core.base.NonedgeFilter` (VEND solution,
        columnar snapshot, or Bloom comparator), or None for the
        paper's Non-VEND baseline.
    """

    def __init__(self, store: GraphStore,
                 nonedge_filter: NonedgeFilter | None = None):
        self.store = store
        self.nonedge_filter = nonedge_filter
        self.stats = QueryStats(store=store)
        registry = self.stats.registry
        self._latency = registry.histogram(
            "repro_query_latency_seconds",
            "Wall-clock latency of engine query calls",
        )

    def _observe_latency(self, path: str, seconds: float) -> None:
        self._latency.labels(engine=self.stats.scope, path=path).observe(
            seconds)

    def has_edge(self, u: int, v: int) -> bool:
        """One edge query: NDF first, storage only when undetermined."""
        tracer = default_tracer()
        start = time.perf_counter()
        try:
            with tracer.span("query", engine=self.stats.scope):
                self.stats.inc("total")
                if self.nonedge_filter is not None:
                    with tracer.span("ndf_filter"):
                        certain = self.nonedge_filter.is_nonedge(u, v)
                    if certain:
                        self.stats.inc("filtered")
                        return False
                self.stats.inc("executed")
                receipt = ReadReceipt()
                exists = self.store.has_edge(u, v, receipt=receipt)
                self.stats.inc("cache_served", receipt.cache_hits)
                self.stats.inc("disk_served", receipt.disk_reads)
                if exists:
                    self.stats.inc("positives")
                return exists
        finally:
            self._observe_latency("scalar", time.perf_counter() - start)

    def has_edge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Answer a pair batch through the vectorized pipeline.

        Accepts aligned endpoint arrays or a sequence of ``(u, v)``
        tuples; returns a bool array of edge-existence answers and
        accumulates the same :class:`QueryStats` the scalar path does.
        Because surviving left endpoints are deduplicated before the
        multi-get, ``cache_served + disk_served`` may be smaller than
        ``executed`` — that gap is exactly the I/O batching saved.
        """
        tracer = default_tracer()
        start = time.perf_counter()
        try:
            return self._has_edge_batch(tracer, pairs_u, pairs_v)
        finally:
            self._observe_latency("batch", time.perf_counter() - start)

    def _has_edge_batch(self, tracer, pairs_u, pairs_v) -> np.ndarray:
        with tracer.span("query_batch", engine=self.stats.scope):
            us, vs = endpoint_arrays(pairs_u, pairs_v)
            n = len(us)
            self.stats.inc("total", n)
            answers = np.zeros(n, dtype=bool)
            if n == 0:
                return answers
            if self.nonedge_filter is not None:
                with tracer.span("ndf_filter"):
                    certain = nonedge_batch_mask(self.nonedge_filter, us, vs)
                self.stats.inc("filtered", int(certain.sum()))
                survivors = ~certain
            else:
                survivors = np.ones(n, dtype=bool)
            count = int(survivors.sum())
            if count:
                self.stats.inc("executed", count)
                receipt = ReadReceipt()
                exists = self.store.has_edge_many(
                    us[survivors], vs[survivors], receipt=receipt)
                self.stats.inc("cache_served", receipt.cache_hits)
                self.stats.inc("disk_served", receipt.disk_reads)
                self.stats.inc("positives", int(exists.sum()))
                answers[survivors] = exists
            return answers

    def run(self, pairs: list[tuple[int, int]]) -> QueryStats:
        """Answer a batch one pair at a time (scalar reference path)."""
        start = time.perf_counter()
        for u, v in pairs:
            self.has_edge(u, v)
        self.stats.inc("elapsed_seconds", time.perf_counter() - start)
        return self.stats

    def run_batch(self, pairs, pairs_v=None) -> QueryStats:
        """Answer a batch through the vectorized pipeline, timed."""
        start = time.perf_counter()
        self.has_edge_batch(pairs, pairs_v)
        self.stats.inc("elapsed_seconds", time.perf_counter() - start)
        return self.stats
