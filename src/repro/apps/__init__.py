"""Applications that consume VEND: edge queries, triangles, matching."""

from .database import VendGraphDB
from .clustering import ClusteringStats, average_clustering, local_clustering
from .edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine, QueryStats
from .matching import (
    MatchStats,
    SubgraphMatcher,
    clique_pattern,
    path_pattern,
    triangle_pattern,
)
from .triangle import TriangleStats, edge_iterator_count, trigon_count

__all__ = [
    "EdgeQueryEngine",
    "ParallelEdgeQueryEngine",
    "VendGraphDB",
    "ClusteringStats",
    "average_clustering",
    "local_clustering",
    "QueryStats",
    "TriangleStats",
    "edge_iterator_count",
    "trigon_count",
    "SubgraphMatcher",
    "MatchStats",
    "triangle_pattern",
    "path_pattern",
    "clique_pattern",
]
