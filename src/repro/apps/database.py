"""``VendGraphDB`` — the integrated storage + VEND facade.

The paper's deployment picture (Fig. 1, Appendix E.1's Neo4j case
study) is a graph database whose edge-query path consults the
in-memory VEND codes before touching disk.  This facade packages that
wiring: one object owning the disk-resident adjacency store and the
VEND index, keeping them transactionally in step through every update,
answering edge queries through the filter, and transparently
rebuilding the index when the ID universe outgrows ``I'``.

The maintenance fetch is the *store itself*, so the disk accesses that
vector reconstruction occasionally needs (Section V-D) are real reads,
visible in the same counters as query traffic.
"""

from __future__ import annotations

from pathlib import Path

from ..core import HybPlusVend, HybridVend, IdCapacityError
from ..core.hybrid import HybridVend as _HybridBase
from ..graph import Graph
from ..obs import DatabaseStats, ReadReceipt
from ..storage import GraphStore, ShardedGraphStore, StorageStats
from .edge_query import EdgeQueryEngine, ParallelEdgeQueryEngine, QueryStats

__all__ = ["VendGraphDB"]

_METHODS = {"hybrid": HybridVend, "hyb+": HybPlusVend}


class VendGraphDB:
    """A disk-backed graph with VEND-filtered edge queries.

    Parameters
    ----------
    path:
        Backing file for the adjacency log (None = in-memory, tests).
        With ``shards > 1`` this becomes the base path of the segment
        files (``<path>.shard<N>``).
    k, method:
        VEND configuration (``"hybrid"`` or ``"hyb+"``).
    cache_bytes:
        Block-cache size for the store — the total budget, split across
        the shard-local caches when sharded.
    hot_cache_bytes:
        Decoded-blob hot-cache budget (total, split per shard like
        ``cache_bytes``).  Stats-transparent — verdicts and counters
        are bitwise identical hot-on/off — and compatible with every
        executor (process workers build their own reader-side caches).
        Requires a disk-backed path; ignored for in-memory stores.
    shards, workers:
        ``shards > 1`` switches storage to a hash-partitioned
        :class:`~repro.storage.ShardedGraphStore` and the query path to
        the thread-pool :class:`ParallelEdgeQueryEngine` with
        ``workers`` threads (default: one per shard).  The default
        ``shards=1`` keeps the original single-file store and serial
        engine, byte-for-byte.
    compress, use_mmap:
        Storage-tier switches, forwarded to every segment: ``compress``
        stores adjacency blobs as StreamVByte v3 records, ``use_mmap``
        serves the packed read tier from an mmap of the log.
    executor:
        ``"thread"`` (default) or ``"process"`` — how the parallel
        engine fans out batch work.  ``"process"`` requires a
        disk-backed path, ``cache_bytes=0``, and forces the sharded
        store/parallel engine even at ``shards=1`` (the process
        pipeline needs a router).
    replicas:
        Replica copies per shard (forces the sharded store even at
        ``shards=1``).  Writes reach every copy synchronously; reads
        fail over when a copy's backing store degrades, and
        :meth:`reset_degraded` repairs and reinstates.  Incompatible
        with ``executor="process"`` — failover is coordinator state.

    ::

        db = VendGraphDB(shards=4)      # 4 segments, 4 worker threads
        db.load_graph(graph)
        db.has_edge_batch(us, vs)       # shard-parallel pipeline
        db.reshard(8)                   # online: queries keep flowing
    """

    def __init__(self, path: str | Path | None = None, k: int = 8,
                 method: str = "hyb+", cache_bytes: int = 0,
                 id_bits: int | None = None, shards: int = 1,
                 workers: int | None = None, compress: bool = False,
                 use_mmap: bool = False, executor: str = "thread",
                 replicas: int = 0, hot_cache_bytes: int = 0):
        if method not in _METHODS:
            raise ValueError(f"method must be one of {sorted(_METHODS)}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if executor == "process" and path is None:
            raise ValueError("executor='process' requires a disk-backed "
                             "path (workers mmap the segment logs)")
        if executor == "process" and replicas:
            raise ValueError("executor='process' does not support "
                             "replicas: failover is coordinator state")
        self.vend: _HybridBase = _METHODS[method](k=k, id_bits=id_bits)
        if shards > 1 or replicas > 0 or executor == "process":
            self.store = ShardedGraphStore(path, num_shards=shards,
                                           cache_bytes=cache_bytes,
                                           compress=compress,
                                           use_mmap=use_mmap,
                                           replicas=replicas,
                                           hot_cache_bytes=hot_cache_bytes)
            self._engine = ParallelEdgeQueryEngine(self.store, self.vend,
                                                   workers=workers,
                                                   executor=executor)
        else:
            self.store = GraphStore(path, cache_bytes=cache_bytes,
                                    compress=compress, use_mmap=use_mmap,
                                    hot_cache_bytes=hot_cache_bytes)
            self._engine = EdgeQueryEngine(self.store, self.vend)
        self.db_stats = DatabaseStats()
        self._built = False

    @property
    def num_shards(self) -> int:
        """Storage segment count (1 = unsharded legacy layout)."""
        return getattr(self.store, "num_shards", 1)

    @property
    def replicas(self) -> int:
        """Replica copies per shard (0 = unreplicated)."""
        return getattr(self.store, "num_replicas", 0)

    def _fetch_for_maintenance(self, v: int) -> list[int]:
        """Adjacency fetch booked to maintenance, not any query engine.

        Index reconstruction (Section V-D) reads real adjacency lists;
        routing those reads through a maintenance-scoped receipt keeps
        them out of every engine's ``cache_served``/``disk_served``.
        """
        receipt = ReadReceipt()
        neighbors = self.store.get_neighbors(v, receipt=receipt)
        self.db_stats.inc("maintenance_reads", receipt.served)
        self.db_stats.inc("maintenance_disk_reads", receipt.disk_reads)
        return neighbors

    # -- loading -----------------------------------------------------------------

    def load_graph(self, graph: Graph) -> None:
        """Bulk-load a graph into storage and build the index."""
        self.store.bulk_load(graph)
        self.vend.build(graph)
        self._built = True

    def rebuild_index(self) -> None:
        """Re-encode every vertex from the *stored* adjacency lists."""
        graph = Graph()
        for v in self.store.vertices():
            graph.add_vertex(v)
        for v in list(self.store.vertices()):
            for u in self._fetch_for_maintenance(v):
                if u < v:
                    graph.add_edge(u, v)
        self.vend.build(graph)
        self.db_stats.inc("index_rebuilds")
        self._built = True

    # -- reads ------------------------------------------------------------------

    def has_edge(self, u: int, v: int) -> bool:
        """Edge query: VEND filter first, storage only when undecided."""
        return self._engine.has_edge(u, v)

    def has_edge_batch(self, pairs_u, pairs_v=None):
        """Vectorized edge queries through the batched engine pipeline."""
        return self._engine.has_edge_batch(pairs_u, pairs_v)

    def neighbors(self, v: int) -> list[int]:
        """The stored adjacency list of ``v`` (a disk access)."""
        return self.store.get_neighbors(v)

    def has_vertex(self, v: int) -> bool:
        return self.store.has_vertex(v)

    @property
    def num_vertices(self) -> int:
        return self.store.num_vertices

    # -- writes ------------------------------------------------------------------

    def add_vertex(self, v: int) -> None:
        """Register a vertex in storage and the index."""
        self._require_built()
        if not self.store.has_vertex(v):
            self.store.put_neighbors(v, [])
        try:
            self.vend.insert_vertex(v)
        except IdCapacityError:
            self.rebuild_index()

    def add_edge(self, u: int, v: int) -> bool:
        """Insert an edge; storage first, then the index adjusts.

        Returns False when the edge already existed.
        """
        self._require_built()
        for endpoint in (u, v):
            self.add_vertex(endpoint)
        if not self.store.insert_edge(u, v):
            return False
        self.vend.insert_edge(u, v, self._fetch_for_maintenance)
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete an edge; returns False when it did not exist."""
        self._require_built()
        if not self.store.delete_edge(u, v):
            return False
        self.vend.delete_edge(u, v, self._fetch_for_maintenance)
        return True

    def remove_vertex(self, v: int) -> bool:
        """Delete a vertex and its incident edges everywhere."""
        self._require_built()
        if not self.store.has_vertex(v):
            return False
        # Scrub the index first: its reconstruction fetches must still
        # see v's edges in storage.
        self.vend.delete_vertex(v, self._fetch_for_maintenance)
        self.store.delete_vertex(v)
        return True

    # -- topology ----------------------------------------------------------------

    def reshard(self, num_shards: int, path: str | Path | None = None,
                batch: int = 512) -> None:
        """Reshard storage **online** to ``num_shards`` segments.

        Queries and updates keep flowing the whole time: the store
        opens a new generation, this call walks vertices across in
        ``batch``-sized exclusively-locked chunks (concurrent batches
        interleave between chunks), and the final flip lands only
        after a durable flush of the new layout.  The VEND index is
        untouched — the router decides placement, never encoding.

        Requires sharded storage (``shards>1``, ``replicas>0``, or an
        explicit reshard target from such a config) and the thread
        executor — process workers hold mmaps of the old generation's
        segment files.
        """
        begin = getattr(self.store, "begin_reshard", None)
        if begin is None:
            raise ValueError("reshard() requires sharded storage "
                             "(construct with shards>1 or replicas>0)")
        if getattr(self._engine, "executor", "thread") == "process":
            raise ValueError("online reshard is not supported with "
                             "executor='process': workers mmap the old "
                             "generation's segment files")
        begin(num_shards, path=path)
        while self.store.migrate_step(batch):
            pass
        self.store.finish_reshard()

    def reset_degraded(self) -> None:
        """Operational recovery: clear the storage layer's fault latches.

        Replicated shards additionally repair stale copies from the
        serving copy and reinstate their home primary.  After this
        returns, :attr:`degraded` is False unless a backing store is
        *still* failing.
        """
        reset = getattr(self.store, "reset_degraded", None)
        if reset is not None:
            reset()

    # -- stats / lifecycle ----------------------------------------------------------

    @property
    def query_stats(self) -> QueryStats:
        """Edge-query traffic (filtered vs executed)."""
        return self._engine.stats

    @property
    def shard_query_stats(self) -> list[QueryStats]:
        """Per-shard query ledgers; empty when the store is unsharded.

        Each entry is labeled ``shard="<i>"`` and sums with its peers
        to exactly the :attr:`query_stats` totals.
        """
        return list(getattr(self._engine, "shard_stats", []))

    @property
    def index_rebuilds(self) -> int:
        """Full index rebuilds performed (ID capacity growth)."""
        return self.db_stats.index_rebuilds

    @property
    def maintenance_reads(self) -> int:
        """Adjacency fetches booked to index maintenance, not queries."""
        return self.db_stats.maintenance_reads

    @property
    def storage_stats(self) -> StorageStats:
        """Physical I/O counters of the backing store."""
        return self.store.stats

    @property
    def degraded(self) -> bool:
        """True when the storage layer reported IO faults (faults.py)."""
        return self.store.degraded

    def hot_caches(self) -> list:
        """Per-segment decoded-blob hot caches (empty when disabled).

        The handle an :class:`~repro.storage.tuning.AdaptiveTuner`
        samples and resizes; also used by benchmarks to report hit
        rates.
        """
        caches = getattr(self.store, "hot_caches", None)
        if caches is not None:
            return caches()
        one = getattr(self.store, "hot_cache", None)
        return [one] if one is not None else []

    def index_memory_bytes(self) -> int:
        return self.vend.memory_bytes()

    def close(self) -> None:
        closer = getattr(self._engine, "close", None)
        if closer is not None:
            closer()
        self.store.close()

    def __enter__(self) -> "VendGraphDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(
                "load_graph() or rebuild_index() must run before updates"
            )
