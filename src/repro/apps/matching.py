"""Graphflow-style subgraph matching with VEND filtering — Appendix B.

A one-vertex-at-a-time matcher: pattern vertices are bound in a
connected order; candidates for the next vertex come from the stored
adjacency of an already-bound neighbor, and every remaining pattern
edge is verified with an edge query.  When a VEND filter is attached,
those verification queries are answered in memory for most non-edges,
saving the disk accesses Graphflow would otherwise issue.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.base import NonedgeFilter
from ..graph import Graph
from ..obs import ReadReceipt
from ..storage import GraphStore
from .edge_query import EdgeQueryEngine

__all__ = ["MatchStats", "SubgraphMatcher", "triangle_pattern",
           "path_pattern", "clique_pattern"]


@dataclass
class MatchStats:
    """Outcome of one pattern-matching run."""

    embeddings: int = 0
    edge_queries: int = 0
    filtered_queries: int = 0
    disk_reads: int = 0
    elapsed_seconds: float = 0.0


def triangle_pattern() -> Graph:
    """K3 — the paper's canonical local query."""
    return Graph([(1, 2), (2, 3), (1, 3)])


def path_pattern(length: int = 3) -> Graph:
    """A simple path with ``length`` edges."""
    if length < 1:
        raise ValueError("path length must be >= 1")
    return Graph([(i, i + 1) for i in range(1, length + 1)])


def clique_pattern(size: int = 4) -> Graph:
    """K_size."""
    if size < 2:
        raise ValueError("clique size must be >= 2")
    return Graph([
        (u, v) for u in range(1, size + 1) for v in range(u + 1, size + 1)
    ])


class SubgraphMatcher:
    """Counts injective embeddings of a small pattern into the store."""

    def __init__(self, store: GraphStore,
                 nonedge_filter: NonedgeFilter | None = None):
        self.store = store
        self.engine = EdgeQueryEngine(store, nonedge_filter)

    def count(self, pattern: Graph) -> MatchStats:
        """Count embeddings (automorphic images counted separately)."""
        order = self._binding_order(pattern)
        stats = MatchStats()
        start = time.perf_counter()
        engine_before = self.engine.stats.snapshot()
        receipt = ReadReceipt()
        binding: dict[int, int] = {}
        self._extend(pattern, order, 0, binding, stats, receipt)
        delta = self.engine.stats.diff(engine_before)
        stats.edge_queries = int(delta["total"])
        stats.filtered_queries = int(delta["filtered"])
        # Candidate-list fetches (our receipt) plus the physical reads
        # the engine's verification queries paid — nothing anyone else
        # did to the shared store in the meantime.
        stats.disk_reads = receipt.disk_reads + int(delta["disk_served"])
        stats.elapsed_seconds = time.perf_counter() - start
        return stats

    def _binding_order(self, pattern: Graph) -> list[int]:
        """A connected order: each vertex after the first has a bound
        neighbor, so candidates always come from one adjacency list."""
        vertices = sorted(pattern.vertices())
        if not vertices:
            raise ValueError("pattern must be non-empty")
        order = [vertices[0]]
        remaining = set(vertices[1:])
        while remaining:
            nxt = next(
                (v for v in sorted(remaining)
                 if any(u in order for u in pattern.neighbors(v))),
                None,
            )
            if nxt is None:
                raise ValueError("pattern must be connected")
            order.append(nxt)
            remaining.discard(nxt)
        return order

    def _extend(self, pattern: Graph, order: list[int], depth: int,
                binding: dict[int, int], stats: MatchStats,
                receipt: ReadReceipt) -> None:
        if depth == len(order):
            stats.embeddings += 1
            return
        pv = order[depth]
        bound_neighbors = [u for u in pattern.neighbors(pv) if u in binding]
        if depth == 0:
            candidates = sorted(self.store.vertices())
        else:
            anchor = binding[bound_neighbors[0]]
            candidates = self.store.get_neighbors(anchor, receipt=receipt)
        used = set(binding.values())
        survivors = [c for c in candidates if c not in used]
        # Verify every other pattern edge into the bound prefix with one
        # batched engine call per pattern edge; the surviving candidate
        # list shrinks between passes, so this issues exactly the
        # queries the scalar short-circuiting loop would.
        if depth:
            for u in bound_neighbors[1:]:
                if not survivors:
                    break
                anchor = binding[u]
                answers = self.engine.has_edge_batch(
                    [anchor] * len(survivors), survivors
                )
                survivors = [c for c, ok in zip(survivors, answers) if ok]
        for candidate in survivors:
            binding[pv] = candidate
            self._extend(pattern, order, depth + 1, binding, stats, receipt)
            del binding[pv]
