"""Clustering coefficient over disk storage — an intro use case.

The local clustering coefficient of ``v`` needs an edge query for
every pair of ``v``'s neighbors — exactly the distance-2 (CommPair)
traffic where VEND shines: most neighbor pairs are not connected, and
each detected NEpair is one avoided disk access.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.base import NonedgeFilter
from ..obs import ReadReceipt
from ..storage import GraphStore
from .edge_query import EdgeQueryEngine

__all__ = ["ClusteringStats", "local_clustering", "average_clustering"]


@dataclass
class ClusteringStats:
    """Outcome of a clustering computation."""

    coefficient: float = 0.0
    vertices: int = 0
    edge_queries: int = 0
    filtered_queries: int = 0
    disk_reads: int = 0
    elapsed_seconds: float = 0.0


def local_clustering(store: GraphStore, v: int,
                     nonedge_filter: NonedgeFilter | None = None) -> float:
    """Clustering coefficient of one vertex (0 for degree < 2)."""
    neighbors = store.get_neighbors(v)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    engine = EdgeQueryEngine(store, nonedge_filter)
    closed = 0
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if engine.has_edge(u, w):
                closed += 1
    return 2.0 * closed / (degree * (degree - 1))


def average_clustering(store: GraphStore,
                       nonedge_filter: NonedgeFilter | None = None,
                       vertices: list[int] | None = None) -> ClusteringStats:
    """Average local clustering over ``vertices`` (default: all).

    Returns the coefficient together with the query/disk cost profile,
    so VEND's savings are directly observable.
    """
    stats = ClusteringStats()
    engine = EdgeQueryEngine(store, nonedge_filter)
    receipt = ReadReceipt()
    start = time.perf_counter()
    chosen = sorted(store.vertices()) if vertices is None else vertices
    total = 0.0
    for v in chosen:
        neighbors = store.get_neighbors(v, receipt=receipt)
        degree = len(neighbors)
        stats.vertices += 1
        if degree < 2:
            continue
        closed = 0
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                if engine.has_edge(u, w):
                    closed += 1
        total += 2.0 * closed / (degree * (degree - 1))
    stats.coefficient = total / stats.vertices if stats.vertices else 0.0
    stats.edge_queries = engine.stats.total
    stats.filtered_queries = engine.stats.filtered
    # Our adjacency fetches plus our engine's physical reads — not a
    # window over the shared store's counters.
    stats.disk_reads = receipt.disk_reads + engine.stats.disk_served
    stats.elapsed_seconds = time.perf_counter() - start
    return stats
