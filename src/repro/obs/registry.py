"""The metrics registry — named counters, gauges, and histograms.

Every counter in the repo (storage I/O, query traffic, cache churn,
VEND maintenance work, fault-injection activity) is a labeled series
in one :class:`MetricsRegistry`, so the numbers that drive the paper's
evaluation (Fig. 9 query time, Fig. 10 maintenance cost, Table 2 index
size) come from a single, exportable place instead of five ad-hoc
objects.  The public stats dataclass-style objects
(:class:`~repro.obs.views.StorageStats`,
:class:`~repro.obs.views.QueryStats`, …) are thin views over series
registered here.

Naming scheme (DESIGN.md §10): ``repro_<layer>_<noun>_total`` for
counters, ``repro_<layer>_<noun>`` for gauges and
``repro_<layer>_<noun>_seconds`` for latency histograms.  Each
instrumented instance owns one label (``store="store0"``,
``engine="engine1"``, …) allocated by :meth:`MetricsRegistry.scope`,
which is what keeps two engines sharing one store from ever mixing
their series.

Export: :meth:`MetricsRegistry.to_json` (one JSON document),
:meth:`MetricsRegistry.to_prometheus` (Prometheus text exposition
format), and the :meth:`MetricsRegistry.snapshot` /
:meth:`MetricsRegistry.diff` pair the bench harness uses for scoped
before/after deltas.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
]

#: Latency histogram bounds (seconds): 100 µs … 2.5 s, then +Inf.
DEFAULT_BUCKETS = (0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005,
                   0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
                 .replace("\n", r"\n")
                 .replace('"', r'\"'))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + body + "}"


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else f"{bound:g}"


def _format_value(value: int | float) -> str:
    """Exact sample rendering for the exposition format.

    ``%g`` silently rounds to 6 significant digits, so a counter at
    12,345,678 exported as ``1.23457e+07`` — a corrupted series once
    traffic passes ~10M events.  Integers render via ``str`` (exact at
    any magnitude) and floats via ``repr`` (shortest round-trippable
    form, full precision).
    """
    if isinstance(value, float):
        return repr(value)
    return str(value)


class CounterSeries:
    """One labeled counter time series (monotonic until :meth:`set`)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value: int | float = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a gauge")
        self.value += amount

    def set(self, value: int | float) -> None:
        """Direct write — exists for view resets and legacy callers."""
        self.value = value


class GaugeSeries:
    """One labeled gauge time series (free to move both ways)."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class HistogramSeries:
    """One labeled histogram: bounded buckets plus sum and count.

    ``observe`` updates three fields (bucket, sum, count) that only
    make sense together, so both the update and :meth:`state` hold a
    per-series lock — a concurrent ``/metrics`` scrape can never see
    ``_count`` ahead of ``_sum`` or a bucket row that does not add up.
    """

    __slots__ = ("labels", "bounds", "bucket_counts", "total", "count",
                 "_lock")

    def __init__(self, labels: tuple[tuple[str, str], ...],
                 bounds: tuple[float, ...]):
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # final slot: +Inf
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            # First bound >= value, or the +Inf slot when none qualifies.
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.total += value
            self.count += 1

    def state(self) -> tuple[list[int], float, int]:
        """Atomic ``(bucket_counts, sum, count)`` snapshot of the series."""
        with self._lock:
            return list(self.bucket_counts), self.total, self.count

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * len(self.bucket_counts)
            self.total = 0.0
            self.count = 0

    def cumulative_buckets(self, bucket_counts: list[int] | None = None,
                           ) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        if bucket_counts is None:
            bucket_counts = self.state()[0]
        out = []
        acc = 0
        for bound, bucket in zip((*self.bounds, float("inf")),
                                 bucket_counts):
            acc += bucket
            out.append((bound, acc))
        return out


class _Metric:
    """A named metric family: one series per distinct label set."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = ""):
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._series: dict[tuple[tuple[str, str], ...], object] = {}
        self._lock = threading.Lock()

    def _make_series(self, labels: tuple[tuple[str, str], ...]):
        raise NotImplementedError

    def labels(self, **labels: str):
        """Get-or-create the series bound to this exact label set."""
        for key in labels:
            if not _LABEL_NAME.match(key):
                raise ValueError(f"invalid label name {key!r}")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._make_series(key))
        return series

    def series(self) -> list:
        return [self._series[key] for key in sorted(self._series)]


class Counter(_Metric):
    kind = "counter"

    def _make_series(self, labels) -> CounterSeries:
        return CounterSeries(labels)

    def inc(self, amount: int | float = 1, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> int | float:
        return self.labels(**labels).value

    def total(self) -> int | float:
        return sum(s.value for s in self._series.values())


class Gauge(_Metric):
    kind = "gauge"

    def _make_series(self, labels) -> GaugeSeries:
        return GaugeSeries(labels)

    def set(self, value: int | float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def value(self, **labels: str) -> int | float:
        return self.labels(**labels).value


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        cleaned = tuple(sorted(float(b) for b in buckets))
        if not cleaned:
            raise ValueError("a histogram needs at least one finite bucket")
        self.buckets = cleaned

    def _make_series(self, labels) -> HistogramSeries:
        return HistogramSeries(labels, self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """Process-wide home for every metric family.

    ``counter``/``gauge``/``histogram`` are get-or-create by name, so
    every ``GraphStore`` shares the ``repro_storage_disk_reads_total``
    family while owning its private ``store=<scope>`` series.
    """

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._scope_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help_text, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def scope(self, prefix: str) -> str:
        """A fresh instance label value: ``store0``, ``store1``, …"""
        with self._lock:
            n = self._scope_counts.get(prefix, 0)
            self._scope_counts[prefix] = n + 1
        return f"{prefix}{n}"

    def metrics(self) -> list[_Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # -- snapshot / diff ---------------------------------------------------

    def snapshot(self) -> dict[str, int | float]:
        """Flat ``name{labels} -> value`` view of every series.

        Histograms contribute their ``_sum`` and ``_count`` series so
        deltas over a workload window stay meaningful.
        """
        out: dict[str, int | float] = {}
        for metric in self.metrics():
            for series in metric.series():
                labels = _format_labels(series.labels)
                if metric.kind == "histogram":
                    _, total, count = series.state()
                    out[f"{metric.name}_sum{labels}"] = total
                    out[f"{metric.name}_count{labels}"] = count
                else:
                    out[f"{metric.name}{labels}"] = series.value
        return out

    @staticmethod
    def diff(before: dict[str, int | float],
             after: dict[str, int | float] | None = None,
             *, registry: "MetricsRegistry | None" = None) -> dict:
        """Per-series delta between two snapshots (zero deltas dropped)."""
        if after is None:
            after = (registry or default_registry()).snapshot()
        keys = set(before) | set(after)
        deltas = {}
        for key in sorted(keys):
            delta = after.get(key, 0) - before.get(key, 0)
            if delta:
                deltas[key] = delta
        return deltas

    def reset(self) -> None:
        """Zero every registered series (tests and long-lived sessions)."""
        for metric in self.metrics():
            for series in metric.series():
                if isinstance(series, HistogramSeries):
                    series.reset()
                else:
                    series.set(0)

    # -- export ------------------------------------------------------------

    def to_json(self) -> dict:
        """One JSON-serializable document covering the full registry."""
        families = []
        for metric in self.metrics():
            series_out = []
            for series in metric.series():
                entry: dict = {"labels": dict(series.labels)}
                if metric.kind == "histogram":
                    buckets, total, count = series.state()
                    entry["buckets"] = [
                        [_format_bound(bound), acc]
                        for bound, acc in series.cumulative_buckets(buckets)
                    ]
                    entry["sum"] = total
                    entry["count"] = count
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            families.append({
                "name": metric.name,
                "type": metric.kind,
                "help": metric.help,
                "series": series_out,
            })
        return {"metrics": families}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Scrape-safe under concurrency: every histogram series renders
        from one atomic :meth:`HistogramSeries.state` capture, so a
        scrape racing a batch never observes ``_count`` ahead of
        ``_sum`` or buckets that disagree with either.  Values are
        emitted exactly (:func:`_format_value`), never ``%g``-rounded.
        """
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for series in metric.series():
                base = dict(series.labels)
                if metric.kind == "histogram":
                    buckets, total, count = series.state()
                    for bound, acc in series.cumulative_buckets(buckets):
                        labels = _format_labels(tuple(sorted(
                            (*base.items(), ("le", _format_bound(bound)))
                        )))
                        lines.append(f"{metric.name}_bucket{labels} {acc}")
                    plain = _format_labels(series.labels)
                    lines.append(f"{metric.name}_sum{plain} "
                                 f"{_format_value(total)}")
                    lines.append(f"{metric.name}_count{plain} {count}")
                else:
                    labels = _format_labels(series.labels)
                    lines.append(f"{metric.name}{labels} "
                                 f"{_format_value(series.value)}")
        return "\n".join(lines) + "\n"


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every component binds to by default."""
    return _DEFAULT_REGISTRY
