"""Per-operation I/O provenance — the fix for cross-engine attribution.

The old engine booked ``cache_served``/``disk_served`` by diffing the
*shared* ``store.stats`` counters around each lookup, so any other
reader of the same store (a second engine, the soundness auditor, an
index-maintenance fetch) had its I/O silently attributed to whichever
query happened to be in flight.  A :class:`ReadReceipt` inverts the
flow: the caller that wants attribution passes its own receipt down
the storage stack, and each layer records the provenance of exactly
the reads *this* operation performed.  Shared global counters keep
measuring physical totals; receipts carry the scoped story.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReadReceipt"]


@dataclass
class ReadReceipt:
    """Cache-vs-disk provenance of one logical storage operation."""

    cache_hits: int = 0
    disk_reads: int = 0
    bytes_read: int = 0

    @property
    def served(self) -> int:
        """Total lookups this operation paid for, wherever served."""
        return self.cache_hits + self.disk_reads

    def count_cache_hit(self) -> None:
        self.cache_hits += 1

    def count_cache_hits(self, n: int) -> None:
        """Bulk variant: ``n`` cache-served lookups booked at once."""
        self.cache_hits += n

    def count_disk_read(self, nbytes: int = 0) -> None:
        self.disk_reads += 1
        self.bytes_read += nbytes

    def count_disk_reads(self, n: int, nbytes: int = 0) -> None:
        """Bulk variant: ``n`` physical reads booked at once."""
        self.disk_reads += n
        self.bytes_read += nbytes

    def merge(self, other: "ReadReceipt") -> None:
        """Fold a sub-operation's provenance into this receipt."""
        self.cache_hits += other.cache_hits
        self.disk_reads += other.disk_reads
        self.bytes_read += other.bytes_read

    @classmethod
    def merged(cls, receipts) -> "ReadReceipt":
        """One receipt folding a collection of sub-operation receipts.

        This is how the shard-parallel engine keeps attribution exact
        under concurrency: every pool task carries its own private
        receipt (no shared mutable counters between threads), and the
        coordinator merges them after the join barrier.
        """
        total = cls()
        for receipt in receipts:
            total.merge(receipt)
        return total
