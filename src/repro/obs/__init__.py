"""repro.obs — the observability subsystem (DESIGN.md §10).

Three small pieces that together make every counter in the repo
trustworthy and exportable:

- :mod:`~repro.obs.registry` — named counters, gauges and
  bounded-bucket histograms with label support, JSON and Prometheus
  export, and the ``snapshot()``/``diff()`` API the bench harness uses;
- :mod:`~repro.obs.tracer` — a lightweight nestable span tracer for
  the ``query → ndf_filter → storage_get → cache`` path;
- :mod:`~repro.obs.receipt` + :mod:`~repro.obs.views` — per-operation
  I/O provenance (the cross-engine attribution fix) and the public
  stats facades every layer exposes.
"""

from .receipt import ReadReceipt
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .tracer import Span, Tracer, default_tracer
from .views import (
    CacheStats,
    DatabaseStats,
    FaultStats,
    MaintenanceStats,
    QueryStats,
    StatsView,
    StorageStats,
    TunerStats,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "Span",
    "Tracer",
    "default_tracer",
    "ReadReceipt",
    "StatsView",
    "StorageStats",
    "QueryStats",
    "CacheStats",
    "MaintenanceStats",
    "FaultStats",
    "DatabaseStats",
    "TunerStats",
]
