"""Lightweight nestable span tracing for the query path.

One edge query walks ``query → ndf_filter → storage_get → cache``;
this tracer records that tree with wall-clock timings so a slow query
can be attributed to the layer that paid for it.  Tracing is **off by
default** — a disabled tracer hands out a shared no-op context
manager, so the instrumented hot paths (scalar queries run in tight
loops) pay one method call and nothing else.

Usage::

    tracer = default_tracer()
    tracer.enabled = True
    with tracer.span("query", engine="engine0"):
        with tracer.span("ndf_filter"):
            ...
    print(tracer.format_traces())

Completed root spans land in a bounded deque (``max_traces``), oldest
evicted first, so tracing a long workload cannot grow without bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "default_tracer"]


@dataclass
class Span:
    """One timed operation, possibly with nested children."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    start: float = 0.0
    end: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def format(self, indent: int = 0) -> str:
        labels = ""
        if self.labels:
            inner = ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
            labels = f" [{inner}]"
        lines = [f"{'  ' * indent}{self.name}{labels} "
                 f"({self.duration_seconds * 1e6:.1f}us)"]
        lines.extend(child.format(indent + 1) for child in self.children)
        return "\n".join(lines)


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self._span)
        return None


class Tracer:
    """Collects nested spans into per-root traces while enabled.

    The open-span stack is **thread-local**: the shard-parallel engine
    runs per-shard subtrees on pool threads, and a shared stack would
    interleave unrelated spans into one garbled tree.  Each thread
    nests its own spans; completed root spans from every thread land in
    the shared bounded ``traces`` deque (append is atomic under the
    GIL).
    """

    def __init__(self, max_traces: int = 128, clock=time.perf_counter):
        self.enabled = False
        self._clock = clock
        self._local = threading.local()
        self.traces: deque[Span] = deque(maxlen=max_traces)

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **labels: str):
        """Open a span nested under the innermost active one."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, Span(name, labels))

    def _push(self, span: Span) -> None:
        span.start = self._clock()
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate a span left open across an exception unwind: pop back
        # to (and including) the span being closed.
        stack = self._stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        if not stack:
            self.traces.append(span)

    def clear(self) -> None:
        self._stack.clear()
        self.traces.clear()

    def to_json(self, limit: int | None = None) -> list[dict]:
        traces = list(self.traces)
        if limit is not None:
            traces = traces[-limit:]
        return [span.to_dict() for span in traces]

    def format_traces(self, limit: int | None = None) -> str:
        traces = list(self.traces)
        if limit is not None:
            traces = traces[-limit:]
        blocks = [f"trace {i}:\n{span.format(1)}"
                  for i, span in enumerate(traces)]
        return "\n".join(blocks)


_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    """The process-wide tracer the instrumented layers share."""
    return _DEFAULT_TRACER
