"""Stats facades: the public counter objects, backed by the registry.

``StorageStats``, ``QueryStats``, ``MaintenanceStats``, ``FaultStats``
and friends keep their historical field names (``stats.disk_reads``,
``stats.filtered``, …) so no caller breaks, but every field is now a
labeled series in the :mod:`~repro.obs.registry` — reading an
attribute reads the live series, and mutation goes through
:meth:`StatsView.inc`, never bare ``+= 1`` (linter rule R006).  One
view instance = one scope label (``store="store0"``,
``engine="engine1"``), which is what makes ``repro stats`` able to
tell two engines on one shared store apart.
"""

from __future__ import annotations

from .registry import MetricsRegistry, default_registry

__all__ = [
    "StatsView",
    "StorageStats",
    "QueryStats",
    "CacheStats",
    "TunerStats",
    "MaintenanceStats",
    "FaultStats",
    "DatabaseStats",
]


class StatsView:
    """Field-per-series facade over registry counters (and gauges).

    Subclasses declare ``_PREFIX`` (metric-name prefix), ``_SCOPE``
    (the instance label name), ``_COUNTERS`` and optionally
    ``_GAUGES``.  Counter fields are exported as
    ``<prefix>_<field>_total``; gauges as ``<prefix>_<field>``.

    Attribute reads return live series values; attribute writes and
    ``reset()`` exist for backwards compatibility with the dataclass
    era and route to the same series.  New code mutates through
    :meth:`inc` / :meth:`set_gauge`.
    """

    _PREFIX = "repro"
    _SCOPE = "instance"
    _COUNTERS: tuple[str, ...] = ()
    _GAUGES: tuple[str, ...] = ()
    _HELP: dict[str, str] = {}

    def __init__(self, registry: MetricsRegistry | None = None,
                 scope: str | None = None, **labels: str):
        registry = registry or default_registry()
        scope = scope or registry.scope(self._SCOPE)
        bound = {self._SCOPE: scope, **{k: str(v) for k, v in labels.items()}}
        series = {}
        for name in self._COUNTERS:
            counter = registry.counter(f"{self._PREFIX}_{name}_total",
                                       self._HELP.get(name, ""))
            series[name] = counter.labels(**bound)
        gauges = {}
        for name in self._GAUGES:
            gauge = registry.gauge(f"{self._PREFIX}_{name}",
                                   self._HELP.get(name, ""))
            gauges[name] = gauge.labels(**bound)
        self.__dict__.update(
            _registry=registry, _scope=scope, _label_values=bound,
            _series=series, _gauges=gauges,
        )

    # -- identity ----------------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        return self.__dict__["_registry"]

    @property
    def scope(self) -> str:
        """This instance's label value (e.g. ``"store0"``)."""
        return self.__dict__["_scope"]

    # -- field access ------------------------------------------------------

    def __getattr__(self, name: str):
        series = self.__dict__.get("_series", {})
        if name in series:
            return series[name].value
        gauges = self.__dict__.get("_gauges", {})
        if name in gauges:
            return gauges[name].value
        raise AttributeError(
            f"{type(self).__name__!s} has no field {name!r}"
        )

    def __setattr__(self, name: str, value) -> None:
        series = self.__dict__.get("_series", {})
        if name in series:
            series[name].set(value)
            return
        gauges = self.__dict__.get("_gauges", {})
        if name in gauges:
            gauges[name].set(value)
            return
        object.__setattr__(self, name, value)

    # -- mutation ----------------------------------------------------------

    def inc(self, field: str, amount: int | float = 1) -> None:
        """Bump counter ``field`` — the one sanctioned mutation path."""
        self.__dict__["_series"][field].inc(amount)

    def set_gauge(self, field: str, value: int | float) -> None:
        self.__dict__["_gauges"][field].set(value)

    def reset(self) -> None:
        """Zero this instance's series (other scopes are untouched)."""
        for series in self.__dict__["_series"].values():
            series.set(0)
        for gauge in self.__dict__["_gauges"].values():
            gauge.set(0)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, int | float]:
        out = {name: s.value for name, s in self.__dict__["_series"].items()}
        out.update(
            (name, g.value) for name, g in self.__dict__["_gauges"].items()
        )
        return out

    def diff(self, before: dict[str, int | float]) -> dict[str, int | float]:
        """Field deltas of this view since a :meth:`snapshot`."""
        return {name: value - before.get(name, 0)
                for name, value in self.snapshot().items()}

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"{type(self).__name__}({fields})"

    # -- pickling ----------------------------------------------------------
    #
    # Process-pool workers receive NDF solutions whose stats views would
    # otherwise drag the whole MetricsRegistry (and its locks) across
    # the pickle boundary.  A view pickles as just its labels and
    # reconnects to the *worker's* default registry on unpickle — the
    # coordinator's registry stays the single source of truth, and any
    # counters a worker bumps are deliberately local scratch.

    def __getstate__(self) -> dict:
        labels = dict(self.__dict__["_label_values"])
        scope = labels.pop(self._SCOPE)
        return {"scope": scope, "labels": labels}

    def __setstate__(self, state: dict) -> None:
        StatsView.__init__(self, registry=None, scope=state["scope"],
                           **state["labels"])


class StorageStats(StatsView):
    """Counters for physical storage activity (one KV store)."""

    _PREFIX = "repro_storage"
    _SCOPE = "store"
    _COUNTERS = ("disk_reads", "disk_writes", "bytes_read", "bytes_written",
                 "cache_hits", "cache_misses", "checksum_failures",
                 "compressed_puts", "blob_bytes_raw", "blob_bytes_stored")
    _GAUGES = ("compression_ratio",)
    _HELP = {
        "disk_reads": "Physical record reads that reached the log file",
        "disk_writes": "Records appended to the log file",
        "bytes_read": "Payload bytes read from the log file",
        "bytes_written": "Record bytes appended to the log file",
        "cache_hits": "Reads absorbed by the block cache",
        "cache_misses": "Reads the block cache could not serve",
        "checksum_failures": "Records failing CRC or size validation",
        "compressed_puts": "Puts stored under a StreamVByte blob record",
        "blob_bytes_raw": "Uncompressed bytes of compressed-put payloads",
        "blob_bytes_stored": "On-log bytes of compressed-put payloads",
        "compression_ratio": "Live raw bytes / live stored bytes "
                             "(1.0 when nothing is stored)",
    }


class QueryStats(StatsView):
    """Aggregate outcome of an engine's query traffic.

    ``degraded`` is no longer a latched copy: it is derived from the
    backing store at read time, so it appears while the store is
    degraded and clears when the store recovers — ``reset()`` cannot
    lie about a store that is still failing.
    """

    _PREFIX = "repro_query"
    _SCOPE = "engine"
    _COUNTERS = ("total", "filtered", "executed", "positives",
                 "cache_served", "disk_served", "elapsed_seconds")
    _HELP = {
        "total": "Edge queries answered",
        "filtered": 'Queries answered "no edge" by the NDF alone',
        "executed": "Queries that required a storage lookup",
        "positives": "Queried edges that actually existed",
        "cache_served": "This engine's lookups absorbed by the block cache",
        "disk_served": "This engine's lookups that paid a physical read",
        "elapsed_seconds": "Wall-clock seconds spent answering queries",
    }

    def __init__(self, store=None, registry: MetricsRegistry | None = None,
                 scope: str | None = None, **labels: str):
        super().__init__(registry=registry, scope=scope, **labels)
        self.__dict__["_store"] = store

    @property
    def degraded(self) -> bool:
        """Live view of the backing store's fault state."""
        return bool(getattr(self.__dict__.get("_store"), "degraded", False))

    @property
    def filter_rate(self) -> float:
        total = self.total
        return self.filtered / total if total else 0.0


class CacheStats(StatsView):
    """LRU block-cache churn counters plus occupancy gauges."""

    _PREFIX = "repro_cache"
    _SCOPE = "cache"
    _COUNTERS = ("hits", "misses", "evictions", "invalidations")
    _GAUGES = ("entries", "size_bytes")
    _HELP = {
        "hits": "Cache lookups that returned a value",
        "misses": "Cache lookups that found nothing",
        "evictions": "Entries displaced by capacity pressure",
        "invalidations": "Entries dropped deliberately (updates, clears)",
        "entries": "Entries currently cached",
        "size_bytes": "Bytes currently cached",
    }


class TunerStats(StatsView):
    """Adaptive hot-cache tuner: decisions taken and the inputs behind them.

    One scope per tuner.  Counters record *decisions* (ticks, budget
    resizes, maintenance-mode flips); gauges expose the latest
    estimates the decisions were based on, so ``repro stats`` shows not
    just *that* the tuner resized but *why* (skew, observed update
    rate, the budget it converged on).
    """

    _PREFIX = "repro_tuner"
    _SCOPE = "tuner"
    _COUNTERS = ("ticks", "resizes", "mode_switches")
    _GAUGES = ("skew_estimate", "budget_bytes", "update_rate",
               "hit_rate", "rebuild_mode")
    _HELP = {
        "ticks": "Tuner evaluation passes",
        "resizes": "Budget changes applied to hot caches",
        "mode_switches": "Hooks<->rebuild maintenance recommendation flips",
        "skew_estimate": "Latest Zipfian skew estimate (log-log slope)",
        "budget_bytes": "Latest total hot-cache budget chosen",
        "update_rate": "Mutations per second measured over the last tick",
        "hit_rate": "Aggregate hot-cache hit rate at the last tick",
        "rebuild_mode": "1 when batch-rebuild maintenance is recommended, "
                        "0 for incremental hooks",
    }


class MaintenanceStats(StatsView):
    """Counters for VEND update-path behaviour (the Fig. 10 bench)."""

    _PREFIX = "repro_vend"
    _SCOPE = "solution"
    _COUNTERS = ("inserts_noop", "inserts_fast", "inserts_rebuild",
                 "deletes_noop", "deletes_rebuild", "vertex_rebuilds",
                 "alpha_demotions")
    _HELP = {
        "inserts_noop": "Edge inserts where F(u,v) was already 0",
        "inserts_fast": "Inserts appended into an unfilled decodable code",
        "inserts_rebuild": "Inserts that re-encoded one vector",
        "deletes_noop": "Edge deletes that required no re-encoding",
        "deletes_rebuild": "Vectors re-encoded on deletion",
        "vertex_rebuilds": "Vectors re-encoded by vertex deletion",
        "alpha_demotions": "Exactness bits cleared on conversions",
    }


class FaultStats(StatsView):
    """What the fault injector actually did (assertions and reports)."""

    _PREFIX = "repro_faults"
    _SCOPE = "injector"
    _COUNTERS = ("operations", "injected_read_errors",
                 "injected_write_errors", "torn_writes", "retries", "gave_up")
    _HELP = {
        "operations": "Operations routed through the fault injector",
        "injected_read_errors": "Read attempts failed on purpose",
        "injected_write_errors": "Write attempts failed on purpose",
        "torn_writes": "Puts torn mid-record by a simulated crash",
        "retries": "Attempts retried after a transient failure",
        "gave_up": "Operations that exhausted their retry budget",
    }


class DatabaseStats(StatsView):
    """``VendGraphDB`` facade counters: maintenance I/O and rebuilds.

    ``maintenance_reads`` is the counter that keeps index-reconstruction
    fetches out of the query books: every adjacency fetch the VEND
    index performs (insert/delete reconstruction, full rebuilds) lands
    here instead of in any engine's ``cache_served``/``disk_served``.
    """

    _PREFIX = "repro_db"
    _SCOPE = "db"
    _COUNTERS = ("maintenance_reads", "maintenance_disk_reads",
                 "index_rebuilds")
    _HELP = {
        "maintenance_reads": "Adjacency fetches performed for index "
                             "maintenance (cache- or disk-served)",
        "maintenance_disk_reads": "Maintenance fetches that paid a "
                                  "physical read",
        "index_rebuilds": "Full index rebuilds (ID capacity growth)",
    }
