"""Scaled-down synthetic analogues of the paper's six datasets.

The real evaluation graphs (Table I) range up to 988M vertices and
25.6B edges — far beyond what a laptop-scale Python reproduction can
enumerate.  What VEND's behaviour actually depends on is the *degree
distribution shape* (how much of the graph peels below ``k*``, how
dense the surviving core is), so each analogue preserves:

- the paper's **average degree** (As-Sk 13, Wiki 28, Uk 40, Gsh 52,
  Orkut 76, Cage 36);
- the **power-law / non-power-law** character (Cage is near-regular
  with ID-local edges; the rest are heavy-tailed);

at a default size of a few thousand vertices so every benchmark runs
in seconds.  ``scale`` multiplies the vertex count when a larger
instance is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import Graph, banded_regular_graph, powerlaw_graph

__all__ = ["DatasetSpec", "DATASETS", "load", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic analogue.

    ``paper_vertices`` / ``paper_edges`` / ``paper_avg_degree`` record
    Table I's real-dataset statistics for side-by-side reporting.
    """

    name: str
    kind: str                 # "powerlaw" | "banded"
    vertices: int
    avg_degree: float
    power_law: bool
    exponent: float
    bandwidth: int
    seed: int
    description: str
    paper_id_bits: int       # ceil(log2 |V|) of the *real* dataset
    paper_vertices: str
    paper_edges: str
    paper_avg_degree: int


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="as-sk", kind="powerlaw", vertices=8000, avg_degree=13.0,
            power_law=True, exponent=2.2, bandwidth=0, seed=11,
            paper_id_bits=21,
            description="Internet topology from traceroutes (As-Skitter)",
            paper_vertices="1.6M", paper_edges="11.0M", paper_avg_degree=13,
        ),
        DatasetSpec(
            name="wiki", kind="powerlaw", vertices=6000, avg_degree=28.0,
            power_law=True, exponent=2.1, bandwidth=0, seed=12,
            paper_id_bits=21,
            description="Wikipedia hyperlink graph",
            paper_vertices="1.7M", paper_edges="25.4M", paper_avg_degree=28,
        ),
        DatasetSpec(
            name="uk", kind="powerlaw", vertices=6000, avg_degree=40.0,
            power_law=True, exponent=2.0, bandwidth=0, seed=13,
            paper_id_bits=26,
            description=".uk web crawl (UbiCrawler 2005)",
            paper_vertices="39.4M", paper_edges="783.0M", paper_avg_degree=40,
        ),
        DatasetSpec(
            name="gsh", kind="powerlaw", vertices=5000, avg_degree=52.0,
            power_law=True, exponent=1.9, bandwidth=0, seed=14,
            paper_id_bits=30,
            description="2015 web snapshot (BUbiNG)",
            paper_vertices="988.4M", paper_edges="25.6B", paper_avg_degree=52,
        ),
        DatasetSpec(
            name="orkut", kind="powerlaw", vertices=3000, avg_degree=76.0,
            power_law=True, exponent=1.9, bandwidth=0, seed=15,
            paper_id_bits=22,
            description="Orkut online social network",
            paper_vertices="3.0M", paper_edges="117.1M", paper_avg_degree=76,
        ),
        DatasetSpec(
            name="cage", kind="banded", vertices=4000, avg_degree=36.0,
            power_law=False, exponent=0.0, bandwidth=150, seed=16,
            paper_id_bits=21,
            description="CAGE gene-expression tags (non-power-law)",
            paper_vertices="1.5M", paper_edges="27.1M", paper_avg_degree=36,
        ),
    )
}


def dataset_names() -> list[str]:
    """The six analogue names in the paper's Table I order."""
    return list(DATASETS)


def load(name: str, scale: float = 1.0, seed: int | None = None) -> Graph:
    """Build the named analogue; ``scale`` multiplies the vertex count."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(16, round(spec.vertices * scale))
    use_seed = spec.seed if seed is None else seed
    if spec.kind == "banded":
        return banded_regular_graph(
            n, degree=round(spec.avg_degree), bandwidth=spec.bandwidth,
            seed=use_seed,
        )
    # The simple-graph projection of the configuration model drops
    # colliding stubs, landing below the requested mean — calibrate by
    # re-generating with an inflated target until within 10%.
    target = spec.avg_degree
    graph = powerlaw_graph(
        n, avg_degree=target, exponent=spec.exponent, seed=use_seed
    )
    for _ in range(3):
        realized = graph.average_degree()
        if realized >= 0.9 * spec.avg_degree:
            break
        target = min(target * spec.avg_degree / max(realized, 1.0), n / 3)
        graph = powerlaw_graph(
            n, avg_degree=target, exponent=spec.exponent, seed=use_seed
        )
    return graph
