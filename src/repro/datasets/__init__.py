"""Synthetic analogues of the paper's evaluation datasets."""

from .registry import DATASETS, DatasetSpec, dataset_names, load

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "load"]
