"""Plain-text result tables for the benchmark harness.

Every benchmark renders its output in the same row/column shape as the
paper's table or figure, writes it under ``benchmarks/results/``, and
echoes it to stdout so ``pytest -s`` (or the captured report) shows the
paper-vs-measured comparison directly.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["Table", "format_bytes", "format_seconds"]


class Table:
    """A fixed-column text table with a title and optional notes."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []
        self.notes: list[str] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)}"
            )
        self.rows.append([str(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        parts = [self.title, "=" * len(self.title), line(self.columns),
                 line(["-" * w for w in widths])]
        parts.extend(line(row) for row in self.rows)
        for note in self.notes:
            parts.append(f"* {note}")
        return "\n".join(parts) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write the rendered table; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path

    def emit(self, path: str | Path) -> None:
        """Save and also echo to stdout."""
        self.save(path)
        print()
        print(self.render())


def format_bytes(num: int) -> str:
    """Human-readable byte counts (paper-style: 13M, 5.83G)."""
    value = float(num)
    for unit in ("B", "K", "M", "G", "T"):
        if value < 1000 or unit == "T":
            if unit == "B":
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}" if value < 10 else f"{value:.0f}{unit}"
        value /= 1024
    return f"{num}B"


def format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120:
        return f"{seconds:.2f}s"
    return f"{seconds / 60:.1f}min"
