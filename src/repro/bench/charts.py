"""Text bar charts for figure-style benchmark output.

The paper's Figs. 7-10 are grouped bar charts; the benchmarks persist
their numbers as tables *and* as these ASCII charts so a results file
reads like the figure it reproduces.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["BarChart"]


class BarChart:
    """A horizontal grouped bar chart rendered in plain text."""

    def __init__(self, title: str, width: int = 50,
                 max_value: float | None = None, unit: str = ""):
        if width < 10:
            raise ValueError("width must be >= 10")
        self.title = title
        self.width = width
        self.max_value = max_value
        self.unit = unit
        self._groups: list[tuple[str, list[tuple[str, float]]]] = []

    def add_group(self, label: str, bars: list[tuple[str, float]]) -> None:
        """One group (e.g. a dataset) of labeled bars (e.g. methods)."""
        if not bars:
            raise ValueError("a group needs at least one bar")
        self._groups.append((label, list(bars)))

    def render(self) -> str:
        if not self._groups:
            return f"{self.title}\n(no data)\n"
        peak = self.max_value
        if peak is None:
            peak = max(
                value for _, bars in self._groups for _, value in bars
            )
        peak = max(peak, 1e-12)
        name_width = max(
            len(name) for _, bars in self._groups for name, _ in bars
        )
        lines = [self.title, "=" * len(self.title)]
        for label, bars in self._groups:
            lines.append(f"{label}:")
            for name, value in bars:
                filled = round(min(value / peak, 1.0) * self.width)
                bar = "#" * filled + "." * (self.width - filled)
                lines.append(
                    f"  {name.ljust(name_width)} |{bar}| "
                    f"{value:g}{self.unit}"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.render())
        return path
