"""Shared machinery for the experiment benchmarks.

Each benchmark file under ``benchmarks/`` reproduces one table or
figure of the paper.  This module centralizes what they all need:
solution factories (VEND versions + Bloom comparators), the dataset
sweep, scale control, and result-directory resolution.

Scale control: set ``REPRO_BENCH_SCALE`` (default 0.5) to grow or
shrink every dataset, and ``REPRO_BENCH_PAIRS`` (default 20000) for the
pair-sample sizes.  The defaults keep the full suite at a few minutes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable

from ..core import (
    BitHashVend,
    HashVend,
    HybPlusVend,
    HybridVend,
    PartialVend,
    RangeVend,
)
from ..datasets import load
from ..filters import (
    BlockedBloomFilter,
    CountingBloomFilter,
    LocalBloomFilter,
    StandardBloomFilter,
)
from ..graph import Graph

__all__ = [
    "SOLUTION_FACTORIES",
    "FIGURE_METHODS",
    "bench_scale",
    "bench_pairs",
    "load_dataset",
    "make_solution",
    "paper_id_bits",
    "results_dir",
    "timed",
]

#: name -> factory(k) for everything that can answer ``is_nonedge``.
SOLUTION_FACTORIES: dict[str, Callable[[int], object]] = {
    "partial": lambda k: PartialVend(k=k),
    "range": lambda k: RangeVend(k=k),
    "hash": lambda k: HashVend(k=k),
    "bit-hash": lambda k: BitHashVend(k=k),
    "hybrid": lambda k: HybridVend(k=k),
    "hyb+": lambda k: HybPlusVend(k=k),
    "SBF": lambda k: StandardBloomFilter(k=k),
    "BBF": lambda k: BlockedBloomFilter(k=k),
    "CBF": lambda k: CountingBloomFilter(k=k),
    "LBF": lambda k: LocalBloomFilter(k=k),
}

#: The method lineup of Figs. 7-9 (ordered as the paper's legends).
FIGURE_METHODS = ["range", "bit-hash", "LBF", "BBF", "SBF", "hybrid", "hyb+"]

_DATASET_CACHE: dict[tuple[str, float], Graph] = {}


def bench_scale() -> float:
    """Dataset scale multiplier for benchmark runs."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_pairs() -> int:
    """Pair-sample size for score/query benchmarks."""
    return int(os.environ.get("REPRO_BENCH_PAIRS", "20000"))


def load_dataset(name: str, scale: float | None = None) -> Graph:
    """Load (and memoize) a dataset analogue at the bench scale."""
    effective = bench_scale() if scale is None else scale
    key = (name, effective)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = load(name, scale=effective)
    return _DATASET_CACHE[key]


def make_solution(method: str, k: int, graph: Graph,
                  id_bits: int | None = None):
    """Build a ready-to-query solution/filter for ``graph``.

    ``id_bits`` fixes the hybrid/hyb+ ``I'`` to the *paper's* universe
    width (see ``DatasetSpec.paper_id_bits``): the analogues have small
    IDs, and letting I' shrink would inflate ``k*`` and distort the
    encoded-vertex ratios relative to Table I.
    """
    solution = SOLUTION_FACTORIES[method](k)
    if id_bits is not None and isinstance(solution, HybridVend):
        solution._requested_id_bits = min(id_bits, solution.int_bits)
    solution.build(graph)
    return solution


def paper_id_bits(name: str) -> int:
    """The real dataset's ID width, from the registry."""
    from ..datasets import DATASETS

    return DATASETS[name].paper_id_bits


def results_dir() -> Path:
    """``benchmarks/results`` next to the benchmark files."""
    override = os.environ.get("REPRO_BENCH_RESULTS")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
