"""Benchmark harness: solution factories, datasets, result tables."""

from .harness import (
    FIGURE_METHODS,
    SOLUTION_FACTORIES,
    bench_pairs,
    bench_scale,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from .charts import BarChart
from .tables import Table, format_bytes, format_seconds

__all__ = [
    "FIGURE_METHODS",
    "SOLUTION_FACTORIES",
    "bench_pairs",
    "bench_scale",
    "load_dataset",
    "make_solution",
    "paper_id_bits",
    "results_dir",
    "timed",
    "Table",
    "BarChart",
    "format_bytes",
    "format_seconds",
]
