"""VEND-score estimation — Definition 5 and Section VII-B.

The exact score needs every NEpair, which is quadratic; the paper
instead samples vertex pairs (random, and common-neighbor for locality)
and reports the detected fraction.  :func:`vend_score` does the same
over any pair sample, and :func:`exact_vend_score` enumerates all pairs
for the small graphs used in tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..graph import Graph
from .base import NonedgeFilter

__all__ = ["ScoreReport", "vend_score", "exact_vend_score"]


@dataclass(frozen=True)
class ScoreReport:
    """Outcome of a score evaluation.

    ``score`` is detected / nepairs (1.0 when the sample held none);
    ``false_positives`` must be 0 for any correct solution and is
    surfaced so harnesses can assert the soundness contract.
    """

    nepairs: int
    detected: int
    false_positives: int
    pairs_evaluated: int

    @property
    def score(self) -> float:
        return self.detected / self.nepairs if self.nepairs else 1.0


def vend_score(solution: NonedgeFilter, graph: Graph,
               pairs: list[tuple[int, int]]) -> ScoreReport:
    """Evaluate Definition 5 over a sampled pair set."""
    nepairs = detected = false_positives = evaluated = 0
    for u, v in pairs:
        if u == v:
            continue
        evaluated += 1
        claim = solution.is_nonedge(u, v)
        if graph.has_edge(u, v):
            if claim:
                false_positives += 1
        else:
            nepairs += 1
            if claim:
                detected += 1
    return ScoreReport(nepairs, detected, false_positives, evaluated)


def exact_vend_score(solution: NonedgeFilter, graph: Graph) -> ScoreReport:
    """Evaluate the score over every unordered vertex pair (small graphs)."""
    vertices = sorted(graph.vertices())
    pairs = list(itertools.combinations(vertices, 2))
    return vend_score(solution, graph, pairs)
