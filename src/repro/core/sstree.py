"""SIMD-oriented search tree (SS-tree) — Section VI-A.

An SS-tree over a block ``B`` is a *complete* search tree whose nodes
hold ``s`` sorted keys each (``s`` = the SIMD scalar value): the
interior of the block, ``B⁻ = B minus its min and max``, is arranged so
that a membership probe visits ``O(log_s |B⁻|)`` nodes and each node is
testable with one ``s``-lane compare.

Construction follows Algorithm 3: the topology is fully determined by
the node count ``ceil(|B⁻|/s)`` (complete ``(s+1)``-ary shape, BFS node
IDs), and keys are placed by an in-order walk so the search property
holds.  The array implementation ``P_B`` (Fig. 5c) lays out
``[min, max, node_1 keys, node_2 keys, …]`` — the permutation the hyb+
encoder compresses.
"""

from __future__ import annotations

from .. import simd

__all__ = ["SSTree"]


class SSTree:
    """A complete s-ary search tree over a sorted block.

    Parameters
    ----------
    block:
        The neighbor block ``B`` in ascending order, ``|B| >= 2``
        (the two extremes become ``P_B[0]`` / ``P_B[1]``; the rest form
        the tree).  Blocks of size < 2 have an empty tree.
    scalar:
        Keys per node, the SIMD width ``s`` (4 for SSE, Section VI-B).
    """

    def __init__(self, block: list[int], scalar: int = 4):
        if scalar < 2:
            raise ValueError("scalar value s must be >= 2")
        if any(block[i] >= block[i + 1] for i in range(len(block) - 1)):
            raise ValueError("block must be strictly ascending")
        self.scalar = scalar
        self.block = list(block)
        if len(block) >= 2:
            self.head, self.tail = block[0], block[-1]
            interior = block[1:-1]
        elif len(block) == 1:
            self.head = self.tail = block[0]
            interior = []
        else:
            raise ValueError("block must be non-empty")
        self.num_nodes = -(-len(interior) // scalar) if interior else 0
        #: node_keys[i] holds the sorted keys of the node with ID i+1.
        self.node_keys: list[list[int]] = [[] for _ in range(self.num_nodes)]
        if interior:
            self._assign_keys(interior)

    # -- construction ------------------------------------------------------------

    def _key_count(self, node_id: int) -> int:
        """Keys in node ``node_id`` (1-based): all full but the last."""
        if node_id < self.num_nodes:
            return self.scalar
        return len(self.block) - 2 - self.scalar * (self.num_nodes - 1)

    def child_id(self, node_id: int, branch: int) -> int | None:
        """BFS child ID for ``branch`` in ``1..s+1`` (None if absent)."""
        child = (node_id - 1) * (self.scalar + 1) + branch + 1
        return child if child <= self.num_nodes else None

    def _assign_keys(self, interior: list[int]) -> None:
        """In-order key placement (Algorithm 3's SetElements)."""
        cursor = 0

        def assign(node_id: int) -> None:
            nonlocal cursor
            keys = self.node_keys[node_id - 1]
            count = self._key_count(node_id)
            for branch in range(1, count + 1):
                child = self.child_id(node_id, branch)
                if child is not None:
                    assign(child)
                keys.append(interior[cursor])
                cursor += 1
            last_child = self.child_id(node_id, count + 1)
            if last_child is not None:
                assign(last_child)

        assign(1)
        assert cursor == len(interior)

    # -- views ---------------------------------------------------------------------

    def permutation(self) -> list[int]:
        """The array layout ``P_B``: ``[min, max, node_1, node_2, …]``."""
        if not self.block:
            return []
        if len(self.block) == 1:
            return [self.head]
        flat = [self.head, self.tail]
        for keys in self.node_keys:
            flat.extend(keys)
        return flat

    @property
    def depth(self) -> int:
        """Number of levels in the tree (0 when empty)."""
        depth, node_id = 0, 1
        while node_id <= self.num_nodes:
            depth += 1
            node_id = (node_id - 1) * (self.scalar + 1) + 2
        return depth

    # -- search -----------------------------------------------------------------

    def contains(self, value: int) -> bool:
        """Membership of ``value`` in the whole block ``B`` (tree search).

        Uses the SIMD lane ops: one compare for membership, one
        masked-count for branch selection per visited node.
        """
        if not self.block:
            return False
        if value == self.head or value == self.tail:
            return True
        node_id: int | None = 1
        while node_id is not None and node_id <= self.num_nodes:
            keys = self.node_keys[node_id - 1]
            register = simd.lanes(keys, width=self.scalar)
            active = len(keys)
            if simd.simd_any(simd.simd_compare_eq(register[:active], value)):
                return True
            branch = simd.simd_count_lt(register, value, active) + 1
            node_id = self.child_id(node_id, branch)
        return False

    def __len__(self) -> int:
        return len(self.block)

    def __repr__(self) -> str:
        return (
            f"SSTree(|B|={len(self.block)}, s={self.scalar}, "
            f"nodes={self.num_nodes})"
        )
