"""Index introspection and score diagnostics.

Operators tuning ``k`` / ``I'`` need to see *why* an index scores the
way it does: how much of the graph peeled into exact codes, what block
types the core vertices chose, how saturated the hash slots are, and
which pair classes (peeled/peeled, mixed, core/core) lose detections.
This module reads built hybrid-family indexes and answers exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph import Graph
from .blocks import BLOCK_EMPTY, BLOCK_LEFT, BLOCK_MIDDLE, BLOCK_RIGHT
from .hybrid import HybridVend

__all__ = [
    "CodeDescription",
    "IndexStatistics",
    "PairClassScores",
    "describe_code",
    "index_statistics",
    "score_breakdown",
]

_KIND_NAMES = {
    BLOCK_LEFT: "leftmost",
    BLOCK_MIDDLE: "middle",
    BLOCK_RIGHT: "rightmost",
    BLOCK_EMPTY: "empty",
}


@dataclass(frozen=True)
class CodeDescription:
    """Human-readable breakdown of one vertex's code."""

    vertex: int
    decodable: bool
    exact: bool
    nt_size: int
    #: Decodable codes: the recorded neighbor IDs.
    recorded_ids: tuple[int, ...] = ()
    #: Core codes: block type name, |B|, range, slot occupancy.
    block_kind: str | None = None
    block_size: int | None = None
    block_range: tuple[int, int] | None = None
    slot_bits: int | None = None
    slot_occupancy: float | None = None


@dataclass
class IndexStatistics:
    """Aggregate view over a whole built index."""

    num_codes: int = 0
    decodable_codes: int = 0
    exact_codes: int = 0
    block_kind_counts: dict[str, int] = field(default_factory=dict)
    mean_block_size: float = 0.0
    mean_slot_occupancy: float = 0.0
    mean_nt_fraction: float = 0.0
    memory_bytes: int = 0

    @property
    def decodable_fraction(self) -> float:
        return self.decodable_codes / self.num_codes if self.num_codes else 0.0


@dataclass
class PairClassScores:
    """Detection rate per pair class (who limits the score?)."""

    decodable_decodable: float = 1.0
    mixed: float = 1.0
    core_core: float = 1.0
    class_counts: dict[str, int] = field(default_factory=dict)


def describe_code(solution: HybridVend, v: int) -> CodeDescription:
    """Decode and summarize ``f^hyb(v)`` / ``f^hyb+(v)``."""
    code = solution.code_of(v)
    exact = bool(code.get_bit(solution._EXACT_BIT))
    nt = solution.nt_size(code)
    if code.get_bit(0) == 0:
        return CodeDescription(
            vertex=v, decodable=True, exact=exact, nt_size=nt,
            recorded_ids=tuple(solution.decoded_ids(v)),
        )
    kind = code.read_field(2, 2)
    size = code.read_field(4, solution.count_bits)
    # The slot begins where the layout says it does; hyb+ layouts are
    # self-describing, so lean on the class's own parser when present.
    if hasattr(solution, "_parse_core"):
        parsed = solution._parse_core(code)
        head, tail = parsed[2], parsed[3]
        slot_offset, m = parsed[-2], parsed[-1]
    else:  # pragma: no cover - both classes define _parse_core or not
        head = tail = None
        slot_offset = solution._core_header + size * solution.id_bits
        m = solution.total_bits - slot_offset
    if size > 0 and head is None:
        members = solution._read_ids(code, solution._core_header, size)
        head, tail = members[0], members[-1]
    occupancy = code.popcount(slot_offset, m) / m if m else 0.0
    block_range = None
    if size > 0:
        block_range = (head, tail)
    return CodeDescription(
        vertex=v, decodable=False, exact=exact, nt_size=nt,
        block_kind=_KIND_NAMES.get(kind, f"?{kind}"), block_size=size,
        block_range=block_range, slot_bits=m, slot_occupancy=occupancy,
    )


def index_statistics(solution: HybridVend,
                     sample: list[int] | None = None) -> IndexStatistics:
    """Aggregate code statistics; ``sample`` restricts the vertices."""
    stats = IndexStatistics(memory_bytes=solution.memory_bytes())
    vertices = sample if sample is not None else sorted(solution._codes)
    universe = max(1, solution._max_id)
    block_sizes: list[int] = []
    occupancies: list[float] = []
    nt_fractions: list[float] = []
    for v in vertices:
        description = describe_code(solution, v)
        stats.num_codes += 1
        nt_fractions.append(description.nt_size / universe)
        if description.decodable:
            stats.decodable_codes += 1
        else:
            kind = description.block_kind or "?"
            stats.block_kind_counts[kind] = (
                stats.block_kind_counts.get(kind, 0) + 1
            )
            block_sizes.append(description.block_size or 0)
            occupancies.append(description.slot_occupancy or 0.0)
        if description.exact:
            stats.exact_codes += 1
    if block_sizes:
        stats.mean_block_size = sum(block_sizes) / len(block_sizes)
    if occupancies:
        stats.mean_slot_occupancy = sum(occupancies) / len(occupancies)
    if nt_fractions:
        stats.mean_nt_fraction = sum(nt_fractions) / len(nt_fractions)
    return stats


def score_breakdown(solution: HybridVend, graph: Graph,
                    pairs: list[tuple[int, int]]) -> PairClassScores:
    """Detection rate of NEpairs split by code-class of the endpoints."""
    detected = {"dec-dec": 0, "mixed": 0, "core-core": 0}
    totals = {"dec-dec": 0, "mixed": 0, "core-core": 0}
    for u, v in pairs:
        if u == v or graph.has_edge(u, v):
            continue
        if u not in solution._codes or v not in solution._codes:
            continue
        dec_u = solution.is_decodable(u)
        dec_v = solution.is_decodable(v)
        if dec_u and dec_v:
            key = "dec-dec"
        elif dec_u or dec_v:
            key = "mixed"
        else:
            key = "core-core"
        totals[key] += 1
        if solution.is_nonedge(u, v):
            detected[key] += 1

    def rate(key: str) -> float:
        return detected[key] / totals[key] if totals[key] else 1.0

    return PairClassScores(
        decodable_decodable=rate("dec-dec"),
        mixed=rate("mixed"),
        core_core=rate("core-core"),
        class_counts=dict(totals),
    )
