"""Columnar batch evaluation of the hybrid NDF.

Analytical pipelines (triangle counting, matching, bulk scoring) issue
millions of determinations; calling ``is_nonedge`` one pair at a time
pays Python dispatch per query.  ``ColumnarIndex`` snapshots a built
hybrid/hyb+ index into numpy columns — flags, exactness, block
geometry, padded member matrices, and the raw code bits as uint64
words — and evaluates whole pair batches with array operations: the
data-parallel execution the paper's SIMD section is about, applied at
the query level.

The snapshot is read-only; rebuild it after maintenance batches.
"""

from __future__ import annotations

import numpy as np

from .base import endpoint_arrays
from .blocks import BLOCK_LEFT, BLOCK_MIDDLE, BLOCK_RIGHT
from .hybrid import HybridVend

__all__ = ["ColumnarIndex"]

#: Sentinel member value: IDs are < 2^32, so the all-ones uint32 can
#: only collide with a (pathological) max-universe vertex, and a
#: collision merely loses a detection — never soundness.
_NO_MEMBER = np.uint32(0xFFFFFFFF)


class ColumnarIndex:
    """Vectorized, read-only snapshot of a hybrid-family index."""

    def __init__(self, solution: HybridVend):
        if solution.id_bits == 0:
            raise ValueError("snapshot requires a built index")
        self.k = solution.k
        vertices = sorted(solution._codes)
        n = len(vertices)
        max_id = max(vertices) if vertices else 0
        self._position = np.full(max_id + 2, -1, dtype=np.int64)
        self._position[vertices] = np.arange(n)
        width = max(1, solution.k_star)

        self._flags = np.zeros(n, dtype=np.uint8)
        self._exact = np.zeros(n, dtype=bool)
        self._kinds = np.zeros(n, dtype=np.uint8)
        self._lo = np.zeros(n, dtype=np.int64)
        self._hi = np.zeros(n, dtype=np.int64)
        # Transposed member matrix: one contiguous row per member slot,
        # probed slot-by-slot so a batch never materializes an
        # (n_pairs, width) gather.
        self._members = np.full((width, n), _NO_MEMBER, dtype=np.uint32)
        self._slot_offset = np.zeros(n, dtype=np.int64)
        self._slot_size = np.ones(n, dtype=np.int64)
        words = (solution.total_bits + 63) // 64
        self._words = np.zeros((n, words), dtype=np.uint64)

        for row, v in enumerate(vertices):
            code = solution._codes[v]
            raw = int(code.value)
            for w in range(words):
                self._words[row, w] = (raw >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
            self._exact[row] = bool(code.get_bit(solution._EXACT_BIT))
            if code.get_bit(0) == 0:
                ids = solution.decoded_ids(v)
                self._members[:len(ids), row] = ids
                continue
            self._flags[row] = 1
            kind, members, slot_offset, m = solution.core_layout(code)
            self._kinds[row] = kind
            self._members[:len(members), row] = members
            if members:
                self._lo[row] = members[0]
                self._hi[row] = members[-1]
            self._slot_offset[row] = slot_offset
            self._slot_size[row] = m

    @property
    def num_codes(self) -> int:
        return len(self._flags)

    # -- vectorized primitives ----------------------------------------------------

    def _rows_of(self, ids: np.ndarray) -> np.ndarray:
        """Dense row index per vertex ID (-1 for unknown IDs)."""
        clipped = np.clip(ids, 0, len(self._position) - 1)
        rows = self._position[clipped]
        rows[(ids < 0) | (ids >= len(self._position))] = -1
        return rows

    def _ne_test(self, probes: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Vectorized Definition-8 NE-test: probes[i] vs code rows[i]."""
        safe = np.maximum(rows, 0)
        # Probe the member slots one contiguous row at a time: k_star
        # cheap uint32 gathers instead of one (n_pairs, width) uint64
        # materialization.  Out-of-range probes clip onto the sentinel,
        # which only ever yields the conservative "not certain" answer.
        probes32 = np.clip(probes, 0, int(_NO_MEMBER)).astype(np.uint32)
        is_member = np.zeros(len(probes), dtype=bool)
        for slot in self._members:
            is_member |= slot.take(safe) == probes32
        flags = self._flags[safe]
        kinds = self._kinds[safe]
        lo, hi = self._lo[safe], self._hi[safe]
        in_range = np.zeros(len(probes), dtype=bool)
        core = flags == 1
        in_range |= core & (kinds == BLOCK_LEFT) & (probes <= hi)
        in_range |= core & (kinds == BLOCK_RIGHT) & (probes >= lo)
        in_range |= core & (kinds == BLOCK_MIDDLE) & (probes >= lo) & (probes <= hi)
        # Hash-slot bit lookup for the out-of-range core probes.
        bit_index = self._slot_offset[safe] + probes % self._slot_size[safe]
        word = self._words[safe, bit_index // 64]
        bit = (word >> (bit_index % 64).astype(np.uint64)) & np.uint64(1)
        hash_miss = bit == 0
        return np.where(
            flags == 0,
            ~is_member,                       # decodable: explicit list
            np.where(in_range, ~is_member, hash_miss),
        )

    # -- public API --------------------------------------------------------------

    def query_batch(self, pairs_u, pairs_v) -> np.ndarray:
        """``F^hyb`` over aligned arrays of endpoints.

        Returns a bool array: True = certainly no edge.  Unknown
        vertices and self-pairs answer False, matching the scalar path.
        """
        us = np.asarray(pairs_u, dtype=np.int64)
        vs = np.asarray(pairs_v, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must be aligned")
        rows_u = self._rows_of(us)
        rows_v = self._rows_of(vs)
        valid = (rows_u >= 0) & (rows_v >= 0) & (us != vs)
        pass_v_in_u = self._ne_test(vs, rows_u)  # v against f(u)
        pass_u_in_v = self._ne_test(us, rows_v)  # u against f(v)
        flags_u = self._flags[np.maximum(rows_u, 0)]
        flags_v = self._flags[np.maximum(rows_v, 0)]
        exact_u = self._exact[np.maximum(rows_u, 0)]
        exact_v = self._exact[np.maximum(rows_v, 0)]

        both = pass_v_in_u & pass_u_in_v
        # Mixed flags: the decodable side's α-exact one-sided test.
        mixed = flags_u != flags_v
        u_dec = mixed & (flags_u == 0)
        v_dec = mixed & (flags_v == 0)
        mixed_result = np.where(
            u_dec & exact_u, pass_v_in_u,
            np.where(v_dec & exact_v, pass_u_in_v, both),
        )
        # Core/core: exact one-sided OR, else conjunction.
        core_core = (flags_u == 1) & (flags_v == 1)
        core_result = (
            (exact_u & pass_v_in_u) | (exact_v & pass_u_in_v) | both
        )
        result = np.where(
            mixed, mixed_result, np.where(core_core, core_result, both)
        )
        return result & valid

    def query_pairs(self, pairs: list[tuple[int, int]]) -> np.ndarray:
        """Convenience wrapper over a list of ``(u, v)`` tuples."""
        if not pairs:
            return np.zeros(0, dtype=bool)
        array = np.asarray(pairs, dtype=np.int64)
        return self.query_batch(array[:, 0], array[:, 1])

    # -- NonedgeFilter interface --------------------------------------------------
    # A snapshot can serve directly as an EdgeQueryEngine filter: the
    # batched pipeline then skips even the owning solution's dispatch.

    def is_nonedge(self, u: int, v: int) -> bool:
        """Scalar NDF over the snapshot (NonedgeFilter conformance)."""
        return bool(self.query_batch(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
        )[0])

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Batch NDF over the snapshot (NonedgeFilter conformance)."""
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        return self.query_batch(us, vs)

    def memory_bytes(self) -> int:
        """Bytes held by the snapshot's arrays."""
        return (
            self._position.nbytes + self._flags.nbytes + self._exact.nbytes
            + self._kinds.nbytes + self._lo.nbytes + self._hi.nbytes
            + self._members.nbytes + self._slot_offset.nbytes
            + self._slot_size.nbytes + self._words.nbytes
        )
