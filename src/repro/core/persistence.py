"""Save / load built VEND indexes.

A graph database restarts; the in-memory codes must come back without
a full re-encode (Gsh's build takes the paper 23.6 hours).  The format
is a small self-describing binary file:

``REPROVND`` magic, format version, solution name, layout parameters
(k, I, I', max ID, SS-tree scalar), a CRC32 of the header fields, then
one ``(vertex id, code)`` record per vertex with codes packed at
``k*I/8`` bytes.

Because the saved index is exactly the artifact that exists to avoid a
23.6-hour rebuild, :func:`save_index` is crash-safe: bytes stream into
a ``<name>.tmp`` sibling which is flushed, fsynced, and atomically
swapped in with ``os.replace`` — an interrupted save leaves the
previous good index untouched.  :func:`load_index` verifies the header
checksum (format v2; v1 files without one still load).

Only the hybrid family is persistable — the baselines rebuild in
seconds and the Bloom comparators are not part of the product surface.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

from .bitvector import BitVector
from .hybplus import HybPlusVend
from .hybrid import HybridVend

__all__ = ["save_index", "load_index", "IndexFormatError"]

_MAGIC = b"REPROVND"
_VERSION = 2
_HEADER_PREFIX = struct.Struct("<8sHH16sHHHHQQ")
# magic, version, reserved, name, k, int_bits, id_bits, scalar,
# max_id, num_codes
_HEADER_CRC = struct.Struct("<I")  # crc32 of the packed prefix (v2 only)


class IndexFormatError(RuntimeError):
    """The file is not a valid VEND index of a supported version."""


def save_index(solution: HybridVend, path: str | Path) -> int:
    """Serialize a built hybrid/hyb+ index; returns bytes written.

    The write is atomic: a crash at any point leaves either the old
    file or the new one at ``path``, never a torn mixture.  Raises
    ``ValueError`` for an unbuilt index (nothing to save).
    """
    if not isinstance(solution, HybridVend):
        raise TypeError(f"cannot persist a {type(solution).__name__}")
    if solution.id_bits == 0:
        raise ValueError("index has not been built; nothing to save")
    scalar = getattr(solution, "scalar", 0)
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    written = 0
    try:
        with open(tmp_path, "wb") as handle:
            prefix = _HEADER_PREFIX.pack(
                _MAGIC, _VERSION, 0, solution.name.encode().ljust(16, b"\0"),
                solution.k, solution.int_bits, solution.id_bits, scalar,
                solution._max_id, solution.num_codes,
            )
            header = prefix + _HEADER_CRC.pack(zlib.crc32(prefix))
            handle.write(header)
            written += len(header)
            for v in sorted(solution._codes):
                record = struct.pack("<Q", v) + solution._codes[v].to_bytes()
                handle.write(record)
                written += len(record)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    try:
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise
    return written


def load_index(path: str | Path) -> HybridVend:
    """Reconstruct a hybrid/hyb+ index saved by :func:`save_index`.

    Accepts the current checksummed v2 header and the original v1
    header (no checksum) for files written before the format bump.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER_PREFIX.size:
        raise IndexFormatError(f"{path}: truncated header")
    (magic, version, _reserved, raw_name, k, int_bits, id_bits, scalar,
     max_id, num_codes) = _HEADER_PREFIX.unpack_from(data)
    if magic != _MAGIC:
        raise IndexFormatError(f"{path}: bad magic {magic!r}")
    if version == 1:
        header_size = _HEADER_PREFIX.size
    elif version == _VERSION:
        header_size = _HEADER_PREFIX.size + _HEADER_CRC.size
        if len(data) < header_size:
            raise IndexFormatError(f"{path}: truncated header")
        (stored_crc,) = _HEADER_CRC.unpack_from(data, _HEADER_PREFIX.size)
        if zlib.crc32(data[:_HEADER_PREFIX.size]) != stored_crc:
            raise IndexFormatError(f"{path}: header checksum mismatch")
    else:
        raise IndexFormatError(f"{path}: unsupported version {version}")
    name = raw_name.rstrip(b"\0").decode()
    if name == "hybrid":
        solution: HybridVend = HybridVend(
            k=k, int_bits=int_bits, id_bits=id_bits
        )
    elif name == "hyb+":
        solution = HybPlusVend(
            k=k, int_bits=int_bits, id_bits=id_bits, scalar=scalar
        )
    else:
        raise IndexFormatError(f"{path}: unknown solution {name!r}")
    solution._configure_layout(max(max_id, 1))
    solution._max_id = max_id
    code_bytes = solution.total_bits // 8
    record = struct.Struct(f"<Q{code_bytes}s")
    expected = header_size + num_codes * record.size
    if len(data) != expected:
        raise IndexFormatError(
            f"{path}: expected {expected} bytes, found {len(data)}"
        )
    offset = header_size
    for _ in range(num_codes):
        v, blob = record.unpack_from(data, offset)
        solution._codes[v] = BitVector.from_bytes(blob, solution.total_bits)
        offset += record.size
    return solution
