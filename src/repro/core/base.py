"""Common VEND interfaces, registry, and shared helpers.

Every solution (range, hash, bit-hash, hybrid, hyb+) and every Bloom
comparator implements :class:`NonedgeFilter`: a ``is_nonedge(u, v)``
predicate that may return True **only** for pairs with no edge (the
soundness contract of Definition 4), plus maintenance hooks.

``NeighborFetch`` is how maintenance reaches graph storage: hybrid
deletion on non-decodable vectors must re-read ``N_G(v)`` from disk,
and the fetch counter lets benchmarks report that cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Protocol

import numpy as np

from ..graph import Graph

__all__ = [
    "NonedgeFilter",
    "VendSolution",
    "NeighborFetch",
    "GraphNeighborFetch",
    "register_solution",
    "create_solution",
    "available_solutions",
    "endpoint_arrays",
    "nonedge_batch_mask",
]


def endpoint_arrays(pairs_u, pairs_v=None) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a pair batch to two aligned ``int64`` endpoint arrays.

    Accepts either two aligned endpoint sequences, or (when ``pairs_v``
    is None) a single sequence of ``(u, v)`` tuples / an ``(n, 2)``
    array.
    """
    if pairs_v is None:
        pairs = np.asarray(pairs_u, dtype=np.int64)
        if pairs.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pair batch must be a sequence of (u, v) pairs")
        return pairs[:, 0], pairs[:, 1]
    us = np.asarray(pairs_u, dtype=np.int64)
    vs = np.asarray(pairs_v, dtype=np.int64)
    if us.shape != vs.shape or us.ndim != 1:
        raise ValueError("endpoint arrays must be aligned 1-D sequences")
    return us, vs


def nonedge_batch_mask(filt: "NonedgeFilter", pairs_u, pairs_v=None) -> np.ndarray:
    """Batch-evaluate any :class:`NonedgeFilter` over a pair batch.

    Uses the filter's vectorized ``is_nonedge_batch`` when it has one
    (every :class:`VendSolution` does); otherwise falls back to the
    scalar predicate so Bloom comparators keep working unchanged.
    """
    us, vs = endpoint_arrays(pairs_u, pairs_v)
    batch = getattr(filt, "is_nonedge_batch", None)
    if batch is not None:
        return np.asarray(batch(us, vs), dtype=bool)
    return np.fromiter(
        (filt.is_nonedge(int(u), int(v))
         for u, v in zip(us.tolist(), vs.tolist())),
        dtype=bool, count=len(us),
    )

NeighborFetch = Callable[[int], list[int]]


class GraphNeighborFetch:
    """Neighbor fetch backed by an in-memory graph, with a counter.

    Maintenance code calls this when it must recover a full neighbor
    set; ``fetches`` counts those storage round-trips.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.fetches = 0

    def __call__(self, v: int) -> list[int]:
        self.fetches += 1
        return self.graph.sorted_neighbors(v)


class NonedgeFilter(Protocol):
    """Anything that can veto edge queries (VEND solutions, Bloom filters)."""

    def is_nonedge(self, u: int, v: int) -> bool:
        """True only if ``(u, v)`` is certainly not an edge."""
        ...


class VendSolution(ABC):
    """Base class for VEND solutions.

    Subclasses set :attr:`name`, build codes in :meth:`build`, and
    answer :meth:`is_nonedge` in ``O(k)``.  Solutions that support
    dynamic graphs also implement the ``insert_edge`` / ``delete_edge``
    / ``insert_vertex`` / ``delete_vertex`` hooks; the base versions
    raise ``NotImplementedError`` so static baselines stay honest.
    """

    #: Registry key, e.g. ``"hybrid"``.
    name: str = "abstract"

    #: Whether the insert/delete hooks are implemented.  Registered
    #: solutions must declare this (or define the hooks) explicitly —
    #: the R002 lint rule does not count this base default — and the
    #: soundness auditor uses it to pick hook-driven maintenance vs.
    #: rebuild-on-mutation.
    supports_maintenance: bool = False

    def __init__(self, k: int, int_bits: int = 32):
        if k < 1:
            raise ValueError("dimension number k must be >= 1")
        if int_bits not in (8, 16, 32, 64):
            raise ValueError("int_bits must be one of 8, 16, 32, 64")
        self.k = k
        self.int_bits = int_bits
        #: Cached vectorized snapshot; rebuilt lazily after invalidation.
        self._batch_index: object | None = None

    @property
    def total_bits(self) -> int:
        """Bits per vertex code: ``k * I`` (Section V-C1)."""
        return self.k * self.int_bits

    @abstractmethod
    def build(self, graph: Graph) -> None:
        """Encode every vertex of ``graph`` from scratch."""

    @abstractmethod
    def is_nonedge(self, u: int, v: int) -> bool:
        """The NDF: True only when ``(u, v)`` is certainly an NEpair."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Bytes held by the in-memory encoding."""

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Answer a batch of pair determinations as a bool array.

        Accepts aligned endpoint arrays (``pairs_u``, ``pairs_v``) or a
        single sequence of ``(u, v)`` tuples.  Solutions override this
        with an array-native implementation; the base version is the
        scalar fallback with identical semantics.
        """
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        return np.fromiter(
            (self.is_nonedge(int(u), int(v))
             for u, v in zip(us.tolist(), vs.tolist())),
            dtype=bool, count=len(us),
        )

    def _invalidate_batch(self) -> None:
        """Drop the cached batch snapshot (call after any mutation)."""
        self._batch_index = None

    # -- maintenance (optional) ------------------------------------------------

    def insert_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support edge insertion")

    def delete_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support edge deletion")

    def insert_vertex(self, v: int) -> None:
        raise NotImplementedError(f"{self.name} does not support vertex insertion")

    def delete_vertex(self, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support vertex deletion")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, I={self.int_bits})"


_REGISTRY: dict[str, type[VendSolution]] = {}


def register_solution(cls: type[VendSolution]) -> type[VendSolution]:
    """Class decorator adding a solution to the factory registry."""
    key = cls.name
    if key in _REGISTRY:
        raise ValueError(f"solution {key!r} already registered")
    _REGISTRY[key] = cls
    return cls


def create_solution(name: str, k: int, **kwargs) -> VendSolution:
    """Instantiate a registered solution by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solution {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(k=k, **kwargs)


def available_solutions() -> list[str]:
    """Names of all registered VEND solutions."""
    return sorted(_REGISTRY)
