"""Common VEND interfaces, registry, and shared helpers.

Every solution (range, hash, bit-hash, hybrid, hyb+) and every Bloom
comparator implements :class:`NonedgeFilter`: a ``is_nonedge(u, v)``
predicate that may return True **only** for pairs with no edge (the
soundness contract of Definition 4), plus maintenance hooks.

``NeighborFetch`` is how maintenance reaches graph storage: hybrid
deletion on non-decodable vectors must re-read ``N_G(v)`` from disk,
and the fetch counter lets benchmarks report that cost.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Protocol

from ..graph import Graph

__all__ = [
    "NonedgeFilter",
    "VendSolution",
    "NeighborFetch",
    "GraphNeighborFetch",
    "register_solution",
    "create_solution",
    "available_solutions",
]

NeighborFetch = Callable[[int], list[int]]


class GraphNeighborFetch:
    """Neighbor fetch backed by an in-memory graph, with a counter.

    Maintenance code calls this when it must recover a full neighbor
    set; ``fetches`` counts those storage round-trips.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.fetches = 0

    def __call__(self, v: int) -> list[int]:
        self.fetches += 1
        return self.graph.sorted_neighbors(v)


class NonedgeFilter(Protocol):
    """Anything that can veto edge queries (VEND solutions, Bloom filters)."""

    def is_nonedge(self, u: int, v: int) -> bool:
        """True only if ``(u, v)`` is certainly not an edge."""
        ...


class VendSolution(ABC):
    """Base class for VEND solutions.

    Subclasses set :attr:`name`, build codes in :meth:`build`, and
    answer :meth:`is_nonedge` in ``O(k)``.  Solutions that support
    dynamic graphs also implement the ``insert_edge`` / ``delete_edge``
    / ``insert_vertex`` / ``delete_vertex`` hooks; the base versions
    raise ``NotImplementedError`` so static baselines stay honest.
    """

    #: Registry key, e.g. ``"hybrid"``.
    name: str = "abstract"

    def __init__(self, k: int, int_bits: int = 32):
        if k < 1:
            raise ValueError("dimension number k must be >= 1")
        if int_bits not in (8, 16, 32, 64):
            raise ValueError("int_bits must be one of 8, 16, 32, 64")
        self.k = k
        self.int_bits = int_bits

    @property
    def total_bits(self) -> int:
        """Bits per vertex code: ``k * I`` (Section V-C1)."""
        return self.k * self.int_bits

    @abstractmethod
    def build(self, graph: Graph) -> None:
        """Encode every vertex of ``graph`` from scratch."""

    @abstractmethod
    def is_nonedge(self, u: int, v: int) -> bool:
        """The NDF: True only when ``(u, v)`` is certainly an NEpair."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Bytes held by the in-memory encoding."""

    def is_nonedge_batch(self, pairs: list[tuple[int, int]]) -> list[bool]:
        """Answer a batch of pair determinations (API convenience)."""
        return [self.is_nonedge(u, v) for u, v in pairs]

    # -- maintenance (optional) ------------------------------------------------

    def insert_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support edge insertion")

    def delete_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support edge deletion")

    def insert_vertex(self, v: int) -> None:
        raise NotImplementedError(f"{self.name} does not support vertex insertion")

    def delete_vertex(self, v: int, fetch: NeighborFetch) -> None:
        raise NotImplementedError(f"{self.name} does not support vertex deletion")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, I={self.int_bits})"


_REGISTRY: dict[str, type[VendSolution]] = {}


def register_solution(cls: type[VendSolution]) -> type[VendSolution]:
    """Class decorator adding a solution to the factory registry."""
    key = cls.name
    if key in _REGISTRY:
        raise ValueError(f"solution {key!r} already registered")
    _REGISTRY[key] = cls
    return cls


def create_solution(name: str, k: int, **kwargs) -> VendSolution:
    """Instantiate a registered solution by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown solution {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(k=k, **kwargs)


def available_solutions() -> list[str]:
    """Names of all registered VEND solutions."""
    return sorted(_REGISTRY)
