"""Range-based VEND ``(f^R, F^R)`` — Section IV-C.

Peeled vertices keep their exact ``f^α`` encoding.  Each core vertex
stores one *neighbor block*: ``k`` consecutive items of its extended
sorted core-neighbor sequence ``{-∞, v_1, …, v_x, ∞}``.  Any vertex
inside the block's range that is not a block member is a certain
NEneighbor.  The improved strategy picks the block whose range covers
the most NEneighbors; the basic strategy (kept for the ablation) always
takes the ``k`` smallest neighbor IDs.
"""

from __future__ import annotations

import math

import numpy as np

from ..graph import Graph, peel
from .base import VendSolution, endpoint_arrays, register_solution
from .batch import RangeBatch
from .partial import PartialVend

__all__ = ["RangeVend"]

_NEG_INF = -math.inf
_POS_INF = math.inf


@register_solution
class RangeVend(VendSolution):
    """Partial encoding plus a best-coverage block per core vertex.

    Parameters
    ----------
    strategy:
        ``"best"`` (paper's improved selection, default) or ``"basic"``
        (the smallest ``k`` neighbor IDs).
    """

    name = "range"

    #: Static baseline: mutations are handled by rebuilding (no hooks).
    supports_maintenance = False

    def __init__(self, k: int, int_bits: int = 32, strategy: str = "best"):
        super().__init__(k, int_bits)
        if strategy not in ("best", "basic"):
            raise ValueError("strategy must be 'best' or 'basic'")
        self.strategy = strategy
        self._partial = PartialVend(k, int_bits)
        # Core-vertex encodings: v -> (range_lo, range_hi, member_set)
        self._blocks: dict[int, tuple[float, float, frozenset[int]]] = {}
        self._max_id = 0

    def build(self, graph: Graph) -> None:
        self._invalidate_batch()
        self._blocks.clear()
        self._max_id = graph.max_vertex_id
        self._partial.build(graph)
        result = peel(graph, self.k)
        for v in result.core_vertices:
            neighbors = result.core_adjacency[v]
            if self.strategy == "basic":
                self._blocks[v] = self._basic_block(neighbors)
            else:
                self._blocks[v] = self._best_block(neighbors)

    # -- block selection ------------------------------------------------------

    def _basic_block(self, neighbors: list[int]) -> tuple[float, float, frozenset[int]]:
        """Smallest ``k`` neighbor IDs with range ``[v_1, v_k]`` (Def. 7)."""
        members = neighbors[: self.k]
        return (members[0], members[-1], frozenset(members))

    def _best_block(self, neighbors: list[int]) -> tuple[float, float, frozenset[int]]:
        """Size-k block of the extended sequence with max NE coverage."""
        extended: list[float] = [_NEG_INF, *neighbors, _POS_INF]
        best: tuple[float, float, frozenset[int]] | None = None
        best_coverage = -1
        for start in range(len(extended) - self.k + 1):
            block = extended[start:start + self.k]
            lo = 1 if block[0] == _NEG_INF else block[0]
            hi = self._max_id if block[-1] == _POS_INF else block[-1]
            finite = [x for x in block if x not in (_NEG_INF, _POS_INF)]
            coverage = (hi - lo + 1) - len(finite)
            if coverage > best_coverage:
                best_coverage = coverage
                best = (lo, hi, frozenset(int(x) for x in finite))
        assert best is not None  # extended sequence always has >= 1 block
        return best

    # -- NDF ---------------------------------------------------------------------

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        if self._partial.covers(u, v):
            return self._partial.is_nonedge(u, v)
        block_u = self._blocks.get(u)
        block_v = self._blocks.get(v)
        if block_u is None or block_v is None:
            return False  # unknown vertex: cannot certify anything
        lo_u, hi_u, members_u = block_u
        lo_v, hi_v, members_v = block_v
        if lo_v <= u <= hi_v and u not in members_v:
            return True
        if lo_u <= v <= hi_u and v not in members_u:
            return True
        return False

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Vectorized ``F^R`` over a pair batch (matches the scalar NDF)."""
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        if self._batch_index is None:
            self._batch_index = RangeBatch(self)
        return self._batch_index.query(us, vs)

    def memory_bytes(self) -> int:
        total = len(self._blocks) * self.total_bits // 8
        return total + self._partial.memory_bytes()
