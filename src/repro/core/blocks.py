"""Neighbor-block selection for the hybrid encoding — Section V-C3.

For a core vertex ``v`` the hybrid code stores one *block* ``B`` of
consecutive sorted neighbors plus a hash slot over the rest.  The
encoder picks the block maximizing the *NT-size*: the number of
vertices in the ID universe ``[1, max_id]`` that would pass the NE-test
of the resulting vector.  For a block with range ``[lo, hi]``,

    NT = (hi - lo + 1 - |B|)                 # in-range non-members
       + #{v' outside [lo, hi] : slot bit (v' mod m) == 0}

The second term is computed in ``O(m)`` per candidate using the
periodicity of the modular hash (the paper's ``Z``-function trick,
Eq. 3): residue occupancy ``H`` slides in ``O(1)`` as the window moves
(the sliding-window optimization of Eq. 5/6), and per-residue counts of
``[1, max_id]`` minus the block range weight the zero residues.

Because candidate evaluation is sound regardless of which block wins
(any block yields a correct code), very high-degree vertices may cap
the number of windows evaluated per size (``budget``) — a documented
engineering knob that trades a little score for build time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "BLOCK_LEFT",
    "BLOCK_MIDDLE",
    "BLOCK_RIGHT",
    "BLOCK_EMPTY",
    "BlockChoice",
    "residue_counts_upto",
    "count_hash_misses",
    "select_block",
]

#: Block-type codes stored in the 2-bit type field (Section V-B):
#: leftmost blocks extend their range to -inf, rightmost to +inf.
BLOCK_LEFT = 0b00
BLOCK_MIDDLE = 0b01
BLOCK_EMPTY = 0b10
BLOCK_RIGHT = 0b11


@dataclass(frozen=True)
class BlockChoice:
    """A selected neighbor block.

    ``start`` indexes the sorted neighbor list; ``size`` is ``|B|``;
    ``nt_size`` is the NT-size the selection maximized.
    """

    kind: int
    start: int
    size: int
    nt_size: int

    def members(self, neighbors: list[int]) -> list[int]:
        """The block's member IDs within ``neighbors``."""
        return neighbors[self.start:self.start + self.size]


_ARANGE_CACHE: dict[int, np.ndarray] = {}


def _arange(m: int) -> np.ndarray:
    cached = _ARANGE_CACHE.get(m)
    if cached is None:
        cached = np.arange(m, dtype=np.int64)
        _ARANGE_CACHE[m] = cached
    return cached


def residue_counts_upto(y: int, m: int) -> np.ndarray:
    """``out[r]`` = #{x in [1, y] : x mod m == r} for r in 0..m-1."""
    if y <= 0:
        return np.zeros(m, dtype=np.int64)
    counts = (y - _arange(m)) // m + 1
    counts[0] = y // m
    np.maximum(counts, 0, out=counts)
    return counts


def count_hash_misses(zero_mask: np.ndarray, max_id: int,
                      lo: int | None = None, hi: int | None = None) -> int:
    """Vertices in ``[1, max_id]`` minus ``[lo, hi]`` whose residue is free.

    ``zero_mask[r]`` is True when slot bit ``r`` is 0.  ``lo``/``hi`` of
    None means "no excluded range" (the empty-block case).
    """
    m = len(zero_mask)
    total = residue_counts_upto(max_id, m)
    if lo is not None and hi is not None:
        inside = residue_counts_upto(hi, m) - residue_counts_upto(lo - 1, m)
        total = total - inside
    return int(total[zero_mask].sum())


def _window_geometry(arr: np.ndarray, start: int, size: int,
                     max_id: int) -> tuple[int, int, int]:
    """Block type and effective range for a window of the sorted list."""
    x = len(arr)
    if start == 0:
        return BLOCK_LEFT, 1, int(arr[size - 1])
    if start == x - size:
        return BLOCK_RIGHT, int(arr[start]), max_id
    return BLOCK_MIDDLE, int(arr[start]), int(arr[start + size - 1])


def select_block(neighbors: list[int], max_id: int,
                 slot_for_size: Callable[[int], int], max_size: int,
                 budget: int | None = None) -> BlockChoice:
    """Pick the NT-maximizing block over ``neighbors`` (sorted, ascending).

    Parameters
    ----------
    slot_for_size:
        Hash-slot bit count left by a block of a given size (layout
        dependent, supplied by the encoder).  Sizes whose slot would be
        empty are skipped.
    max_size:
        Largest block that fits the code (``k*``).
    budget:
        None runs the paper's exhaustive sliding-window scan (every
        window of every size).  A positive value enables the shortlist
        strategy: per size, the exact NT is computed only for the
        ``budget`` windows with the widest range coverage (coverage
        dominates NT, so the shortlist almost always contains the true
        argmax at a fraction of the cost).
    """
    if not neighbors:
        raise ValueError("select_block needs a non-empty neighbor list")
    x = len(neighbors)
    best: BlockChoice | None = None

    def consider(choice: BlockChoice) -> None:
        nonlocal best
        if best is None or choice.nt_size > best.nt_size:
            best = choice

    arr = np.asarray(neighbors, dtype=np.int64)
    mods_cache: dict[int, np.ndarray] = {}
    for size in range(0, min(max_size, x - 1) + 1):
        m = slot_for_size(size)
        if m < 1:
            continue
        mods = mods_cache.get(m)
        if mods is None:
            mods = (arr % m).astype(np.int64)
            mods_cache[m] = mods
        counts_total = residue_counts_upto(max_id, m)
        base_occupancy = np.bincount(mods, minlength=m)
        if size == 0:
            zero_mask = base_occupancy == 0
            consider(BlockChoice(
                BLOCK_EMPTY, 0, 0, int(counts_total[zero_mask].sum())
            ))
            continue
        if budget is None:
            _scan_all_windows(arr, mods, base_occupancy, counts_total,
                              m, size, max_id, consider)
        else:
            _scan_shortlist(arr, mods, base_occupancy, counts_total,
                            m, size, max_id, budget, consider)
    if best is None:
        raise ValueError("no feasible block: every size left an empty slot")
    return best


def _scan_all_windows(arr, mods, base_occupancy, counts_total, m, size,
                      max_id, consider) -> None:
    """Exhaustive sliding-window scan (the paper's Eq. 5/6 algorithm):
    residue occupancy updates in O(1) per slide; NT in O(m)."""
    x = len(arr)
    occupancy = base_occupancy.copy()
    for j in range(size):
        occupancy[mods[j]] -= 1
    for start in range(x - size + 1):
        if start > 0:
            occupancy[mods[start - 1]] += 1
            occupancy[mods[start + size - 1]] -= 1
        kind, lo, hi = _window_geometry(arr, start, size, max_id)
        zero_mask = occupancy == 0
        inside = residue_counts_upto(hi, m) - residue_counts_upto(lo - 1, m)
        out = int((counts_total - inside)[zero_mask].sum())
        consider(BlockChoice(kind, start, size, (hi - lo + 1 - size) + out))


def _scan_shortlist(arr, mods, base_occupancy, counts_total, m, size,
                    max_id, budget, consider) -> None:
    """Evaluate exact NT only for the widest-coverage windows.

    All shortlisted candidates are evaluated in one batch of 2-D numpy
    operations (candidates × residues), which is what makes shortlist
    selection an order of magnitude faster than the exhaustive scan.
    """
    x = len(arr)
    num_windows = x - size + 1
    coverage = (arr[size - 1:] - arr[:num_windows]).copy() + 1 - size
    coverage[0] = arr[size - 1] - size            # leftmost: lo extends to 1
    coverage[-1] = max_id - arr[x - size] + 1 - size  # rightmost: hi to max
    if num_windows > budget:
        chosen = set(np.argpartition(coverage, -budget)[-budget:].tolist())
        chosen.update((0, num_windows - 1))
        starts = np.array(sorted(chosen), dtype=np.int64)
    else:
        starts = np.arange(num_windows, dtype=np.int64)
    count = len(starts)
    geometry = [_window_geometry(arr, int(s), size, max_id) for s in starts]
    los = np.array([g[1] for g in geometry], dtype=np.int64)
    his = np.array([g[2] for g in geometry], dtype=np.int64)
    # Occupancy per candidate: base minus its window's member residues.
    occupancy = np.tile(base_occupancy, (count, 1))
    window_cols = mods[starts[:, None] + _arange(size)[None, :]]
    np.subtract.at(
        occupancy,
        (np.repeat(_arange(count), size), window_cols.ravel()),
        1,
    )
    residues = _arange(m)[None, :]
    inside_hi = (his[:, None] - residues) // m + 1
    inside_lo = (los[:, None] - 1 - residues) // m + 1
    inside_hi[:, 0] = his // m
    inside_lo[:, 0] = (los - 1) // m
    np.maximum(inside_hi, 0, out=inside_hi)
    np.maximum(inside_lo, 0, out=inside_lo)
    outside = counts_total[None, :] - (inside_hi - inside_lo)
    out_counts = np.where(occupancy == 0, outside, 0).sum(axis=1)
    nt_values = (his - los + 1 - size) + out_counts
    best = int(np.argmax(nt_values))
    kind = geometry[best][0]
    consider(BlockChoice(kind, int(starts[best]), size, int(nt_values[best])))
