"""The paper's contribution: VEND encodings and NEpair determination."""

from .analysis import (
    CodeDescription,
    IndexStatistics,
    PairClassScores,
    describe_code,
    index_statistics,
    score_breakdown,
)
from .base import (
    GraphNeighborFetch,
    NeighborFetch,
    NonedgeFilter,
    VendSolution,
    available_solutions,
    create_solution,
    register_solution,
)
from .bitvector import BitVector
from .blocks import BlockChoice, select_block
from .hash_based import BitHashVend, HashVend
from .hybplus import HybPlusVend
from .hybrid import HybridVend, IdCapacityError, MaintenanceStats
from .columnar import ColumnarIndex
from .directed import DirectedVend
from .partial import PartialVend
from .persistence import IndexFormatError, load_index, save_index
from .range_based import RangeVend
from .score import ScoreReport, exact_vend_score, vend_score
from .sstree import SSTree
from .tuning import TuningResult, TuningStep, choose_k

__all__ = [
    "VendSolution",
    "NonedgeFilter",
    "NeighborFetch",
    "GraphNeighborFetch",
    "available_solutions",
    "create_solution",
    "register_solution",
    "BitVector",
    "BlockChoice",
    "select_block",
    "PartialVend",
    "DirectedVend",
    "ColumnarIndex",
    "save_index",
    "load_index",
    "IndexFormatError",
    "RangeVend",
    "HashVend",
    "BitHashVend",
    "HybridVend",
    "HybPlusVend",
    "IdCapacityError",
    "MaintenanceStats",
    "SSTree",
    "ScoreReport",
    "CodeDescription",
    "IndexStatistics",
    "PairClassScores",
    "describe_code",
    "index_statistics",
    "score_breakdown",
    "vend_score",
    "exact_vend_score",
    "choose_k",
    "TuningResult",
    "TuningStep",
]
