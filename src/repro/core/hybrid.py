"""The formal hybrid VEND solution ``(f^hyb, F^hyb)`` — Section V.

Every vertex owns one ``k·I``-bit code (`BitVector`).  Bit 0 is the
flag of Section V-B:

**Decodable codes** (``flag = 0``, the peeled vertices ``V^α_{k*+1}``)
store an explicit count and up to ``k*`` neighbor IDs of ``I'`` bits
each — the residual neighbor set, recoverable exactly.

**Non-decodable codes** (``flag = 1``, core vertices) store a 2-bit
block type, the block size ``|B|``, the block's IDs, and use every
remaining bit as a modular hash slot (``v' mod m``) over the rest of
the neighbors.  Block selection maximizes NT-size via
:func:`repro.core.blocks.select_block`.

``F^hyb`` follows Theorem 1: equal flags need both NE-tests to pass;
for mixed flags the decodable side's exact test alone decides.

Three documented deviations from the paper's sketch (see DESIGN.md):

1. Decodable codes carry an explicit ``ceil(log2(k*+1))``-bit count
   field so the encoded set is recoverable without sentinels.
2. Every code carries an *exactness* bit (bit 1) asserting "all of
   this vertex's current flag-1 neighbors are recorded here".  It is
   true after a static build and after complete rebuilds, and makes a
   single passing NE-test conclusive: the mixed-flag one-sided rule of
   Theorem 1 for decodable codes (where the bit is the α-complete
   flag), and — beyond the paper — an OR-test for core/core pairs that
   strictly outperforms Theorem 1's conjunction.
3. Maintenance preserves soundness of those one-sided tests: when a
   full decodable vertex converts to non-decodable, a neighbor whose
   vector does not record it would silently permit a false positive
   under the paper's formulation.  We demote the exactness bit of the
   affected vectors at conversion time (O(k*), no storage access) and
   fall back to the always-sound two-sided conjunction, which relies
   only on the maintained "every edge is recorded in at least one
   endpoint's vector" invariant.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, peel
from ..obs import MaintenanceStats
from .base import NeighborFetch, VendSolution, endpoint_arrays, register_solution
from .bitvector import BitVector
from .blocks import (
    BLOCK_LEFT,
    BLOCK_MIDDLE,
    BLOCK_RIGHT,
    count_hash_misses,
    select_block,
)

__all__ = ["HybridVend", "IdCapacityError", "MaintenanceStats"]


class IdCapacityError(RuntimeError):
    """A vertex ID no longer fits in ``I'`` bits; rebuild the index.

    The paper amortizes this over graph-doubling (Section V-D3): when
    raised, call :meth:`HybridVend.build` against the current graph.
    """


@register_solution
class HybridVend(VendSolution):
    """Hybrid range+hash VEND with full dynamic maintenance.

    Parameters
    ----------
    k, int_bits:
        Dimension count and bits per dimension (code = ``k·I`` bits).
    id_bits:
        Bits per stored vertex ID (``I'``).  Default: just enough for
        the build-time ID universe, leaving maximal hash-slot space.
    selection_budget:
        Shortlist size for block selection: per block size, exact
        NT-size is computed for this many widest-coverage windows
        (None = the paper's exhaustive sliding-window selection).
    """

    name = "hybrid"

    #: Full dynamic maintenance via the insert/delete hooks below.
    supports_maintenance = True

    #: Bit 1 is the *exactness* bit in both layouts: decodable codes
    #: use it as the α-complete flag, core codes as the record-all-
    #: flag-1-neighbors flag (see module docstring).
    _EXACT_BIT = 1

    def __init__(self, k: int, int_bits: int = 32, id_bits: int | None = None,
                 selection_budget: int | None = 8):
        super().__init__(k, int_bits)
        self._requested_id_bits = id_bits
        self.selection_budget = selection_budget
        self.stats = MaintenanceStats(method=self.name)
        self._codes: dict[int, BitVector] = {}
        self._max_id = 0
        # Layout fields; finalized by _configure_layout at build time.
        self.id_bits = 0
        self.count_bits = 0
        self.k_star = 0
        self._core_header = 0
        self._dec_header = 0

    # ------------------------------------------------------------------ layout

    def _configure_layout(self, max_id: int) -> None:
        needed = max(1, int(max_id).bit_length())
        id_bits = self._requested_id_bits or needed
        if id_bits < needed:
            raise ValueError(
                f"id_bits={id_bits} cannot address vertex IDs up to {max_id}"
            )
        if id_bits > self.int_bits:
            raise ValueError(f"id_bits must be <= int_bits ({self.int_bits})")
        raw_capacity = (self.total_bits - 1) // id_bits
        if raw_capacity < 1:
            raise ValueError(
                f"k={self.k} gives a {self.total_bits}-bit code that cannot "
                f"hold one {id_bits}-bit ID"
            )
        count_bits = max(1, raw_capacity.bit_length())
        core_header = 4 + count_bits  # flag + exact + type + |B| field
        k_star = (self.total_bits - core_header - 1) // id_bits
        if k_star < 1:
            raise ValueError(
                f"k={self.k}, id_bits={id_bits}: no room for even one "
                "block entry plus a hash bit"
            )
        self.id_bits = id_bits
        self.count_bits = count_bits
        self.k_star = k_star
        self._core_header = core_header
        self._dec_header = 2 + count_bits  # flag + α-complete + count
        self._max_id = max_id

    def _slot_bits(self, block_size: int) -> int:
        return self.total_bits - self._core_header - block_size * self.id_bits

    # ------------------------------------------------------------------- build

    def build(self, graph: Graph) -> None:
        """Encode all vertices: peel at ``k*+1``, then encode the core."""
        self._invalidate_batch()
        self._configure_layout(max(graph.max_vertex_id, 1))
        self._codes.clear()
        self.stats.reset()
        result = peel(graph, self.k_star + 1)
        for v, neighbors in result.residual_neighbors.items():
            self._codes[v] = self._encode_decodable(neighbors)
        for v in result.core_vertices:
            self._codes[v] = self._encode_core(result.core_adjacency[v])

    # -- encoders ---------------------------------------------------------------

    def _encode_decodable(self, ids: list[int], alpha: bool = True) -> BitVector:
        """Flag 0 + α bit + count + explicit sorted IDs (≤ ``k*`` of them)."""
        if len(ids) > self.k_star:
            raise ValueError(
                f"{len(ids)} IDs exceed decodable capacity {self.k_star}"
            )
        code = BitVector(self.total_bits)
        code.set_bit(self._EXACT_BIT, 1 if alpha else 0)
        code.write_field(2, self.count_bits, len(ids))
        offset = self._dec_header
        for vid in sorted(ids):
            code.write_field(offset, self.id_bits, vid)
            offset += self.id_bits
        return code

    def _encode_core(self, neighbors: list[int],
                     exact: bool = True) -> BitVector:
        """Flag 1 + best block + hash slot over the remaining neighbors.

        ``exact`` asserts that every current flag-1 neighbor is in
        ``neighbors`` (true for static builds and complete rebuilds),
        enabling the conclusive one-sided core test.
        """
        if not neighbors:
            raise ValueError("core encoding needs at least one neighbor")
        neighbors = sorted(neighbors)
        choice = self._select_block(neighbors)
        return self._materialize_core(neighbors, choice, exact)

    def _select_block(self, neighbors: list[int]):
        """Block selection hook (the ablation overrides this)."""
        return select_block(
            neighbors, self._max_id, self._slot_bits,
            max_size=self.k_star, budget=self.selection_budget,
        )

    def _materialize_core(self, neighbors: list[int], choice,
                          exact: bool) -> BitVector:
        """Write a chosen block + hash slot into a fresh core code."""
        code = BitVector(self.total_bits)
        code.set_bit(0, 1)
        code.set_bit(self._EXACT_BIT, 1 if exact else 0)
        code.write_field(2, 2, choice.kind)
        code.write_field(4, self.count_bits, choice.size)
        offset = self._core_header
        members = choice.members(neighbors)
        for vid in members:
            code.write_field(offset, self.id_bits, vid)
            offset += self.id_bits
        m = self._slot_bits(choice.size)
        member_set = set(members)
        for vid in neighbors:
            if vid not in member_set:
                code.set_bit(offset + (vid % m), 1)
        return code

    def _build_code(self, ids: list[int], complete: bool) -> BitVector:
        """Re-encode a neighbor set.

        ``complete`` asserts that *all* current neighbors are present,
        which is what permits a (fully trusted) decodable code; filtered
        sets must stay non-decodable regardless of size.
        """
        ids = sorted(set(ids))
        if complete and len(ids) <= self.k_star:
            return self._encode_decodable(ids)
        return self._encode_core(ids, exact=complete)

    # -- decoding helpers ---------------------------------------------------------

    def is_decodable(self, v: int) -> bool:
        """True when ``f^hyb(v)`` is a flag-0 (fully recoverable) code."""
        return self._codes[v].get_bit(0) == 0

    def decoded_ids(self, v: int) -> list[int]:
        """Recover the ID list of a decodable code."""
        code = self._codes[v]
        if code.get_bit(0):
            raise ValueError(f"f^hyb({v}) is non-decodable")
        return self._read_ids(code, self._dec_header,
                              code.read_field(2, self.count_bits))

    def _read_ids(self, code: BitVector, offset: int, count: int) -> list[int]:
        ids = []
        for _ in range(count):
            ids.append(code.read_field(offset, self.id_bits))
            offset += self.id_bits
        return ids

    # ------------------------------------------------------------------ NE-test

    def ne_test(self, vprime: int, code: BitVector) -> bool:
        """Does ``vprime`` pass the NE-test of ``code`` (Definition 8)?"""
        if code.get_bit(0) == 0:
            count = code.read_field(2, self.count_bits)
            return vprime not in self._read_ids(code, self._dec_header, count)
        kind = code.read_field(2, 2)
        size = code.read_field(4, self.count_bits)
        members = self._read_ids(code, self._core_header, size)
        slot_offset = self._core_header + size * self.id_bits
        m = self.total_bits - slot_offset
        if size > 0:
            lo, hi = members[0], members[-1]
            if kind == BLOCK_LEFT:
                in_range = vprime <= hi
            elif kind == BLOCK_RIGHT:
                in_range = vprime >= lo
            elif kind == BLOCK_MIDDLE:
                in_range = lo <= vprime <= hi
            else:  # a sized BLOCK_EMPTY cannot be produced; stay safe
                in_range = False
            if in_range:
                return vprime not in members
        return code.get_bit(slot_offset + (vprime % m)) == 0

    def core_layout(self, code: BitVector) -> tuple[int, list[int], int, int]:
        """Uniform view of a flag-1 code: ``(kind, sorted members,
        slot bit offset, slot size)`` — used by the columnar snapshot."""
        if code.get_bit(0) == 0:
            raise ValueError("core_layout needs a non-decodable code")
        kind = code.read_field(2, 2)
        size = code.read_field(4, self.count_bits)
        members = self._read_ids(code, self._core_header, size)
        slot_offset = self._core_header + size * self.id_bits
        return kind, members, slot_offset, self.total_bits - slot_offset

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        cu = self._codes.get(u)
        cv = self._codes.get(v)
        if cu is None or cv is None:
            return False
        flag_u, flag_v = cu.get_bit(0), cv.get_bit(0)
        if flag_u != flag_v:
            if flag_u == 0:
                dec_vertex, dec_code, core_vertex, core_code = u, cu, v, cv
            else:
                dec_vertex, dec_code, core_vertex, core_code = v, cv, u, cu
            if dec_code.get_bit(self._EXACT_BIT):
                # α-complete: the exact one-sided test of Theorem 1.
                return self.ne_test(core_vertex, dec_code)
            return (self.ne_test(core_vertex, dec_code)
                    and self.ne_test(dec_vertex, core_code))
        if flag_u == 1:
            # Both core.  An exact core code records every flag-1
            # neighbor, so a single passing NE-test is conclusive —
            # strictly more detections than Theorem 1's conjunction,
            # which remains the fallback once exactness is demoted.
            if cu.get_bit(self._EXACT_BIT) and self.ne_test(v, cu):
                return True
            if cv.get_bit(self._EXACT_BIT) and self.ne_test(u, cv):
                return True
        return self.ne_test(v, cu) and self.ne_test(u, cv)

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Vectorized ``F^hyb`` via a cached columnar snapshot.

        The snapshot is rebuilt lazily after ``build`` or any
        maintenance hook invalidates it; direct code mutation outside
        those hooks requires an explicit rebuild.
        """
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        if self.id_bits == 0 or not self._codes:
            return np.zeros(len(us), dtype=bool)  # unbuilt: nothing certified
        if self._batch_index is None:
            from .columnar import ColumnarIndex  # deferred: avoids cycle
            self._batch_index = ColumnarIndex(self)
        return self._batch_index.query_batch(us, vs)

    # ---------------------------------------------------------------- NT-size

    def nt_size(self, code: BitVector) -> int:
        """Number of universe vertices passing the code's NE-test."""
        if code.get_bit(0) == 0:
            count = code.read_field(2, self.count_bits)
            return self._max_id - count
        kind = code.read_field(2, 2)
        size = code.read_field(4, self.count_bits)
        slot_offset = self._core_header + size * self.id_bits
        m = self.total_bits - slot_offset
        slot = code.read_field(slot_offset, m)
        zero_mask = np.array([(slot >> i) & 1 == 0 for i in range(m)],
                             dtype=bool)
        if size == 0:
            return count_hash_misses(zero_mask, self._max_id)
        members = self._read_ids(code, self._core_header, size)
        if kind == BLOCK_LEFT:
            lo, hi = 1, members[-1]
        elif kind == BLOCK_RIGHT:
            lo, hi = members[0], self._max_id
        else:
            lo, hi = members[0], members[-1]
        out = count_hash_misses(zero_mask, self._max_id, lo, hi)
        return (hi - lo + 1 - size) + out

    # -------------------------------------------------------------- maintenance

    def insert_vertex(self, v: int) -> None:
        """Allocate an all-zero (empty decodable, α-complete) code."""
        if v.bit_length() > self.id_bits:
            raise IdCapacityError(
                f"vertex {v} needs {v.bit_length()} ID bits but I'={self.id_bits}; "
                "rebuild the encoding against the current graph"
            )
        if v not in self._codes:
            self._invalidate_batch()
            self._codes[v] = self._encode_decodable([])
            self._max_id = max(self._max_id, v)

    def insert_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        """Adjust codes so ``F^hyb(u, v)`` can no longer report NEpair."""
        self._invalidate_batch()
        self.insert_vertex(u)
        self.insert_vertex(v)
        if not self.is_nonedge(u, v):
            self.stats.inc("inserts_noop")
            return
        cu, cv = self._codes[u], self._codes[v]
        u_dec, v_dec = cu.get_bit(0) == 0, cv.get_bit(0) == 0
        # Fast path: an unfilled decodable vector absorbs the new ID.
        for owner, other, code, dec in ((u, v, cu, u_dec), (v, u, cv, v_dec)):
            if dec and code.read_field(2, self.count_bits) < self.k_star:
                ids = self.decoded_ids(owner)
                alpha = bool(code.get_bit(self._EXACT_BIT))
                self._codes[owner] = self._encode_decodable(
                    ids + [other], alpha=alpha
                )
                self.stats.inc("inserts_fast")
                return
        if u_dec and v_dec:  # both full decodable: rebuild the better one
            ids_u = self.decoded_ids(u)
            ids_v = self.decoded_ids(v)
            cand_u = self._build_code(ids_u + [v], complete=False)
            cand_v = self._build_code(ids_v + [u], complete=False)
            if self.nt_size(cand_u) >= self.nt_size(cand_v):
                self._convert_to_core(u, cand_u, ids_u, partner=v)
            else:
                self._convert_to_core(v, cand_v, ids_v, partner=u)
        elif u_dec or v_dec:  # one full decodable, one core: avoid storage
            owner, other = (u, v) if u_dec else (v, u)
            ids = self.decoded_ids(owner)
            cand = self._build_code(ids + [other], complete=False)
            self._convert_to_core(owner, cand, ids, partner=other)
        else:  # both non-decodable: filtered reconstruction (Section V-D1)
            cand_u = self._build_code(
                self._filtered_neighbors(u, fetch) + [v], complete=False
            )
            cand_v = self._build_code(
                self._filtered_neighbors(v, fetch) + [u], complete=False
            )
            if self.nt_size(cand_u) >= self.nt_size(cand_v):
                self._codes[u] = cand_u
            else:
                self._codes[v] = cand_v
        self.stats.inc("inserts_rebuild")
        self._demote_lingering_claims(u, v)

    def delete_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        """Re-open the chance to detect the now-deleted pair."""
        self._invalidate_batch()
        rebuilt = 0
        for owner, gone in ((u, v), (v, u)):
            code = self._codes.get(owner)
            if code is None:
                continue
            if code.get_bit(0) == 0:
                ids = self.decoded_ids(owner)
                if gone in ids:
                    ids.remove(gone)
                    alpha = bool(code.get_bit(self._EXACT_BIT))
                    self._codes[owner] = self._encode_decodable(ids, alpha=alpha)
                    rebuilt += 1
            elif not self.ne_test(gone, code):
                ids = [w for w in fetch(owner) if w != gone]
                self._install_complete(owner, ids)
                rebuilt += 1
        if rebuilt:
            self.stats.inc("deletes_rebuild", rebuilt)
        else:
            self.stats.inc("deletes_noop")

    def delete_vertex(self, v: int, fetch: NeighborFetch) -> None:
        """Clear ``f^hyb(v)`` and scrub ``v`` from affected neighbors."""
        if v not in self._codes:
            return
        self._invalidate_batch()
        for u in fetch(v):
            code = self._codes.get(u)
            if code is None:
                continue
            if code.get_bit(0) == 0:
                ids = self.decoded_ids(u)
                if v in ids:
                    ids.remove(v)
                    alpha = bool(code.get_bit(self._EXACT_BIT))
                    self._codes[u] = self._encode_decodable(ids, alpha=alpha)
                    self.stats.inc("vertex_rebuilds")
            elif not self.ne_test(v, code):
                ids = [w for w in fetch(u) if w != v]
                self._install_complete(u, ids)
                self.stats.inc("vertex_rebuilds")
        del self._codes[v]

    # -- maintenance internals ----------------------------------------------------

    def _install_complete(self, owner: int, ids: list[int]) -> None:
        """Install a rebuild from a *complete* neighbor set."""
        if ids:
            self._codes[owner] = self._build_code(ids, complete=True)
        else:
            self._codes[owner] = self._encode_decodable([])

    def _convert_to_core(self, owner: int, new_code: BitVector,
                         old_ids: list[int], partner: int) -> None:
        """Flip ``owner`` from decodable to non-decodable.

        ``owner`` is now a flag-1 vertex, so any neighbor whose *exact*
        vector does not record ``owner`` loses the exactness its
        one-sided test relies on (decodable α bit and core exact bit
        alike) and is demoted to the conjunction fallback.  Every such
        neighbor appears in ``old_ids + [partner]``: vectors of
        neighbors peeled before ``owner`` always recorded it.
        """
        self._codes[owner] = new_code
        for w in (*old_ids, partner):
            code_w = self._codes.get(w)
            if code_w is None or not code_w.get_bit(self._EXACT_BIT):
                continue
            if code_w.get_bit(0) == 0:
                recorded = owner in self.decoded_ids(w)
            else:
                recorded = not self.ne_test(owner, code_w)
            if not recorded:
                code_w.set_bit(self._EXACT_BIT, 0)
                self.stats.inc("alpha_demotions")

    def _demote_lingering_claims(self, u: int, v: int) -> None:
        """Final insertion step: while any one-sided exact test still
        claims the (now existing) edge is an NEpair, demote that
        vector's exactness.  The conjunction fallback is then correct
        because the rebuilt side records the edge."""
        while self.is_nonedge(u, v):
            for owner, other in ((u, v), (v, u)):
                code = self._codes[owner]
                if code.get_bit(self._EXACT_BIT) and self.ne_test(other, code):
                    code.set_bit(self._EXACT_BIT, 0)
                    self.stats.inc("alpha_demotions")
                    break
            else:
                raise RuntimeError(
                    f"insert_edge({u}, {v}) left the pair claimed as an "
                    "NEpair with no demotable exactness bit"
                )

    def _filtered_neighbors(self, v: int, fetch: NeighborFetch) -> list[int]:
        """Neighbors whose own codes fail to exclude ``v`` (Section V-D1):
        only these must be re-encoded into ``f^hyb(v)`` for soundness."""
        kept = []
        for w in fetch(v):
            code_w = self._codes.get(w)
            if code_w is None or self.ne_test(v, code_w):
                kept.append(w)
        return kept

    # ------------------------------------------------------------------- misc

    def memory_bytes(self) -> int:
        return len(self._codes) * (self.total_bits // 8)

    @property
    def num_codes(self) -> int:
        return len(self._codes)

    def code_of(self, v: int) -> BitVector:
        """The raw code of ``v`` (primarily for tests/inspection)."""
        return self._codes[v]
