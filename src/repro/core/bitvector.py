"""Fixed-width bit vectors — the physical layout of every VEND code.

The paper treats a vertex vector as a bitset of ``k * I`` bits
(Section V-C1) carved into bit fields: a flag bit, block-type bits, a
size field, packed ``I'``-bit vertex IDs, and a hash slot.  This module
provides that substrate: a bounded bit string over a Python int with
field read/write, bit tests, and zero-counting (the ``Z`` function of
Eq. 3 works over slot prefixes).

Bit 0 is the least-significant bit; the paper's "first bit" maps to
bit 0 here.
"""

from __future__ import annotations

__all__ = ["BitVector"]


class BitVector:
    """A mutable bit string of fixed length ``num_bits``.

    Backed by an arbitrary-precision int, so all operations are exact
    regardless of width; writes outside the width raise.
    """

    __slots__ = ("num_bits", "_value")

    def __init__(self, num_bits: int, value: int = 0):
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if value < 0 or value >> num_bits:
            raise ValueError(f"value does not fit in {num_bits} bits")
        self.num_bits = num_bits
        self._value = value

    # -- whole-vector views ---------------------------------------------------

    @property
    def value(self) -> int:
        """The raw integer value of the bit string."""
        return self._value

    def to_bytes(self) -> bytes:
        """Little-endian byte serialization, padded to full bytes."""
        return self._value.to_bytes((self.num_bits + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "BitVector":
        return cls(num_bits, int.from_bytes(data, "little"))

    def copy(self) -> "BitVector":
        return BitVector(self.num_bits, self._value)

    def clear(self) -> None:
        self._value = 0

    # -- single bits -----------------------------------------------------------

    def get_bit(self, i: int) -> int:
        self._check_range(i, 1)
        return (self._value >> i) & 1

    def set_bit(self, i: int, bit: int = 1) -> None:
        self._check_range(i, 1)
        if bit:
            self._value |= 1 << i
        else:
            self._value &= ~(1 << i)

    # -- bit fields ---------------------------------------------------------

    def read_field(self, offset: int, width: int) -> int:
        """Read ``width`` bits starting at ``offset`` as an unsigned int."""
        self._check_range(offset, width)
        return (self._value >> offset) & ((1 << width) - 1)

    def write_field(self, offset: int, width: int, value: int) -> None:
        """Write ``value`` into ``width`` bits at ``offset``."""
        self._check_range(offset, width)
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        mask = ((1 << width) - 1) << offset
        self._value = (self._value & ~mask) | (value << offset)

    # -- counting ---------------------------------------------------------------

    def popcount(self, offset: int = 0, width: int | None = None) -> int:
        """Number of 1 bits in ``[offset, offset+width)``."""
        if width is None:
            width = self.num_bits - offset
        return self.read_field(offset, width).bit_count()

    def count_zeros(self, offset: int = 0, width: int | None = None) -> int:
        """Number of 0 bits in ``[offset, offset+width)`` — the Z function."""
        if width is None:
            width = self.num_bits - offset
        return width - self.popcount(offset, width)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitVector)
            and other.num_bits == self.num_bits
            and other._value == self._value
        )

    def __hash__(self) -> int:
        return hash((self.num_bits, self._value))

    def __repr__(self) -> str:
        return f"BitVector({self.num_bits}, 0b{self._value:b})"

    def _check_range(self, offset: int, width: int) -> None:
        if offset < 0 or width < 0 or offset + width > self.num_bits:
            raise IndexError(
                f"bit range [{offset}, {offset + width}) outside "
                f"0..{self.num_bits}"
            )
