"""Hash-based VEND ``(f^hash, F^hash)`` and the bit-hash variant — Section IV-D.

Peeled vertices keep their exact ``f^α`` encoding.  Each core vertex
hashes its core-neighbor IDs into a slot:

- **hash version** — one 0/1 flag per dimension (``k`` slots,
  ``v' mod k``); wasteful but matches the paper's first formulation;
- **bit-hash version** — the whole ``k·I``-bit vector is one bitset
  (``v' mod (k·I)``), which the paper notes is a special case of the
  Local Bloom Filter with a single hash function.

A pair of core vertices is an NEpair when *both* miss the hash in the
other's slot.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, peel
from .base import VendSolution, endpoint_arrays, register_solution
from .batch import ModHashBatch
from .partial import PartialVend

__all__ = ["HashVend", "BitHashVend"]


class _ModHashVend(VendSolution):
    """Shared machinery: peel + per-core-vertex modular hash bitset."""

    #: Static baselines: mutations are handled by rebuilding (no hooks).
    supports_maintenance = False

    #: Subclasses define the slot size in bits.
    def _slot_bits(self) -> int:
        raise NotImplementedError

    def __init__(self, k: int, int_bits: int = 32):
        super().__init__(k, int_bits)
        self._partial = PartialVend(k, int_bits)
        self._slots: dict[int, int] = {}

    def build(self, graph: Graph) -> None:
        self._invalidate_batch()
        self._slots.clear()
        self._partial.build(graph)
        result = peel(graph, self.k)
        m = self._slot_bits()
        for v in result.core_vertices:
            slot = 0
            for u in result.core_adjacency[v]:
                slot |= 1 << (u % m)
            self._slots[v] = slot

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        if self._partial.covers(u, v):
            return self._partial.is_nonedge(u, v)
        slot_u = self._slots.get(u)
        slot_v = self._slots.get(v)
        if slot_u is None or slot_v is None:
            return False  # unknown vertex: cannot certify anything
        m = self._slot_bits()
        miss_u = not (slot_u >> (v % m)) & 1
        miss_v = not (slot_v >> (u % m)) & 1
        return miss_u and miss_v

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Vectorized modular-hash NDF (matches the scalar predicate)."""
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        if self._batch_index is None:
            self._batch_index = ModHashBatch(self)
        return self._batch_index.query(us, vs)

    def memory_bytes(self) -> int:
        total = len(self._slots) * self.total_bits // 8
        return total + self._partial.memory_bytes()


@register_solution
class HashVend(_ModHashVend):
    """One binary flag per dimension: slot size ``k`` (``f^hash``)."""

    name = "hash"

    def _slot_bits(self) -> int:
        return self.k


@register_solution
class BitHashVend(_ModHashVend):
    """The full vector as one bitset: slot size ``k·I`` (``f^bit``)."""

    name = "bit-hash"

    def _slot_bits(self) -> int:
        return self.k * self.int_bits
