"""Automatic dimension selection.

The paper leaves ``k`` to the operator (Table I/II show its trade-off:
memory is linear in k, score grows with it, and k above the average
degree is pointless — at that point the whole graph fits in memory).
:func:`choose_k` automates the choice: walk the candidate ladder,
score each index on a representative workload, and stop at the first
k meeting the target (or return the best one found).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph import Graph
from .hybrid import HybridVend
from .score import vend_score

__all__ = ["TuningStep", "TuningResult", "choose_k"]


@dataclass(frozen=True)
class TuningStep:
    """One evaluated candidate."""

    k: int
    score: float
    memory_bytes: int
    build_seconds: float


@dataclass
class TuningResult:
    """Outcome of :func:`choose_k`.

    ``solution`` is the built index for ``chosen_k`` — ready to use,
    no rebuild needed.  ``steps`` records the whole ladder walk.
    """

    chosen_k: int
    target_met: bool
    solution: HybridVend
    steps: list[TuningStep] = field(default_factory=list)


def choose_k(graph: Graph, target_score: float,
             pairs: list[tuple[int, int]],
             candidates: tuple[int, ...] = (2, 4, 8, 16, 32),
             solution_cls: type[HybridVend] = HybridVend,
             **solution_kwargs) -> TuningResult:
    """Pick the smallest candidate ``k`` whose score meets the target.

    Candidates above the graph's average degree are skipped (the
    paper's N/A rule: at that point loading the graph outright beats
    indexing it).  If no candidate reaches ``target_score``, the
    best-scoring one is returned with ``target_met=False``.
    """
    import time

    if not 0.0 <= target_score <= 1.0:
        raise ValueError("target_score must be within [0, 1]")
    if not pairs:
        raise ValueError("a non-empty workload sample is required")
    usable = [k for k in sorted(candidates) if k <= graph.average_degree()]
    if not usable:
        usable = [min(candidates)]
    steps: list[TuningStep] = []
    best: tuple[float, int, HybridVend] | None = None
    for k in usable:
        solution = solution_cls(k=k, **solution_kwargs)
        start = time.perf_counter()
        solution.build(graph)
        build_seconds = time.perf_counter() - start
        report = vend_score(solution, graph, pairs)
        steps.append(TuningStep(
            k=k, score=report.score,
            memory_bytes=solution.memory_bytes(),
            build_seconds=build_seconds,
        ))
        if best is None or report.score > best[0]:
            best = (report.score, k, solution)
        if report.score >= target_score:
            return TuningResult(
                chosen_k=k, target_met=True, solution=solution, steps=steps
            )
    assert best is not None
    _, chosen_k, solution = best
    return TuningResult(
        chosen_k=chosen_k, target_met=False, solution=solution, steps=steps
    )
