"""Vectorized batch snapshots for the non-hybrid VEND solutions.

The hybrid family already has :class:`~repro.core.columnar.ColumnarIndex`;
this module gives the remaining registered solutions (partial, range,
hash, bit-hash) the same treatment so ``is_nonedge_batch`` is
array-native across the whole registry.  Each snapshot freezes a built
solution's per-vertex state into dense numpy columns:

- a position array mapping vertex IDs to dense rows (``-1`` = unknown);
- a sentinel-padded member matrix for explicit-membership tests;
- solution-specific columns (peel-round flags, block ranges, hash-slot
  bit words).

Snapshots are read-only; the owning solution caches one lazily and
drops it on :meth:`~repro.core.base.VendSolution._invalidate_batch`
(every ``build`` call).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MemberTable",
    "PartialBatch",
    "RangeBatch",
    "ModHashBatch",
    "warm_batch_snapshot",
    "shard_slices",
]


def warm_batch_snapshot(filt) -> None:
    """Force a filter's lazy batch snapshot to build on *this* thread.

    Every solution rebuilds its snapshot lazily via the unguarded
    ``if self._batch_index is None: self._batch_index = ...`` pattern.
    That is fine single-threaded, but the shard-parallel engine
    evaluates NDF slices on pool threads — two threads hitting a cold
    snapshot would build it twice and publish a half-initialized object
    to each other.  The engine therefore warms the snapshot once on the
    coordinator thread before any fan-out; after maintenance (which
    invalidates the snapshot) the next batch re-warms it the same way.

    The snapshot itself stays **shared across shards** rather than
    being split per shard: ``F(f(u), f(v))`` reads *both* endpoints'
    codes, and ``v`` routinely lives on a different shard than ``u``,
    so per-shard code columns would force cross-shard chatter on every
    pair.  A frozen read-only snapshot shared by all pool threads is
    both correct and contention-free.
    """
    batch = getattr(filt, "is_nonedge_batch", None)
    if batch is not None:
        probe = np.zeros(1, dtype=np.int64)
        batch(probe, probe)


def shard_slices(router, us: np.ndarray, vs: np.ndarray):
    """Split an aligned pair batch into per-shard work units.

    Pairs are owned by the shard of their **left** endpoint — the only
    endpoint whose adjacency list storage will read — so each slice is
    self-contained: NDF filtering plus a shard-local multi-get answers
    it without touching another segment.  Yields
    ``(shard, idx, us[idx], vs[idx])`` with ``idx`` in original input
    order; the caller merges with ``answers[idx] = slice_answers``.

    Because the slices partition the *left* endpoints, deduplicating
    ``us`` per shard equals deduplicating globally — the same vertex
    can never appear in two slices — which is what keeps the parallel
    engine's ``cache_served``/``disk_served`` totals bitwise equal to
    the serial pipeline's.
    """
    for shard, idx in enumerate(router.partition(us)):
        if len(idx):
            yield shard, idx, us[idx], vs[idx]

#: Sentinel member value: IDs are < 2^32, so the all-ones uint32 can
#: only collide with a (pathological) max-universe vertex, and a
#: collision merely loses a detection — never soundness.
_NO_MEMBER = np.uint32(0xFFFFFFFF)


def make_position(vertices: list[int]) -> np.ndarray:
    """Dense ID → row map: ``position[v]`` is the row of ``v`` or -1."""
    max_id = max(vertices) if vertices else 0
    position = np.full(max_id + 2, -1, dtype=np.int64)
    if vertices:
        position[np.asarray(vertices, dtype=np.int64)] = np.arange(len(vertices))
    return position


def rows_from_position(position: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Row index per vertex ID, -1 for IDs outside the encoded universe."""
    clipped = np.clip(ids, 0, len(position) - 1)
    rows = position[clipped]
    rows[(ids < 0) | (ids >= len(position))] = -1
    return rows


class MemberTable:
    """Explicit-membership tests over a padded per-row member matrix."""

    def __init__(self, members_by_vertex: dict[int, list[int]]):
        self.vertices = sorted(members_by_vertex)
        n = len(self.vertices)
        self._position = make_position(self.vertices)
        width = max((len(members_by_vertex[v]) for v in self.vertices),
                    default=0)
        # Transposed (width, n) layout: one contiguous row per member
        # slot, probed slot-by-slot in `contains` so a batch never
        # materializes an (n_pairs, width) gather.
        self._members = np.full((width, n), _NO_MEMBER, dtype=np.uint32)
        for row, v in enumerate(self.vertices):
            members = members_by_vertex[v]
            if members:
                self._members[:len(members), row] = np.asarray(
                    members, dtype=np.uint32
                )

    def __len__(self) -> int:
        return len(self.vertices)

    def rows(self, ids: np.ndarray) -> np.ndarray:
        return rows_from_position(self._position, ids)

    def contains(self, rows: np.ndarray, probes: np.ndarray) -> np.ndarray:
        """``probes[i] in members[rows[i]]`` (False for row -1)."""
        if len(self) == 0 or self._members.shape[0] == 0:
            return np.zeros(len(rows), dtype=bool)
        safe = np.maximum(rows, 0)
        # Out-of-range probes clip onto the sentinel: at worst a missed
        # detection for the max-universe ID, never a false "certain".
        probes32 = np.clip(probes, 0, int(_NO_MEMBER)).astype(np.uint32)
        hit = np.zeros(len(rows), dtype=bool)
        for slot in self._members:
            hit |= slot.take(safe) == probes32
        return hit & (rows >= 0)

    def nbytes(self) -> int:
        return self._position.nbytes + self._members.nbytes


class PartialBatch:
    """Vectorized ``F^α``: peel-round flags + residual-member matrix."""

    def __init__(self, partial) -> None:
        vectors = partial._vectors
        self._table = MemberTable(
            {v: sorted(partial._members[v]) for v in vectors}
        )
        self._flags = np.asarray(
            [vectors[v][0] for v in self._table.vertices], dtype=np.int64
        )

    def rows(self, ids: np.ndarray) -> np.ndarray:
        return self._table.rows(ids)

    def query(self, us: np.ndarray, vs: np.ndarray,
              rows_u: np.ndarray, rows_v: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
        """``(covered, result)`` masks aligned with the pair batch.

        ``covered`` marks pairs ``F^α`` decides exactly (either endpoint
        peeled); ``result`` is the determination for those pairs.
        """
        u_peeled = rows_u >= 0
        v_peeled = rows_v >= 0
        covered = u_peeled | v_peeled
        n = len(us)
        if self._flags.size == 0:
            return covered, np.zeros(n, dtype=bool)
        v_in_u = self._table.contains(rows_u, vs)
        u_in_v = self._table.contains(rows_v, us)
        tau_u = self._flags[np.maximum(rows_u, 0)]
        tau_v = self._flags[np.maximum(rows_v, 0)]
        both = u_peeled & v_peeled
        by_round = np.where(tau_u <= tau_v, ~v_in_u, ~u_in_v)
        result = np.where(
            both, by_round, np.where(u_peeled, ~v_in_u, ~u_in_v)
        )
        return covered, result & covered & (us != vs)


class RangeBatch:
    """Vectorized ``F^R``: partial layer + per-core-vertex block ranges."""

    def __init__(self, solution) -> None:
        self._partial = PartialBatch(solution._partial)
        blocks = solution._blocks
        self._table = MemberTable(
            {v: sorted(blocks[v][2]) for v in blocks}
        )
        vertices = self._table.vertices
        self._lo = np.asarray([int(blocks[v][0]) for v in vertices],
                              dtype=np.int64)
        self._hi = np.asarray([int(blocks[v][1]) for v in vertices],
                              dtype=np.int64)

    def query(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        pu, pv = self._partial.rows(us), self._partial.rows(vs)
        covered, partial_result = self._partial.query(us, vs, pu, pv)
        rows_u, rows_v = self._table.rows(us), self._table.rows(vs)
        core_pair = (rows_u >= 0) & (rows_v >= 0) & ~covered
        if self._lo.size:
            safe_u = np.maximum(rows_u, 0)
            safe_v = np.maximum(rows_v, 0)
            u_certain = (
                (self._lo[safe_v] <= us) & (us <= self._hi[safe_v])
                & ~self._table.contains(rows_v, us)
            )
            v_certain = (
                (self._lo[safe_u] <= vs) & (vs <= self._hi[safe_u])
                & ~self._table.contains(rows_u, vs)
            )
            core_result = (u_certain | v_certain) & core_pair
        else:
            core_result = np.zeros(len(us), dtype=bool)
        result = np.where(covered, partial_result, core_result)
        return result & (us != vs)


class ModHashBatch:
    """Vectorized ``F^hash``/``F^bit``: partial layer + slot bit matrix."""

    def __init__(self, solution) -> None:
        self._partial = PartialBatch(solution._partial)
        self._m = solution._slot_bits()
        slots = solution._slots
        vertices = sorted(slots)
        self._position = make_position(vertices)
        words = (self._m + 63) // 64
        self._words = np.zeros((len(vertices), words), dtype=np.uint64)
        for row, v in enumerate(vertices):
            slot = slots[v]
            for w in range(words):
                self._words[row, w] = (slot >> (64 * w)) & 0xFFFFFFFFFFFFFFFF

    def _misses(self, rows: np.ndarray, probes: np.ndarray) -> np.ndarray:
        """``probes[i] % m`` not set in the slot of ``rows[i]``."""
        safe = np.maximum(rows, 0)
        bit = probes % self._m
        word = self._words[safe, bit // 64]
        hit = (word >> (bit % 64).astype(np.uint64)) & np.uint64(1)
        return hit == 0

    def query(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        pu, pv = self._partial.rows(us), self._partial.rows(vs)
        covered, partial_result = self._partial.query(us, vs, pu, pv)
        rows_u = rows_from_position(self._position, us)
        rows_v = rows_from_position(self._position, vs)
        core_pair = (rows_u >= 0) & (rows_v >= 0) & ~covered
        if len(self._words):
            core_result = (
                self._misses(rows_u, vs) & self._misses(rows_v, us)
                & core_pair
            )
        else:
            core_result = np.zeros(len(us), dtype=bool)
        result = np.where(covered, partial_result, core_result)
        return result & (us != vs)
