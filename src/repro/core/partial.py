"""The partial VEND solution ``(f^α, F^α)`` — Section IV-A/B.

Peel the graph at threshold ``k``: every vertex removed in round ``i``
has fewer than ``k`` residual neighbors, so its vector stores a
comparative round flag ``τ_i`` in dimension 0 and *all* of those
neighbors in the remaining ``k - 1`` dimensions.  Every NEpair touching
a peeled vertex is then decided exactly:

- both peeled, ``τ(v1) <= τ(v2)``: ``v2`` was still alive when ``v1``
  was removed, so ``v2 ∈ f^α(v1)`` iff they are adjacent;
- only ``v1`` peeled: core vertices are alive at every removal, so the
  same test applies;
- both in the core: undetermined (``F^α = 0``).

The flags ``τ_i`` are realized as negative integers ``i - 2^40`` —
ascending in ``i`` and disjoint from vertex IDs, as the paper suggests.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, peel
from .base import VendSolution, endpoint_arrays, register_solution
from .batch import PartialBatch

__all__ = ["PartialVend", "FLAG_OFFSET"]

#: τ_i = i - FLAG_OFFSET keeps flags negative and ordered by round.
FLAG_OFFSET = 2**40


@register_solution
class PartialVend(VendSolution):
    """Optimal encoding of the peeled vertices; core pairs undecided.

    Not a full solution on its own, but the building block every full
    version reuses and a useful lower bound in experiments.
    """

    name = "partial"

    #: Static baseline: mutations are handled by rebuilding (no hooks).
    supports_maintenance = False

    def __init__(self, k: int, int_bits: int = 32):
        super().__init__(k, int_bits)
        self._vectors: dict[int, list[int]] = {}
        self._members: dict[int, frozenset[int]] = {}
        self._core: set[int] = set()

    def build(self, graph: Graph) -> None:
        """Peel at threshold ``k`` and encode every removed vertex."""
        self._invalidate_batch()
        self._vectors.clear()
        self._members.clear()
        result = peel(graph, self.k)
        self._core = set(result.core_vertices)
        for v, round_no in result.round_of.items():
            neighbors = result.residual_neighbors[v]
            self._vectors[v] = [round_no - FLAG_OFFSET, *neighbors]
            self._members[v] = frozenset(neighbors)

    # -- queries -------------------------------------------------------------

    def is_encoded(self, v: int) -> bool:
        """True when ``v`` was peeled (is in ``V_k^α``)."""
        return v in self._vectors

    def vector(self, v: int) -> list[int]:
        """The raw ``f^α(v)`` vector (flag + residual neighbors)."""
        return self._vectors[v]

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        fu = self._vectors.get(u)
        fv = self._vectors.get(v)
        if fu is not None and fv is not None:
            if fu[0] <= fv[0]:
                return v not in self._members[u]
            return u not in self._members[v]
        if fu is not None:
            return v not in self._members[u]
        if fv is not None:
            return u not in self._members[v]
        return False  # both in the core: undetermined

    def is_nonedge_batch(self, pairs_u, pairs_v=None) -> np.ndarray:
        """Vectorized ``F^α`` over a pair batch (matches the scalar NDF)."""
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        if self._batch_index is None:
            self._batch_index = PartialBatch(self)
        snapshot = self._batch_index
        _, result = snapshot.query(us, vs, snapshot.rows(us), snapshot.rows(vs))
        return result

    def covers(self, u: int, v: int) -> bool:
        """True when ``F^α`` decides this pair exactly (either peeled)."""
        return u in self._vectors or v in self._vectors

    def memory_bytes(self) -> int:
        """Vectors are conceptually k dims of I bits each."""
        total_vertices = len(self._vectors) + len(self._core)
        return total_vertices * self.total_bits // 8

    @property
    def core_vertices(self) -> set[int]:
        return self._core
