"""Directed-graph extension of VEND — Appendix E.3 style.

The paper's storage setting already treats adjacency as undirected
("the adjacent list of each vertex contains both in and out
neighbors"), so the directed extension wraps any undirected VEND
solution around the projection: if no undirected edge connects
``(u, v)``, then neither directed edge ``u→v`` nor ``v→u`` exists, and
both directed queries can be filtered.  A directed query that survives
the filter still executes against storage, which resolves direction.
"""

from __future__ import annotations

from ..graph import DiGraph
from .base import VendSolution

__all__ = ["DirectedVend"]


class DirectedVend:
    """Directed NEpair determination over an undirected VEND solution.

    Parameters
    ----------
    base:
        Any (unbuilt) :class:`~repro.core.base.VendSolution`; it is
        built over the undirected projection of the directed graph.
    """

    def __init__(self, base: VendSolution):
        self.base = base
        self.name = f"directed-{base.name}"

    def build(self, digraph: DiGraph) -> None:
        """Encode the undirected projection of ``digraph``."""
        self.base.build(digraph.as_undirected())

    def is_nonedge(self, u: int, v: int) -> bool:
        """True only if the *directed* edge ``u→v`` certainly misses.

        Sound because the base solution certifies that no undirected
        edge exists, which subsumes both directions.
        """
        return self.base.is_nonedge(u, v)

    def is_nonedge_batch(self, pairs_u, pairs_v=None):
        """Vectorized directed NDF: delegates to the base solution."""
        return self.base.is_nonedge_batch(pairs_u, pairs_v)

    def memory_bytes(self) -> int:
        return self.base.memory_bytes()
