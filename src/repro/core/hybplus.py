"""The hyb+ VEND solution ``(f^hyb+, F^hyb+)`` — Section VI.

hyb+ keeps the hybrid's decodable codes and hash slots but re-encodes
each core vertex's neighbor block as an **array-implemented SS-tree**
compressed with **Stream VByte + differential coding**:

``[flag=1 | type | |B| | head | tail | control bytes | data bytes | hash slot]``

``head``/``tail`` are ``P_B[0]``/``P_B[1]`` stored raw (they bound the
block's range); the interior keys are grouped per SS-tree node, each
group delta-coded and Stream-VByte packed.  An NE-test membership probe
therefore walks ``O(log_s |B|)`` nodes, decoding each with one shuffle
(+ shift/add for the deltas) and testing membership/branching with
lane compares — Algorithm 4.

Compression usually *grows* the hash slot relative to the hybrid's
fixed ``I'``-bit entries, which is where hyb+'s score edge comes from.
Because the compressed size is value-dependent, the encoder verifies
the fit after selection and retries with a smaller block cap when a
pathological block would squeeze out the hash slot entirely.
"""

from __future__ import annotations

from .. import simd
from .base import register_solution
from .bitvector import BitVector
from .blocks import BLOCK_LEFT, BLOCK_MIDDLE, BLOCK_RIGHT, count_hash_misses, select_block
from .hybrid import HybridVend
from .sstree import SSTree

import numpy as np

__all__ = ["HybPlusVend"]


@register_solution
class HybPlusVend(HybridVend):
    """Hybrid VEND with SS-tree + Stream VByte core encoding.

    Parameters
    ----------
    scalar:
        SIMD lane count ``s`` (keys per SS-tree node).  4 matches the
        paper's SSE configuration; the ablation sweeps 2–16.
    """

    name = "hyb+"

    def __init__(self, k: int, int_bits: int = 32, id_bits: int | None = None,
                 selection_budget: int | None = 8, scalar: int = 4):
        super().__init__(k, int_bits, id_bits, selection_budget)
        if scalar < 2:
            raise ValueError("scalar value s must be >= 2")
        self.scalar = scalar

    # ------------------------------------------------------------- layout math

    def _groups_of(self, interior: int) -> list[int]:
        """Per-node active key counts for a block interior of given size."""
        if interior <= 0:
            return []
        num_nodes = -(-interior // self.scalar)
        counts = [self.scalar] * (num_nodes - 1)
        counts.append(interior - self.scalar * (num_nodes - 1))
        return counts

    def _estimated_slot_bits(self, block_size: int) -> int:
        """Optimistic slot estimate used during block selection.

        Assumes ~2 data bytes per interior key (typical after delta
        coding); the encoder verifies the true fit afterwards.
        """
        if block_size == 0:
            return self.total_bits - self._core_header
        interior = max(0, block_size - 2)
        control_bytes = sum(-(-a // simd.GROUP_SIZE) for a in self._groups_of(interior))
        bound_bits = self.id_bits if block_size == 1 else 2 * self.id_bits
        payload = bound_bits + 8 * (control_bytes + 2 * interior)
        return self.total_bits - self._core_header - payload

    # ---------------------------------------------------------------- encoding

    def _encode_core(self, neighbors: list[int],
                     exact: bool = True) -> BitVector:
        """Select a block, then lay it out as a compressed SS-tree."""
        if not neighbors:
            raise ValueError("core encoding needs at least one neighbor")
        neighbors = sorted(neighbors)
        max_size = self.k_star
        while True:
            choice = select_block(
                neighbors, self._max_id, self._estimated_slot_bits,
                max_size=max_size, budget=self.selection_budget,
            )
            code = self._try_encode(neighbors, choice, exact)
            if code is not None:
                return code
            # The compressed block did not leave a hash bit: shrink and
            # retry (size 0 always fits, so this terminates).
            max_size = choice.size - 1

    def _try_encode(self, neighbors: list[int], choice,
                    exact: bool = True) -> BitVector | None:
        members = choice.members(neighbors)
        interior = max(0, len(members) - 2)
        controls = bytearray()
        data = bytearray()
        if interior:
            tree = SSTree(members, self.scalar)
            for keys in tree.node_keys:
                ctrl, chunk = simd.encode(keys, delta=True)
                controls += ctrl
                data += chunk
        if not members:
            bound_bits = 0
        elif len(members) == 1:
            bound_bits = self.id_bits
        else:
            bound_bits = 2 * self.id_bits
        payload_bits = bound_bits + 8 * (len(controls) + len(data))
        slot_offset = self._core_header + payload_bits
        m = self.total_bits - slot_offset
        if m < 1:
            return None
        code = BitVector(self.total_bits)
        code.set_bit(0, 1)
        code.set_bit(self._EXACT_BIT, 1 if exact else 0)
        code.write_field(2, 2, choice.kind)
        code.write_field(4, self.count_bits, len(members))
        offset = self._core_header
        if members:
            code.write_field(offset, self.id_bits, members[0])
            offset += self.id_bits
            if len(members) >= 2:
                code.write_field(offset, self.id_bits, members[-1])
                offset += self.id_bits
        for byte in bytes(controls) + bytes(data):
            code.write_field(offset, 8, byte)
            offset += 8
        member_set = set(members)
        for vid in neighbors:
            if vid not in member_set:
                code.set_bit(slot_offset + (vid % m), 1)
        return code

    # ----------------------------------------------------------------- NE-test

    def _parse_core(self, code: BitVector):
        """Decode the self-describing core layout: returns
        ``(kind, size, head, tail, controls, actives, data_offset,
        slot_offset, m)`` — controls as a list of per-node control-byte
        lists aligned with per-node active counts."""
        kind = code.read_field(2, 2)
        size = code.read_field(4, self.count_bits)
        offset = self._core_header
        head = tail = None
        if size >= 1:
            head = code.read_field(offset, self.id_bits)
            offset += self.id_bits
            tail = head
            if size >= 2:
                tail = code.read_field(offset, self.id_bits)
                offset += self.id_bits
        actives = self._groups_of(max(0, size - 2))
        node_controls: list[list[int]] = []
        for active in actives:
            groups = -(-active // simd.GROUP_SIZE)
            node_controls.append(
                [code.read_field(offset + 8 * g, 8) for g in range(groups)]
            )
            offset += 8 * groups
        data_offset = offset
        data_bits = 0
        for controls, active in zip(node_controls, actives):
            remaining = active
            for ctrl in controls:
                lanes = min(simd.GROUP_SIZE, remaining)
                data_bits += 8 * simd.data_length(ctrl, lanes)
                remaining -= lanes
        slot_offset = data_offset + data_bits
        m = self.total_bits - slot_offset
        return (kind, size, head, tail, node_controls, actives,
                data_offset, slot_offset, m)

    def _decode_node(self, code: BitVector, node_controls, actives,
                     data_offset: int, node_index: int) -> np.ndarray:
        """Decode one SS-tree node's keys with the SIMD group decoder."""
        bit = data_offset
        for i in range(node_index):
            remaining = actives[i]
            for ctrl in node_controls[i]:
                lanes = min(simd.GROUP_SIZE, remaining)
                bit += 8 * simd.data_length(ctrl, lanes)
                remaining -= lanes
        keys: list[int] = []
        remaining = actives[node_index]
        for ctrl in node_controls[node_index]:
            lanes = min(simd.GROUP_SIZE, remaining)
            nbytes = simd.data_length(ctrl, lanes)
            raw = bytes(
                code.read_field(bit + 8 * b, 8) for b in range(nbytes)
            )
            register = simd.decode_group_simd(ctrl, raw, 0, delta=True)
            keys.extend(int(x) for x in register[:lanes])
            bit += 8 * nbytes
            remaining -= lanes
        return simd.lanes(keys, width=max(len(keys), 1))

    def _tree_contains(self, code: BitVector, vprime: int, node_controls,
                       actives, data_offset: int) -> bool:
        """Algorithm 4's descent over the array-implemented SS-tree."""
        num_nodes = len(actives)
        node_id: int | None = 1
        while node_id is not None and node_id <= num_nodes:
            register = self._decode_node(
                code, node_controls, actives, data_offset, node_id - 1
            )
            active = actives[node_id - 1]
            if simd.simd_any(simd.simd_compare_eq(register[:active], vprime)):
                return True
            branch = simd.simd_count_lt(register, vprime, active) + 1
            child = (node_id - 1) * (self.scalar + 1) + branch + 1
            node_id = child if child <= num_nodes else None
        return False

    def core_layout(self, code: BitVector) -> tuple[int, list[int], int, int]:
        """Uniform core view: decodes head/tail plus every SS-tree node."""
        (kind, size, head, tail, node_controls, actives,
         data_offset, slot_offset, m) = self._parse_core(code)
        members: list[int] = []
        if size >= 1:
            members.append(head)
        if size >= 2:
            members.append(tail)
        for index in range(len(actives)):
            register = self._decode_node(
                code, node_controls, actives, data_offset, index
            )
            members.extend(int(x) for x in register[:actives[index]])
        return kind, sorted(members), slot_offset, m

    def ne_test(self, vprime: int, code: BitVector) -> bool:
        if code.get_bit(0) == 0:
            return super().ne_test(vprime, code)
        (kind, size, head, tail, node_controls, actives,
         data_offset, slot_offset, m) = self._parse_core(code)
        if size > 0:
            if kind == BLOCK_LEFT:
                in_range = vprime <= tail
            elif kind == BLOCK_RIGHT:
                in_range = vprime >= head
            elif kind == BLOCK_MIDDLE:
                in_range = head <= vprime <= tail
            else:
                in_range = False
            if in_range:
                if vprime == head or vprime == tail:
                    return False
                return not self._tree_contains(
                    code, vprime, node_controls, actives, data_offset
                )
        return code.get_bit(slot_offset + (vprime % m)) == 0

    # ----------------------------------------------------------------- NT-size

    def nt_size(self, code: BitVector) -> int:
        if code.get_bit(0) == 0:
            return super().nt_size(code)
        (kind, size, head, tail, _controls, _actives,
         _data_offset, slot_offset, m) = self._parse_core(code)
        slot = code.read_field(slot_offset, m)
        zero_mask = np.array([(slot >> i) & 1 == 0 for i in range(m)],
                             dtype=bool)
        if size == 0:
            return count_hash_misses(zero_mask, self._max_id)
        if kind == BLOCK_LEFT:
            lo, hi = 1, tail
        elif kind == BLOCK_RIGHT:
            lo, hi = head, self._max_id
        else:
            lo, hi = head, tail
        out = count_hash_misses(zero_mask, self._max_id, lo, hi)
        return (hi - lo + 1 - size) + out
