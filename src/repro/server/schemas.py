"""Declarative request schemas for every server endpoint.

One schema language serves two masters:

- the server validates every request body against these dicts before a
  byte of graph machinery runs (:func:`validate` returns a list of
  structured error strings → HTTP 400, never a 5xx);
- the fuzz harness (:mod:`repro.devtools.fuzz`) *generates* from the
  same dicts — hypothesis strategies for valid payloads, and targeted
  mutations for invalid ones — so the schema is simultaneously the
  contract and the attack surface description (the schemathesis idea,
  scaled to the five endpoints we serve).

The language is deliberately tiny: ``int`` (``min``/``max``),
``string`` (``enum``), ``bool``, ``array`` (``items``, ``min_items``,
``max_items``), ``object`` (``fields``, each marked ``required`` or
optional; unknown fields are rejected).  Cross-field rules that a
per-field walk cannot express (mutation ops needing ``u != v``) live
in :func:`check_mutation_op`, which the server applies after
:func:`validate` and the fuzzer treats as part of validity.
"""

from __future__ import annotations

__all__ = [
    "MAX_VERTEX_ID",
    "MAX_PROBE_PAIRS",
    "MAX_MUTATION_OPS",
    "ENDPOINTS",
    "SchemaError",
    "validate",
    "check_mutation_op",
    "MUTATION_OPS",
]


class SchemaError(ValueError):
    """A schema definition (not a payload) is malformed."""


#: Vertex ids are non-negative and bounded so they always fit the
#: int64 endpoint arrays of the batch pipeline.
MAX_VERTEX_ID = 2**62

#: Per-request batch bounds: a cheap, schema-visible admission rule
#: (oversized arrays are a 400, not an OOM).
MAX_PROBE_PAIRS = 4096
MAX_MUTATION_OPS = 1024

#: Mutation verbs accepted by ``/v1/mutations``.
MUTATION_OPS = ("add_edge", "remove_edge", "add_vertex", "remove_vertex")

VERTEX_ID = {"type": "int", "min": 0, "max": MAX_VERTEX_ID}

PAIR = {
    "type": "array",
    "items": VERTEX_ID,
    "min_items": 2,
    "max_items": 2,
}

PROBE_REQUEST = {
    "type": "object",
    "fields": {
        "pairs": {
            "type": "array",
            "items": PAIR,
            "min_items": 0,
            "max_items": MAX_PROBE_PAIRS,
            "required": True,
        },
    },
}

NEIGHBORS_REQUEST = {
    "type": "object",
    "fields": {
        "vertex": {**VERTEX_ID, "required": True},
    },
}

MUTATION_OP = {
    "type": "object",
    "fields": {
        "op": {"type": "string", "enum": MUTATION_OPS, "required": True},
        "u": dict(VERTEX_ID),
        "v": dict(VERTEX_ID),
    },
}

MUTATIONS_REQUEST = {
    "type": "object",
    "fields": {
        "ops": {
            "type": "array",
            "items": MUTATION_OP,
            "min_items": 1,
            "max_items": MAX_MUTATION_OPS,
            "required": True,
        },
    },
}

#: ``(method, path) -> request schema`` (None: no body expected).
ENDPOINTS: dict[tuple[str, str], dict | None] = {
    ("POST", "/v1/edges:probe"): PROBE_REQUEST,
    ("POST", "/v1/neighbors"): NEIGHBORS_REQUEST,
    ("POST", "/v1/mutations"): MUTATIONS_REQUEST,
    ("GET", "/healthz"): None,
    ("GET", "/metrics"): None,
}


def validate(schema: dict, value, path: str = "$") -> list[str]:
    """Walk ``value`` against ``schema``; return every violation.

    Errors are human-readable strings anchored with a JSONPath-style
    locator so a fuzz failure names the exact field.  An empty list
    means the payload conforms.
    """
    kind = schema.get("type")
    if kind == "int":
        # bool is an int subclass; a JSON true is not a vertex id.
        if not isinstance(value, int) or isinstance(value, bool):
            return [f"{path}: expected integer, got {_name(value)}"]
        errors = []
        if "min" in schema and value < schema["min"]:
            errors.append(f"{path}: {value} < minimum {schema['min']}")
        if "max" in schema and value > schema["max"]:
            errors.append(f"{path}: {value} > maximum {schema['max']}")
        return errors
    if kind == "string":
        if not isinstance(value, str):
            return [f"{path}: expected string, got {_name(value)}"]
        enum = schema.get("enum")
        if enum is not None and value not in enum:
            return [f"{path}: {value!r} not one of {list(enum)}"]
        return []
    if kind == "bool":
        if not isinstance(value, bool):
            return [f"{path}: expected boolean, got {_name(value)}"]
        return []
    if kind == "array":
        if not isinstance(value, list):
            return [f"{path}: expected array, got {_name(value)}"]
        errors = []
        n = len(value)
        if "min_items" in schema and n < schema["min_items"]:
            errors.append(f"{path}: {n} items < minimum "
                          f"{schema['min_items']}")
        if "max_items" in schema and n > schema["max_items"]:
            errors.append(f"{path}: {n} items > maximum "
                          f"{schema['max_items']}")
            return errors  # don't walk a deliberately huge payload
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                errors.extend(validate(items, item, f"{path}[{i}]"))
        return errors
    if kind == "object":
        if not isinstance(value, dict):
            return [f"{path}: expected object, got {_name(value)}"]
        errors = []
        fields = schema.get("fields", {})
        for name, sub in fields.items():
            if name not in value:
                if sub.get("required"):
                    errors.append(f"{path}: missing required field "
                                  f"{name!r}")
                continue
            errors.extend(validate(sub, value[name], f"{path}.{name}"))
        for name in value:
            if name not in fields:
                errors.append(f"{path}: unknown field {name!r}")
        return errors
    raise SchemaError(f"unknown schema type {kind!r} at {path}")


def check_mutation_op(op: dict, path: str = "$") -> list[str]:
    """Cross-field rules for one (already field-valid) mutation op."""
    verb = op.get("op")
    errors = []
    if verb in ("add_edge", "remove_edge"):
        for field in ("u", "v"):
            if field not in op:
                errors.append(f"{path}: {verb} requires field {field!r}")
        if not errors and op["u"] == op["v"]:
            errors.append(f"{path}: self loops are not allowed "
                          f"(u == v == {op['u']})")
    elif verb in ("add_vertex", "remove_vertex"):
        if "v" not in op:
            errors.append(f"{path}: {verb} requires field 'v'")
        if "u" in op:
            errors.append(f"{path}: {verb} does not take field 'u'")
    return errors


def _name(value) -> str:
    return type(value).__name__
