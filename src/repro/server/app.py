"""The VEND edge-query server: asyncio front door over ``VendGraphDB``.

Architecture (DESIGN.md §15):

- **One event loop** accepts connections and parses/validates requests
  (:mod:`~repro.server.http`, :mod:`~repro.server.schemas`).  Nothing
  on the loop ever touches the graph.
- **One db worker thread** owns every ``VendGraphDB`` call.  Probes,
  mutations and neighbor reads are serialized through it, so the
  server needs no locking discipline of its own on top of the store's
  — exactly one thread observes graph state, and the engine's batch
  pipeline parallelizes *inside* a call via its own shard pool.
- **Micro-batching**: concurrent ``/v1/edges:probe`` requests land in
  a queue; the batcher drains it, waits up to ``batch_window`` seconds
  for stragglers (bounded by ``max_batch_pairs``), concatenates every
  request's pairs in arrival order, answers them with *one*
  ``has_edge_batch`` call, and slices the verdict array back per
  request — input order within each request is preserved by
  construction, and the engine books per-shard stats exactly as if one
  giant client had asked.
- **Admission + backpressure**: per-client token buckets
  (:mod:`~repro.server.admission`) price a probe batch by its pair
  count; a full queue or the storage layer's ``degraded`` latch turns
  new work away with 429 + ``Retry-After`` instead of queueing into
  collapse.

Error contract: malformed framing, bodies, or schema violations are
*always* structured 4xx JSON (``{"error": {...}}``) — the fuzz harness
(:mod:`repro.devtools.fuzz`) hammers this promise with generated
garbage and asserts no 5xx and no wrong verdict ever escapes.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..obs import default_registry
from .admission import AdmissionController
from .http import ProtocolError, Request, read_request, render_response
from .schemas import ENDPOINTS, check_mutation_op, validate

__all__ = ["ServerConfig", "VendServer", "ServerHandle", "serve_in_thread"]

logger = logging.getLogger(__name__)

_KNOWN_PATHS = {path for _method, path in ENDPOINTS}


@dataclass
class ServerConfig:
    """Tunables for :class:`VendServer` (defaults favor correctness)."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0: ephemeral, read back after start
    #: Seconds the batcher waits for more probe requests to coalesce.
    batch_window: float = 0.002
    #: Pair budget per coalesced engine call.
    max_batch_pairs: int = 16384
    #: In-flight pair bound; beyond it new probes get 429.
    max_queue_pairs: int = 65536
    #: Token-bucket refill rate per client (tokens/s); <= 0 disables.
    rate: float = 0.0
    #: Token-bucket capacity per client.
    burst: float = 10000.0
    #: Request body size limit (bytes).
    max_body: int = 1 << 20
    #: ``Retry-After`` seconds suggested while the store is degraded.
    degraded_retry_after: float = 1.0


@dataclass
class _ProbeItem:
    """One enqueued probe request awaiting a coalesced batch."""

    us: np.ndarray
    vs: np.ndarray
    future: asyncio.Future = field(repr=False)

    @property
    def count(self) -> int:
        return len(self.us)


class VendServer:
    """Serve a built :class:`~repro.apps.VendGraphDB` over HTTP/JSON."""

    def __init__(self, db, config: ServerConfig | None = None,
                 registry=None):
        self.db = db
        self.config = config or ServerConfig()
        registry = registry or default_registry()
        self._scope = registry.scope("server")
        self._requests = registry.counter(
            "repro_server_requests_total",
            "HTTP requests answered, by endpoint and status code")
        self._rejected = registry.counter(
            "repro_server_rejected_total",
            "Requests turned away (admission, backpressure, validation)")
        self._batches = registry.counter(
            "repro_server_coalesced_batches_total",
            "Engine batch calls issued by the micro-batcher")
        self._batched_pairs = registry.counter(
            "repro_server_coalesced_pairs_total",
            "Probe pairs answered through coalesced engine batches")
        self._latency = registry.histogram(
            "repro_server_request_latency_seconds",
            "Wall-clock latency of request handling, by endpoint")
        self._inflight_gauge = registry.gauge(
            "repro_server_inflight_pairs",
            "Probe pairs enqueued or executing right now")
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[_ProbeItem] = asyncio.Queue()
        self._inflight_pairs = 0
        self._batcher_task: asyncio.Task | None = None
        # Every VendGraphDB call happens on this one thread; see the
        # module docstring for why that is the whole locking story.
        self._db_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="vend-db")
        self._admission = AdmissionController(self.config.rate,
                                              self.config.burst)

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._batcher_task = asyncio.ensure_future(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher_task is not None:
            self._batcher_task.cancel()
            try:
                await self._batcher_task
            except asyncio.CancelledError:
                pass
            self._batcher_task = None
        self._db_executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = peer[0] if isinstance(peer, tuple) else str(peer)
        try:
            while True:
                try:
                    request = await read_request(reader,
                                                 self.config.max_body)
                except ProtocolError as exc:
                    payload = render_response(
                        exc.status,
                        _error_body(exc.status, exc.message),
                        keep_alive=False)
                    self._requests.inc(endpoint="malformed",
                                       code=str(exc.status),
                                       server=self._scope)
                    writer.write(payload)
                    await writer.drain()
                    return
                if request is None:
                    return
                start = time.perf_counter()
                status, response = await self._dispatch(request, peer_id)
                endpoint = (request.path
                            if request.path in _KNOWN_PATHS else "unknown")
                self._requests.inc(endpoint=endpoint, code=str(status),
                                   server=self._scope)
                self._latency.labels(
                    endpoint=endpoint, server=self._scope,
                ).observe(time.perf_counter() - start)
                keep = request.header("connection").lower() != "close"
                writer.write(response if keep else
                             response.replace(b"keep-alive", b"close", 1))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request,
                        peer_id: str) -> tuple[int, bytes]:
        """Route one request; returns (status, rendered response)."""
        try:
            return await self._dispatch_inner(request, peer_id)
        except Exception:  # the fuzz contract's last line of defense
            logger.exception("unhandled error serving %s %s",
                             request.method, request.path)
            return 500, render_response(
                500, _error_body(500, "internal server error"))

    async def _dispatch_inner(self, request: Request,
                              peer_id: str) -> tuple[int, bytes]:
        path, method = request.path, request.method
        if path not in _KNOWN_PATHS:
            return 404, render_response(
                404, _error_body(404, f"unknown path {path!r}"))
        if (method, path) not in ENDPOINTS:
            return 405, render_response(
                405, _error_body(405, f"{method} not allowed on {path}"))

        if path == "/healthz":
            return self._handle_healthz()
        if path == "/metrics":
            body = default_registry().to_prometheus().encode("utf-8")
            return 200, render_response(
                200, body, content_type="text/plain; version=0.0.4")

        # Serving endpoints: admission, backpressure, then the schema.
        client = request.header("x-client-id") or peer_id
        retry = self._admission.admit(client)
        if retry > 0.0:
            return self._reject(429, "admission",
                                f"client {client!r} over rate limit", retry)
        if self.db.degraded:
            return self._reject(
                429, "backpressure_degraded",
                "storage layer is degraded; back off and retry",
                self.config.degraded_retry_after)

        payload, errors = _parse_json(request.body)
        if errors is None:
            errors = validate(ENDPOINTS[(method, path)], payload)
        if not errors and path == "/v1/mutations":
            for i, op in enumerate(payload["ops"]):
                errors.extend(check_mutation_op(op, f"$.ops[{i}]"))
        if errors:
            self._rejected.inc(reason="invalid", server=self._scope)
            return 400, render_response(
                400, _error_body(400, "request does not match schema",
                                 details=errors[:16]))

        if path == "/v1/edges:probe":
            return await self._handle_probe(payload, client)
        if path == "/v1/neighbors":
            return await self._handle_neighbors(payload)
        return await self._handle_mutations(payload)

    def _reject(self, status: int, reason: str, message: str,
                retry_after: float) -> tuple[int, bytes]:
        self._rejected.inc(reason=reason, server=self._scope)
        body = _error_body(status, message, retry_after=retry_after)
        return status, render_response(
            status, body,
            extra_headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"})

    # -- endpoint handlers -------------------------------------------------

    def _handle_healthz(self) -> tuple[int, bytes]:
        degraded = bool(self.db.degraded)
        doc = {
            "status": "degraded" if degraded else "ok",
            "shards": self.db.num_shards,
            "replicas": self.db.replicas,
            "inflight_pairs": self._inflight_pairs,
        }
        status = 503 if degraded else 200
        return status, render_response(status, _json_bytes(doc))

    async def _handle_probe(self, payload: dict,
                            client: str) -> tuple[int, bytes]:
        pairs = payload["pairs"]
        n = len(pairs)
        if n == 0:
            return 200, render_response(200, _json_bytes({"results": []}))
        # Batch pricing: n pairs cost n tokens (one was already paid).
        if n > 1:
            retry = self._admission.admit(client, cost=float(n - 1))
            if retry > 0.0:
                return self._reject(
                    429, "admission",
                    f"batch of {n} pairs over client rate limit", retry)
        if self._inflight_pairs + n > self.config.max_queue_pairs:
            return self._reject(
                429, "backpressure_queue",
                f"probe queue full ({self._inflight_pairs} pairs in "
                f"flight)", max(self.config.batch_window * 4, 0.01))
        arr = np.asarray(pairs, dtype=np.int64)
        item = _ProbeItem(us=arr[:, 0], vs=arr[:, 1],
                          future=asyncio.get_running_loop().create_future())
        self._inflight_pairs += n
        self._inflight_gauge.labels(server=self._scope).set(
            self._inflight_pairs)
        await self._queue.put(item)
        try:
            results = await item.future
        finally:
            self._inflight_pairs -= n
            self._inflight_gauge.labels(server=self._scope).set(
                self._inflight_pairs)
        doc = {"results": [bool(x) for x in results]}
        return 200, render_response(200, _json_bytes(doc))

    async def _handle_neighbors(self, payload: dict) -> tuple[int, bytes]:
        vertex = payload["vertex"]
        loop = asyncio.get_running_loop()
        doc = await loop.run_in_executor(
            self._db_executor, self._neighbors_on_db_thread, vertex)
        return 200, render_response(200, _json_bytes(doc))

    async def _handle_mutations(self, payload: dict) -> tuple[int, bytes]:
        loop = asyncio.get_running_loop()
        results = await loop.run_in_executor(
            self._db_executor, self._mutations_on_db_thread,
            payload["ops"])
        return 200, render_response(200, _json_bytes({"results": results}))

    # -- db-thread bodies --------------------------------------------------

    def _neighbors_on_db_thread(self, vertex: int) -> dict:
        if not self.db.has_vertex(vertex):
            return {"vertex": vertex, "exists": False, "neighbors": []}
        return {"vertex": vertex, "exists": True,
                "neighbors": [int(u) for u in self.db.neighbors(vertex)]}

    def _mutations_on_db_thread(self, ops: list[dict]) -> list[dict]:
        out = []
        for op in ops:
            verb = op["op"]
            if verb == "add_edge":
                applied = self.db.add_edge(op["u"], op["v"])
            elif verb == "remove_edge":
                applied = self.db.remove_edge(op["u"], op["v"])
            elif verb == "add_vertex":
                applied = not self.db.has_vertex(op["v"])
                if applied:
                    self.db.add_vertex(op["v"])
            else:  # remove_vertex — the schema admits no other verb
                applied = self.db.remove_vertex(op["v"])
            out.append({"op": verb, "applied": bool(applied)})
        return out

    def _probe_on_db_thread(self, batch: list[_ProbeItem]) -> list:
        """Answer one coalesced batch with a single engine call.

        Pairs touching vertices the store does not hold are answered
        ``False`` here (an absent vertex has no edges) and masked out
        *on the db thread*, after any in-flight mutation has finished —
        the engine's storage probe raises on unknown keys by contract,
        so unknown ids must never reach it.
        """
        us = np.concatenate([item.us for item in batch])
        vs = np.concatenate([item.vs for item in batch])
        n = len(us)
        unique_ids = np.unique(np.concatenate([us, vs]))
        known = {int(i) for i in unique_ids.tolist()
                 if self.db.has_vertex(int(i))}
        mask = np.fromiter(
            (u in known and v in known
             for u, v in zip(us.tolist(), vs.tolist())),
            dtype=bool, count=n)
        answers = np.zeros(n, dtype=bool)
        if mask.any():
            answers[mask] = self.db.has_edge_batch(us[mask], vs[mask])
        self._batches.inc(server=self._scope)
        self._batched_pairs.inc(n, server=self._scope)
        # Slice the flat verdict array back per request, arrival order.
        out, offset = [], 0
        for item in batch:
            out.append(answers[offset:offset + item.count])
            offset += item.count
        return out

    # -- the micro-batcher -------------------------------------------------

    async def _batch_loop(self) -> None:
        """Coalesce queued probe requests into engine batch calls."""
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            batch = [item]
            total = item.count
            if self.config.batch_window > 0:
                deadline = loop.time() + self.config.batch_window
                while total < self.config.max_batch_pairs:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(),
                                                     timeout)
                    except asyncio.TimeoutError:
                        break
                    batch.append(nxt)
                    total += nxt.count
            else:
                while (total < self.config.max_batch_pairs
                       and not self._queue.empty()):
                    nxt = self._queue.get_nowait()
                    batch.append(nxt)
                    total += nxt.count
            try:
                results = await loop.run_in_executor(
                    self._db_executor, self._probe_on_db_thread, batch)
            except asyncio.CancelledError:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.cancel()
                raise
            except Exception as exc:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
            else:
                for pending, result in zip(batch, results):
                    if not pending.future.done():
                        pending.future.set_result(result)


# -- JSON plumbing ----------------------------------------------------------


def _json_bytes(doc) -> bytes:
    return json.dumps(doc, separators=(",", ":")).encode("utf-8")


def _error_body(status: int, message: str, details: list[str] | None = None,
                retry_after: float | None = None) -> bytes:
    error: dict = {"code": status, "message": message}
    if details:
        error["details"] = details
    if retry_after is not None:
        error["retry_after"] = round(retry_after, 3)
    return _json_bytes({"error": error})


def _parse_json(body: bytes) -> tuple[object, list[str] | None]:
    """Parse a request body; (value, None) or (None, [error])."""
    if not body:
        return None, ["$: request body is required"]
    try:
        return json.loads(body.decode("utf-8")), None
    except UnicodeDecodeError:
        return None, ["$: body is not valid UTF-8"]
    except json.JSONDecodeError as exc:
        return None, [f"$: body is not valid JSON ({exc.msg} at "
                      f"offset {exc.pos})"]


# -- threaded harness (tests, fuzzing, CLI) ---------------------------------


class ServerHandle:
    """A running server on a background event-loop thread."""

    def __init__(self, server: VendServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.server.port}"

    @property
    def address(self) -> tuple[str, int]:
        return self.server.config.host, self.server.port

    def stop(self) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self._loop).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(db, config: ServerConfig | None = None,
                    registry=None) -> ServerHandle:
    """Start a :class:`VendServer` on a dedicated event-loop thread.

    Returns once the listening socket is bound, so ``handle.url`` is
    immediately connectable.  The caller owns ``db`` — :meth:`stop`
    does not close it.
    """
    server = VendServer(db, config, registry=registry)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    startup_error: list[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            startup_error.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()
        # Drain cancellations scheduled by stop() before the join.
        pending = asyncio.all_tasks(loop)
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))

    thread = threading.Thread(target=run, name="vend-server", daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("server failed to start within 30s")
    if startup_error:
        thread.join(timeout=5)
        raise startup_error[0]
    return ServerHandle(server, loop, thread)
