"""repro.server — the asyncio HTTP/JSON front door (DESIGN.md §15).

The paper's deployment picture (Fig. 1; Appendix E.1's Neo4j case
study) is a graph *service* whose edge-query path consults in-memory
VEND codes before disk.  This package puts :class:`~repro.apps.VendGraphDB`
behind a network API without any framework dependency — HTTP/1.1
framing over stdlib ``asyncio`` streams:

- ``POST /v1/edges:probe``  — batch edge probes, coalesced across
  concurrent clients into the sharded batch pipeline;
- ``POST /v1/neighbors``    — adjacency reads;
- ``POST /v1/mutations``    — edge/vertex inserts and deletes;
- ``GET  /healthz``         — liveness + the storage ``degraded`` latch;
- ``GET  /metrics``         — the Prometheus exposition from
  :mod:`repro.obs`, rendered scrape-consistently.

Request bodies are validated against the declarative schemas in
:mod:`~repro.server.schemas` — the same schemas the fuzz harness
(:mod:`repro.devtools.fuzz`) derives its hypothesis strategies from,
so the server's contract and its attacker share one source of truth.
"""

from .admission import AdmissionController, TokenBucket
from .app import ServerConfig, ServerHandle, VendServer, serve_in_thread
from .schemas import ENDPOINTS, SchemaError, validate

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ServerConfig",
    "ServerHandle",
    "VendServer",
    "serve_in_thread",
    "ENDPOINTS",
    "SchemaError",
    "validate",
]
