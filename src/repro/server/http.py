"""Minimal HTTP/1.1 framing over asyncio streams.

No framework, no dependency: the server needs exactly request-line +
headers + Content-Length body parsing with hard limits, keep-alive,
and response rendering.  Everything a client can get wrong maps to a
:class:`ProtocolError` carrying the 4xx status the connection handler
should answer with — malformed framing is a *client* error and must
never surface as a 5xx (the fuzz harness asserts this end to end).

Limits (all pre-body, so a hostile client cannot make us buffer
unbounded data): request line ≤ 8 KiB, ≤ 100 header lines of ≤ 8 KiB,
body ≤ ``max_body`` bytes (413 beyond it).  ``Transfer-Encoding`` is
not implemented and is rejected as a 411 (length required) rather
than silently misframing the stream.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = ["Request", "ProtocolError", "read_request", "render_response",
           "STATUS_REASONS"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINE = 8192
_MAX_HEADERS = 100

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """Unparseable or over-limit request framing (always a 4xx)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def _read_line(reader: asyncio.StreamReader, limit: int,
                     what: str) -> bytes:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError from exc  # clean connection close
        raise ProtocolError(400, f"truncated {what}") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(400, f"{what} exceeds limit") from exc
    if len(line) > limit:
        raise ProtocolError(400, f"{what} exceeds {limit} bytes")
    return line[:-2]


async def read_request(reader: asyncio.StreamReader,
                       max_body: int) -> Request | None:
    """Parse one request; None on clean EOF before any bytes."""
    try:
        raw = await _read_line(reader, _MAX_REQUEST_LINE, "request line")
    except EOFError:
        return None
    if not raw:
        # Tolerate one blank line between pipelined requests.
        try:
            raw = await _read_line(reader, _MAX_REQUEST_LINE, "request line")
        except EOFError:
            return None
    parts = raw.split(b" ")
    if len(parts) != 3:
        raise ProtocolError(400, "malformed request line")
    method_b, target_b, version = parts
    if version not in (b"HTTP/1.1", b"HTTP/1.0"):
        raise ProtocolError(400, f"unsupported version "
                                 f"{version.decode('latin-1')!r}")
    try:
        method = method_b.decode("ascii")
        target = target_b.decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError(400, "non-ascii request line") from exc

    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADERS + 1):
        try:
            line = await _read_line(reader, _MAX_HEADER_LINE, "header")
        except EOFError as exc:
            raise ProtocolError(400, "truncated headers") from exc
        if not line:
            break
        if len(headers) >= _MAX_HEADERS:
            raise ProtocolError(400, "too many headers")
        name, sep, value = line.partition(b":")
        if not sep:
            raise ProtocolError(400, "malformed header line")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip())
        except UnicodeDecodeError as exc:
            raise ProtocolError(400, "non-ascii header name") from exc
    else:
        raise ProtocolError(400, "unterminated header block")

    if "transfer-encoding" in headers:
        raise ProtocolError(411, "transfer-encoding is not supported; "
                                 "send Content-Length")
    body = b""
    length_raw = headers.get("content-length")
    if length_raw is not None:
        try:
            length = int(length_raw)
        except ValueError as exc:
            raise ProtocolError(400, "malformed Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > max_body:
            raise ProtocolError(413, f"body of {length} bytes exceeds "
                                     f"the {max_body}-byte limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(400, "truncated body") from exc

    # Strip any query string: routes are exact paths.
    path = target.split("?", 1)[0]
    return Request(method=method, path=path, headers=headers, body=body)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None,
                    keep_alive: bool = True) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body
