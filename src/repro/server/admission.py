"""Per-client token-bucket admission control.

A serving layer for "millions of users" cannot let one hot client
starve the rest: every client (keyed by ``X-Client-Id`` header, or the
peer address when absent) owns a token bucket refilled at ``rate``
tokens/second up to ``burst``.  A request costs one token by default;
batch probes cost one token per pair so a 4096-pair batch and 4096
single probes are priced identically.

Denials return the exact time until the next token, which the server
surfaces as a ``Retry-After`` header — a well-behaved client backs off
precisely as long as needed, never in lockstep (the same retry-storm
reasoning as the storage layer's jittered backoff; see
:mod:`repro.storage.faults`).

The controller is touched only from the event-loop thread, so it needs
no locking; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import time

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_take(self, cost: float, now: float) -> float:
        """Admit (return 0.0) or deny with seconds-until-affordable."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        missing = min(cost, self.burst) - self.tokens
        return missing / self.rate


class AdmissionController:
    """One bucket per client id, lazily created, idle-pruned.

    ``rate <= 0`` disables admission entirely (every request admitted)
    — the switch the CLI exposes as ``--rate 0``.
    """

    #: Buckets idle this long are dropped on the next sweep.
    IDLE_SECONDS = 300.0
    #: Sweep cadence, counted in ``admit`` calls.
    _SWEEP_EVERY = 1024

    def __init__(self, rate: float, burst: float,
                 clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._calls = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client: str, cost: float = 1.0) -> float:
        """0.0 when admitted, else the suggested Retry-After seconds."""
        if not self.enabled:
            return 0.0
        now = self._clock()
        self._calls += 1
        if self._calls % self._SWEEP_EVERY == 0:
            self._prune(now)
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, now)
        return bucket.try_take(cost, now)

    def _prune(self, now: float) -> None:
        stale = [client for client, bucket in self._buckets.items()
                 if now - bucket.updated > self.IDLE_SECONDS]
        for client in stale:
            del self._buckets[client]

    def __len__(self) -> int:
        return len(self._buckets)
