"""repro — reproduction of "Vertex Encoding for Edge Nonexistence
Determination With SIMD Acceleration" (VEND, ICDE/TKDE 2023).

The package layers:

- :mod:`repro.graph` — in-memory graph, generators, peeling;
- :mod:`repro.storage` — the disk-resident adjacency store VEND guards;
- :mod:`repro.simd` — the SIMD register model and Stream VByte codec;
- :mod:`repro.core` — VEND solutions (partial, range, hash, bit-hash,
  hybrid, hyb+), the NDF contract, and score evaluation;
- :mod:`repro.filters` — Bloom-filter comparators (SBF/BBF/CBF/LBF);
- :mod:`repro.apps` — edge-query engine, triangle counting, matching;
- :mod:`repro.workloads` / :mod:`repro.datasets` / :mod:`repro.bench` —
  experiment machinery reproducing the paper's tables and figures.

Quickstart::

    from repro import HybridVend, vend_score
    from repro.graph import powerlaw_graph
    from repro.workloads import random_pairs

    graph = powerlaw_graph(10_000, avg_degree=12, seed=0)
    vend = HybridVend(k=8)
    vend.build(graph)
    report = vend_score(vend, graph, random_pairs(graph, 100_000, seed=1))
    print(f"VEND score: {report.score:.3f}")
"""

from .core import (
    DirectedVend,
    load_index,
    save_index,
    BitHashVend,
    GraphNeighborFetch,
    HashVend,
    HybPlusVend,
    HybridVend,
    IdCapacityError,
    PartialVend,
    RangeVend,
    VendSolution,
    available_solutions,
    create_solution,
    exact_vend_score,
    vend_score,
)

__version__ = "1.0.0"

__all__ = [
    "VendSolution",
    "PartialVend",
    "RangeVend",
    "HashVend",
    "BitHashVend",
    "HybridVend",
    "HybPlusVend",
    "DirectedVend",
    "save_index",
    "load_index",
    "IdCapacityError",
    "GraphNeighborFetch",
    "available_solutions",
    "create_solution",
    "vend_score",
    "exact_vend_score",
    "__version__",
]
