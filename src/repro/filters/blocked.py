"""Blocked Bloom filter (Putze, Sanders & Singler) — Section VII-A.

The slot is partitioned into 512-bit blocks (the paper's setting); the
first hash of an edge picks its block and the remaining hashes probe
inside it.  A deletion only rebuilds the affected block — but finding
the edges that belong to that block still requires hashing the *entire*
edge set, which is exactly the inefficiency Fig. 10 demonstrates.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..graph import Graph
from .bloom import optimal_hash_count
from .hashing import edge_hash

__all__ = ["BlockedBloomFilter"]


class BlockedBloomFilter:
    """Edge-set Bloom filter with per-block reconstruction on delete."""

    name = "BBF"

    def __init__(self, k: int, int_bits: int = 32, block_bits: int = 512,
                 num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        if block_bits < 8:
            raise ValueError("block_bits must be >= 8")
        self.k = k
        self.int_bits = int_bits
        self.block_bits = block_bits
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        self._bits = np.zeros(0, dtype=bool)
        self.num_blocks = 0
        self.block_rebuilds = 0
        self.edges_rehashed = 0

    def build(self, graph: Graph) -> None:
        slot = max(self.block_bits,
                   graph.num_vertices * self.k * self.int_bits)
        self.num_blocks = max(1, slot // self.block_bits)
        self._bits = np.zeros(self.num_blocks * self.block_bits, dtype=bool)
        per_block_items = max(1, graph.num_edges) / self.num_blocks
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(self.block_bits, round(per_block_items))
        )
        for u, v in graph.edges():
            self.insert_edge(u, v)

    def block_of(self, u: int, v: int) -> int:
        """The block an edge hashes into (first hash function)."""
        return edge_hash(u, v, salt=0) % self.num_blocks

    def _positions(self, u: int, v: int) -> list[int]:
        base = self.block_of(u, v) * self.block_bits
        return [
            base + edge_hash(u, v, salt) % self.block_bits
            for salt in range(1, self.num_hashes + 1)
        ]

    def insert_edge(self, u: int, v: int) -> None:
        for pos in self._positions(u, v):
            self._bits[pos] = True

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return any(not self._bits[pos] for pos in self._positions(u, v))

    def delete_edge(self, u: int, v: int,
                    surviving_edges: Iterable[tuple[int, int]]) -> None:
        """Rebuild only the affected block — after hashing every edge."""
        block = self.block_of(u, v)
        start = block * self.block_bits
        self._bits[start:start + self.block_bits] = False
        for a, b in surviving_edges:
            self.edges_rehashed += 1
            if {a, b} != {u, v} and self.block_of(a, b) == block:
                self.insert_edge(a, b)
        self.block_rebuilds += 1

    def memory_bytes(self) -> int:
        return len(self._bits) // 8
