"""Local Bloom filter (LBF) — Section VII-A.

Like the hybrid solution, LBF peels the graph first: vertices outside
the core keep an explicit (exact) neighbor list in their ``k·I``-bit
budget, while each core vertex turns its code into a small private
Bloom filter over its neighbor IDs.  Deleting an edge only rebuilds the
one affected per-vertex slot, which is why the paper finds LBF's
deletions far cheaper than SBF/BBF's global scans.  The paper notes the
bit-hash VEND version is the one-hash special case of this filter.

A pair is reported as an NEpair only when *each* endpoint misses in the
other's structure — sound because every edge is recorded on both sides
(exact lists record residual edges at build time; maintenance records
new edges in both endpoints).
"""

from __future__ import annotations

from ..core.base import NeighborFetch
from ..graph import Graph, peel
from .bloom import optimal_hash_count
from .hashing import vertex_hash

__all__ = ["LocalBloomFilter"]

_EXACT = 0
_BLOOM = 1


class LocalBloomFilter:
    """Per-vertex Bloom slots over the core + exact peeled lists."""

    name = "LBF"

    def __init__(self, k: int, int_bits: int = 32, num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.int_bits = int_bits
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        # v -> (_EXACT, frozen id set) or (_BLOOM, slot bits as int)
        self._codes: dict[int, tuple[int, object]] = {}
        self.slot_bits = k * int_bits - 1  # one bit marks the kind
        self._exact_capacity = 0
        self.slot_rebuilds = 0

    def build(self, graph: Graph) -> None:
        id_bits = max(1, graph.max_vertex_id.bit_length())
        self._exact_capacity = max(1, self.slot_bits // id_bits)
        result = peel(graph, self._exact_capacity + 1)
        core_degrees = [
            len(result.core_adjacency[v]) for v in result.core_vertices
        ]
        avg_items = (
            sum(core_degrees) / len(core_degrees) if core_degrees else 1
        )
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(self.slot_bits, round(avg_items))
        )
        self._codes.clear()
        for v, neighbors in result.residual_neighbors.items():
            self._codes[v] = (_EXACT, frozenset(neighbors))
        for v in result.core_vertices:
            self._codes[v] = (_BLOOM, self._slot(result.core_adjacency[v]))

    # -- slot machinery -----------------------------------------------------------

    def _slot(self, ids) -> int:
        bits = 0
        for vid in ids:
            for salt in range(self.num_hashes):
                bits |= 1 << (vertex_hash(vid, salt) % self.slot_bits)
        return bits

    def _misses(self, probe: int, code: tuple[int, object]) -> bool:
        kind, payload = code
        if kind == _EXACT:
            return probe not in payload  # type: ignore[operator]
        slot: int = payload  # type: ignore[assignment]
        return any(
            not (slot >> (vertex_hash(probe, salt) % self.slot_bits)) & 1
            for salt in range(self.num_hashes)
        )

    # -- queries ------------------------------------------------------------------

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        cu = self._codes.get(u)
        cv = self._codes.get(v)
        if cu is None or cv is None:
            return False
        return self._misses(v, cu) and self._misses(u, cv)

    # -- maintenance ---------------------------------------------------------------

    def insert_edge(self, u: int, v: int, fetch: NeighborFetch | None = None) -> None:
        """Record the edge on both sides (exact append or bit set)."""
        for owner, other in ((u, v), (v, u)):
            code = self._codes.get(owner)
            if code is None:
                self._codes[owner] = (_EXACT, frozenset((other,)))
                continue
            kind, payload = code
            if kind == _EXACT:
                ids = set(payload) | {other}  # type: ignore[arg-type]
                if len(ids) <= self._exact_capacity:
                    self._codes[owner] = (_EXACT, frozenset(ids))
                else:  # overflow: convert to a private Bloom slot
                    self._codes[owner] = (_BLOOM, self._slot(ids))
            else:
                slot: int = payload  # type: ignore[assignment]
                for salt in range(self.num_hashes):
                    slot |= 1 << (vertex_hash(other, salt) % self.slot_bits)
                self._codes[owner] = (_BLOOM, slot)

    def delete_edge(self, u: int, v: int, fetch: NeighborFetch) -> None:
        """Exact lists shrink in place; Bloom slots rebuild locally."""
        for owner, other in ((u, v), (v, u)):
            code = self._codes.get(owner)
            if code is None:
                continue
            kind, payload = code
            if kind == _EXACT:
                self._codes[owner] = (
                    _EXACT, frozenset(payload) - {other}  # type: ignore[arg-type]
                )
            else:
                survivors = [w for w in fetch(owner) if w != other]
                self._codes[owner] = (_BLOOM, self._slot(survivors))
                self.slot_rebuilds += 1

    def memory_bytes(self) -> int:
        return len(self._codes) * self.k * self.int_bits // 8
