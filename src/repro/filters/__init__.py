"""Bloom-filter comparators from the paper's evaluation (Section VII-A)."""

from .blocked import BlockedBloomFilter
from .deletable import DeletableBloomFilter, TernaryBloomFilter
from .bloom import CountingBloomFilter, StandardBloomFilter, optimal_hash_count
from .hashing import edge_hash, mix64, vertex_hash
from .local import LocalBloomFilter

__all__ = [
    "StandardBloomFilter",
    "BlockedBloomFilter",
    "CountingBloomFilter",
    "LocalBloomFilter",
    "DeletableBloomFilter",
    "TernaryBloomFilter",
    "optimal_hash_count",
    "edge_hash",
    "vertex_hash",
    "mix64",
]
