"""Deletable and Ternary Bloom filters — the Related Work cautionary tales.

The paper's Section II explains why neither variant fits VEND:

**DBF** (Rothenberg et al. 2010) marks slot *regions* collision-free at
insert time and only resets bits in such regions on deletion.  Bits in
collided regions stay 1 forever, so the filter's detection power decays
monotonically under churn ("more and more bits would remain to be 1
forever") — sound, but eventually useless.

**TBF** (Lim et al. 2017) keeps 2-bit counters whose top state ``3``
means "3 *or more*".  To avoid DBF-style permanent saturation the
scheme decrements on every deletion — but a counter at 3 that really
held four elements now under-counts, and enough deletions zero a
counter other elements still need: a **false negative**, exactly the
flaw the paper cites ("counters where collisions happen more than
twice may lead to false negatives").  We implement the scheme
faithfully so the test suite can demonstrate the violation;
:attr:`TernaryBloomFilter.is_vend_safe` is ``False`` and the
experiment harness never uses it as a VEND filter.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .bloom import optimal_hash_count
from .hashing import edge_hash

__all__ = ["DeletableBloomFilter", "TernaryBloomFilter"]


class DeletableBloomFilter:
    """Bloom filter with collision-free-region bookkeeping (DBF).

    The slot is split into ``regions``; a bitmap records which regions
    ever saw two different insertions touch the same bit.  Deletion
    resets only bits in still-collision-free regions.
    """

    name = "DBF"

    def __init__(self, k: int, int_bits: int = 32, regions: int = 64,
                 num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        if regions < 1:
            raise ValueError("regions must be >= 1")
        self.k = k
        self.int_bits = int_bits
        self.regions = regions
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        self._bits = np.zeros(0, dtype=bool)
        self._collided = np.zeros(regions, dtype=bool)

    def build(self, graph: Graph) -> None:
        slot = max(self.regions, graph.num_vertices * self.k * self.int_bits)
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(slot, max(1, graph.num_edges))
        )
        self._bits = np.zeros(slot, dtype=bool)
        self._collided = np.zeros(self.regions, dtype=bool)
        for u, v in graph.edges():
            self.insert_edge(u, v)

    def _positions(self, u: int, v: int) -> list[int]:
        m = len(self._bits)
        return [edge_hash(u, v, salt) % m for salt in range(self.num_hashes)]

    def _region(self, position: int) -> int:
        return position * self.regions // len(self._bits)

    def insert_edge(self, u: int, v: int) -> None:
        for pos in self._positions(u, v):
            if self._bits[pos]:
                # Someone already set this bit: its region is dirty.
                self._collided[self._region(pos)] = True
            self._bits[pos] = True

    def delete_edge(self, u: int, v: int) -> None:
        """Reset only the bits that live in collision-free regions."""
        for pos in self._positions(u, v):
            if not self._collided[self._region(pos)]:
                self._bits[pos] = False

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return any(not self._bits[pos] for pos in self._positions(u, v))

    def permanently_set_fraction(self) -> float:
        """Share of set bits that can never be cleared again."""
        if not len(self._bits):
            return 0.0
        region_of = np.arange(len(self._bits)) * self.regions // len(self._bits)
        stuck = self._bits & self._collided[region_of]
        total = int(self._bits.sum())
        return float(stuck.sum()) / total if total else 0.0

    def memory_bytes(self) -> int:
        return len(self._bits) // 8 + self.regions // 8


class TernaryBloomFilter:
    """2-bit-counter Bloom filter (TBF).

    Counter states: 0 (free), 1, 2, and 3 meaning "three or more".
    Insertions saturate at 3; deletions decrement every non-zero
    counter — which is where the false-negative hazard lives, and why
    this filter must never be used for VEND.
    """

    name = "TBF"

    MAX_STATE = 3

    def __init__(self, k: int, int_bits: int = 32,
                 num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.int_bits = int_bits
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        self._counters = np.zeros(0, dtype=np.uint8)

    #: VEND requires no false negatives; TBF cannot guarantee that.
    is_vend_safe = False

    def build(self, graph: Graph) -> None:
        slots = max(16, graph.num_vertices * self.k * self.int_bits // 2)
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(slots, max(1, graph.num_edges))
        )
        self._counters = np.zeros(slots, dtype=np.uint8)
        for u, v in graph.edges():
            self.insert_edge(u, v)

    def _positions(self, u: int, v: int) -> list[int]:
        m = len(self._counters)
        return [edge_hash(u, v, salt) % m for salt in range(self.num_hashes)]

    def insert_edge(self, u: int, v: int) -> None:
        for pos in self._positions(u, v):
            if self._counters[pos] < self.MAX_STATE:
                self._counters[pos] += 1

    def delete_edge(self, u: int, v: int) -> None:
        """Decrement — the unsound step: state 3 stands for *three or
        more*, so decrementing it forgets elements beyond the third."""
        for pos in self._positions(u, v):
            if self._counters[pos] > 0:
                self._counters[pos] -= 1

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return any(self._counters[pos] == 0 for pos in self._positions(u, v))

    def memory_bytes(self) -> int:
        return len(self._counters) * 2 // 8
