"""Standard and Counting Bloom filters over the edge set — Section VII-A.

**SBF** is the paper's strongest comparator: a ``|V|·k·I``-bit slot
(the same memory budget as a VEND solution) with the optimal
``(ln 2 · m) / n`` hash functions over all edges.  A membership miss on
any probe certifies edge nonexistence, so the NDF contract holds.
Deleting an edge, however, requires rebuilding the entire filter from
the surviving edge set — the maintenance weakness Fig. 10 exposes.

**CBF** replaces each position with a 4-bit counter so deletions
decrement instead of rebuilding; with a quarter of the slots in the
same memory it pays a much higher false-positive rate, and counters
saturate (stick at max) rather than overflow so no false negative can
ever be introduced.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from ..graph import Graph
from .hashing import edge_hash

__all__ = ["StandardBloomFilter", "CountingBloomFilter", "optimal_hash_count"]


def optimal_hash_count(slot_bits: int, items: int) -> int:
    """The classic ``(ln 2 · m) / n``, clamped to ``[1, 16]``."""
    if items <= 0:
        return 1
    return max(1, min(16, round(math.log(2) * slot_bits / items)))


class StandardBloomFilter:
    """Edge-set Bloom filter with VEND-equivalent memory (``|V|·k·I`` bits)."""

    name = "SBF"

    def __init__(self, k: int, int_bits: int = 32, num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.int_bits = int_bits
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        self._bits = np.zeros(0, dtype=bool)
        self.rebuilds = 0

    @property
    def slot_bits(self) -> int:
        return len(self._bits)

    def build(self, graph: Graph) -> None:
        """Size the slot from ``|V|`` and insert every edge."""
        slot = max(64, graph.num_vertices * self.k * self.int_bits)
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(slot, max(1, graph.num_edges))
        )
        self._bits = np.zeros(slot, dtype=bool)
        for u, v in graph.edges():
            self.insert_edge(u, v)

    def _positions(self, u: int, v: int) -> list[int]:
        m = len(self._bits)
        return [edge_hash(u, v, salt) % m for salt in range(self.num_hashes)]

    def insert_edge(self, u: int, v: int) -> None:
        for pos in self._positions(u, v):
            self._bits[pos] = True

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return any(not self._bits[pos] for pos in self._positions(u, v))

    def delete_edge(self, u: int, v: int,
                    surviving_edges: Iterable[tuple[int, int]]) -> None:
        """Global reconstruction over the surviving edge set."""
        self._bits[:] = False
        for a, b in surviving_edges:
            if {a, b} != {u, v}:
                self.insert_edge(a, b)
        self.rebuilds += 1

    def memory_bytes(self) -> int:
        return len(self._bits) // 8


class CountingBloomFilter:
    """4-bit-counter Bloom filter (Fan et al. 2000) over the edge set.

    Same memory budget as SBF, so only ``m/4`` counter slots — the
    higher false-positive rate the paper attributes to CBF.  Saturated
    counters are never decremented, preserving the no-false-negative
    guarantee at the cost of a few permanently set positions.
    """

    name = "CBF"

    COUNTER_BITS = 4
    COUNTER_MAX = (1 << COUNTER_BITS) - 1

    def __init__(self, k: int, int_bits: int = 32, num_hashes: int | None = None):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.int_bits = int_bits
        self._requested_hashes = num_hashes
        self.num_hashes = 1
        self._counters = np.zeros(0, dtype=np.uint8)

    @property
    def slot_count(self) -> int:
        return len(self._counters)

    def build(self, graph: Graph) -> None:
        slots = max(
            16, graph.num_vertices * self.k * self.int_bits // self.COUNTER_BITS
        )
        self.num_hashes = (
            self._requested_hashes
            or optimal_hash_count(slots, max(1, graph.num_edges))
        )
        self._counters = np.zeros(slots, dtype=np.uint8)
        for u, v in graph.edges():
            self.insert_edge(u, v)

    def _positions(self, u: int, v: int) -> list[int]:
        m = len(self._counters)
        return [edge_hash(u, v, salt) % m for salt in range(self.num_hashes)]

    def insert_edge(self, u: int, v: int) -> None:
        for pos in self._positions(u, v):
            if self._counters[pos] < self.COUNTER_MAX:
                self._counters[pos] += 1

    def delete_edge(self, u: int, v: int) -> None:
        """Decrement counters; saturated counters stay (sound, lossy)."""
        for pos in self._positions(u, v):
            if 0 < self._counters[pos] < self.COUNTER_MAX:
                self._counters[pos] -= 1

    def is_nonedge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        return any(self._counters[pos] == 0 for pos in self._positions(u, v))

    def memory_bytes(self) -> int:
        return len(self._counters) * self.COUNTER_BITS // 8
