"""Deterministic 64-bit mixing hashes for the Bloom-filter family.

Bloom comparators need a family of independent hash functions over
edges (unordered vertex pairs) and vertices.  We use splitmix64-style
avalanche mixing — deterministic across runs, well distributed, and
cheap — with the family index folded into the seed.
"""

from __future__ import annotations

__all__ = ["mix64", "edge_hash", "vertex_hash"]

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit integer."""
    x &= _MASK
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def edge_hash(u: int, v: int, salt: int) -> int:
    """Hash an unordered edge ``{u, v}`` with a family index ``salt``."""
    lo, hi = (u, v) if u <= v else (v, u)
    return mix64(mix64(lo) ^ mix64(hi * 0x5851F42D4C957F2D) ^ mix64(salt))


def vertex_hash(v: int, salt: int) -> int:
    """Hash a vertex ID with a family index ``salt``."""
    return mix64(mix64(v) ^ mix64(salt * 0xD1342543DE82EF95))
