"""Legacy setup shim: enables `pip install -e .` without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "VEND: vertex encoding for edge nonexistence determination "
        "(ICDE/TKDE 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
