"""Tests for the partial, range, hash and bit-hash VEND baselines."""

import pytest

from repro.core.hash_based import BitHashVend, HashVend
from repro.core.partial import PartialVend
from repro.core.range_based import RangeVend
from repro.graph import erdos_renyi_graph, powerlaw_graph

from .conftest import all_pairs, assert_no_false_positives, paper_example_graph


def build(cls, graph, k=3, **kwargs):
    solution = cls(k=k, **kwargs)
    solution.build(graph)
    return solution


class TestPartial:
    def test_fig2_encoding(self):
        g = paper_example_graph()
        s = build(PartialVend, g, k=3)
        assert s.is_encoded(5) and s.is_encoded(8)
        assert not s.is_encoded(3)
        assert s.core_vertices == {1, 2, 3, 4, 6, 7}
        # f^α(5) = [τ1, 3]; f^α(8) = [τ1, 3, 7]
        assert s.vector(5)[1:] == [3]
        assert s.vector(8)[1:] == [3, 7]
        assert s.vector(5)[0] == s.vector(8)[0] < 0

    def test_fig2_determinations(self):
        """1, 2, 4, 5, 6 are NEneighbors of 8 (Section IV-B example)."""
        g = paper_example_graph()
        s = build(PartialVend, g, k=3)
        for v in (1, 2, 4, 5, 6):
            assert s.is_nonedge(8, v)
            assert s.is_nonedge(v, 8)
        assert not s.is_nonedge(8, 3)
        assert not s.is_nonedge(8, 7)

    def test_core_pairs_undetermined(self):
        g = paper_example_graph()
        s = build(PartialVend, g, k=3)
        # (1, 7) is a genuine NEpair but both are core: undecidable.
        assert not s.is_nonedge(1, 7)
        assert not s.covers(1, 7)
        assert s.covers(8, 1)

    def test_partial_is_exact_on_covered_pairs(self):
        """F^α decides every covered pair with zero error, both ways."""
        g = powerlaw_graph(200, avg_degree=6, seed=1)
        s = build(PartialVend, g, k=4)
        for u, v in all_pairs(g):
            if s.covers(u, v):
                assert s.is_nonedge(u, v) == (not g.has_edge(u, v))

    def test_soundness(self):
        g = erdos_renyi_graph(100, 400, seed=2)
        s = build(PartialVend, g, k=3)
        assert_no_false_positives(s, g)

    def test_self_pair(self):
        g = paper_example_graph()
        s = build(PartialVend, g, k=3)
        assert not s.is_nonedge(5, 5)

    def test_memory_accounting(self):
        g = paper_example_graph()
        s = build(PartialVend, g, k=3)
        assert s.memory_bytes() == 8 * 3 * 32 // 8


class TestRange:
    def test_fig3_improved_detections(self):
        """Improved range detects (1,7), (2,4), (3,6) inside the core."""
        g = paper_example_graph()
        s = build(RangeVend, g, k=3)
        for u, v in ((1, 7), (2, 4), (3, 6)):
            assert s.is_nonedge(u, v), (u, v)
            assert s.is_nonedge(v, u), (v, u)

    def test_fig3_basic_detections(self):
        """Basic range only finds (2,4) and (3,6) — Fig. 3 left column."""
        g = paper_example_graph()
        s = build(RangeVend, g, k=3, strategy="basic")
        assert not s.is_nonedge(1, 7)
        assert s.is_nonedge(2, 4)
        assert s.is_nonedge(3, 6)

    def test_improved_at_least_basic(self):
        g = powerlaw_graph(300, avg_degree=8, seed=3)
        improved = build(RangeVend, g, k=4)
        basic = build(RangeVend, g, k=4, strategy="basic")
        pairs = [(u, v) for u, v in all_pairs(g) if not g.has_edge(u, v)]
        improved_hits = sum(1 for u, v in pairs if improved.is_nonedge(u, v))
        basic_hits = sum(1 for u, v in pairs if basic.is_nonedge(u, v))
        assert improved_hits >= basic_hits

    def test_soundness(self):
        g = powerlaw_graph(200, avg_degree=8, seed=4)
        s = build(RangeVend, g, k=4)
        assert assert_no_false_positives(s, g) > 0

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            RangeVend(k=3, strategy="bogus")


class TestHash:
    def test_fig2_hash_vector(self):
        """f^hash(6) = {1, 1, 0} for vertex 6 of C_G^3 (Section IV-D)."""
        g = paper_example_graph()
        s = build(HashVend, g, k=3)
        slot = s._slots[6]
        # Core neighbors of 6 are {1, 2, 4}: residues mod 3 are {1, 2, 1}.
        assert (slot >> 0) & 1 == 0
        assert (slot >> 1) & 1 == 1
        assert (slot >> 2) & 1 == 1

    def test_soundness_hash(self):
        g = powerlaw_graph(200, avg_degree=8, seed=5)
        s = build(HashVend, g, k=4)
        assert_no_false_positives(s, g)

    def test_soundness_bit_hash(self):
        g = powerlaw_graph(200, avg_degree=8, seed=6)
        s = build(BitHashVend, g, k=4)
        assert assert_no_false_positives(s, g) > 0

    def test_bit_hash_beats_hash(self):
        """The k·I-bit slot detects far more than the k-slot version."""
        g = powerlaw_graph(300, avg_degree=10, seed=7)
        plain = build(HashVend, g, k=4)
        bits = build(BitHashVend, g, k=4)
        pairs = [(u, v) for u, v in all_pairs(g) if not g.has_edge(u, v)]
        plain_hits = sum(1 for u, v in pairs if plain.is_nonedge(u, v))
        bit_hits = sum(1 for u, v in pairs if bits.is_nonedge(u, v))
        assert bit_hits > plain_hits

    def test_alpha_pairs_still_exact(self):
        g = paper_example_graph()
        s = build(BitHashVend, g, k=3)
        for v in (1, 2, 4, 5, 6):
            assert s.is_nonedge(8, v)


class TestBatchInterface:
    def test_is_nonedge_batch(self):
        g = paper_example_graph()
        s = build(RangeVend, g, k=3)
        pairs = [(1, 7), (1, 2), (2, 4)]
        scalar = [s.is_nonedge(u, v) for u, v in pairs]
        assert s.is_nonedge_batch(pairs).tolist() == scalar
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        assert s.is_nonedge_batch(us, vs).tolist() == scalar
