"""End-to-end integration tests across subsystems.

Each test exercises a realistic pipeline: dataset -> disk store ->
index -> application, including persistence round-trips and live
updates flowing through both the store and the index together.
"""

import pytest

from repro.apps import (
    EdgeQueryEngine,
    average_clustering,
    edge_iterator_count,
    trigon_count,
)
from repro.core import (
    GraphNeighborFetch,
    HybPlusVend,
    load_index,
    save_index,
    vend_score,
)
from repro.datasets import load
from repro.graph import read_edge_list, write_edge_list
from repro.storage import GraphStore
from repro.workloads import (
    common_neighbor_pairs,
    random_pairs,
    sample_deletions,
    sample_insertions,
)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """dataset analogue -> edge list file -> store + index on disk."""
    tmp = tmp_path_factory.mktemp("pipeline")
    graph = load("as-sk", scale=0.06)
    edge_file = tmp / "graph.txt"
    write_edge_list(graph, edge_file)
    reloaded = read_edge_list(edge_file)
    store = GraphStore(tmp / "adjacency.log", cache_bytes=0)
    store.bulk_load(reloaded)
    vend = HybPlusVend(k=4)
    vend.build(reloaded)
    index_file = tmp / "index.vend"
    save_index(vend, index_file)
    return reloaded, store, load_index(index_file)


class TestPipeline:
    def test_edge_list_roundtrip_preserved_graph(self, pipeline):
        graph, store, _ = pipeline
        for v in list(graph.vertices())[:30]:
            assert store.get_neighbors(v) == graph.sorted_neighbors(v)

    def test_persisted_index_filters_store_queries(self, pipeline):
        graph, store, vend = pipeline
        pairs = random_pairs(graph, 3000, seed=80)
        store.stats.reset()
        engine = EdgeQueryEngine(store, vend)
        for u, v in pairs:
            assert engine.has_edge(u, v) == graph.has_edge(u, v)
        assert engine.stats.filter_rate > 0.5

    def test_scores_on_both_workloads(self, pipeline):
        graph, _, vend = pipeline
        for pairs in (
            random_pairs(graph, 3000, seed=81),
            common_neighbor_pairs(graph, 3000, seed=82),
        ):
            report = vend_score(vend, graph, pairs)
            assert report.false_positives == 0
            assert report.score > 0.3

    def test_triangle_counters_agree(self, pipeline, tmp_path):
        graph, store, vend = pipeline
        a = edge_iterator_count(store).triangles
        b = edge_iterator_count(store, vend).triangles
        c = trigon_count(store, tmp_path / "w", 2000).triangles
        d = trigon_count(store, tmp_path / "w2", 2000, vend=vend).triangles
        assert a == b == c == d

    def test_clustering_consistent(self, pipeline):
        graph, store, vend = pipeline
        sample = sorted(graph.vertices())[:40]
        plain = average_clustering(store, vertices=sample)
        fast = average_clustering(store, vend, vertices=sample)
        assert fast.coefficient == pytest.approx(plain.coefficient)


class TestLiveUpdates:
    def test_store_and_index_stay_in_sync(self, tmp_path):
        graph = load("wiki", scale=0.04)
        store = GraphStore(tmp_path / "sync.log")
        store.bulk_load(graph)
        vend = HybPlusVend(k=4)
        vend.build(graph)
        fetch = GraphNeighborFetch(graph)

        for u, v in sample_insertions(graph, 150, seed=83):
            graph.add_edge(u, v)
            store.insert_edge(u, v)
            vend.insert_edge(u, v, fetch)
        for u, v in sample_deletions(graph, 150, seed=84):
            graph.remove_edge(u, v)
            store.delete_edge(u, v)
            vend.delete_edge(u, v, fetch)

        engine = EdgeQueryEngine(store, vend)
        for u, v in random_pairs(graph, 4000, seed=85):
            assert engine.has_edge(u, v) == graph.has_edge(u, v)
        store.close()
