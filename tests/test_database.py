"""Tests for the integrated VendGraphDB facade."""

import random

import pytest

from repro.apps.database import VendGraphDB
from repro.graph import powerlaw_graph


@pytest.fixture
def db(tmp_path):
    graph = powerlaw_graph(200, avg_degree=8, seed=160)
    database = VendGraphDB(tmp_path / "db.log", k=4)
    database.load_graph(graph)
    yield graph, database
    database.close()


class TestSetup:
    def test_invalid_method(self):
        with pytest.raises(ValueError):
            VendGraphDB(method="bloom")

    def test_updates_require_load(self):
        database = VendGraphDB()
        with pytest.raises(RuntimeError):
            database.add_edge(1, 2)

    def test_load_answers_ground_truth(self, db):
        graph, database = db
        rng = random.Random(161)
        vertices = sorted(graph.vertices())
        for _ in range(3000):
            u, v = rng.sample(vertices, 2)
            assert database.has_edge(u, v) == graph.has_edge(u, v)
        assert database.query_stats.filter_rate > 0.5

    def test_rebuild_index_from_storage(self, db):
        graph, database = db
        database.rebuild_index()
        assert database.index_rebuilds == 1
        rng = random.Random(162)
        vertices = sorted(graph.vertices())
        for _ in range(1000):
            u, v = rng.sample(vertices, 2)
            assert database.has_edge(u, v) == graph.has_edge(u, v)


class TestUpdates:
    def test_add_edge_visible_and_consistent(self, db):
        graph, database = db
        vertices = sorted(graph.vertices())
        pair = next(
            (u, v) for u in vertices for v in vertices
            if u < v and not graph.has_edge(u, v)
        )
        assert database.add_edge(*pair)
        assert database.has_edge(*pair)
        assert not database.add_edge(*pair)  # idempotent

    def test_remove_edge(self, db):
        graph, database = db
        u, v = next(iter(graph.edges()))
        assert database.remove_edge(u, v)
        assert not database.has_edge(u, v)
        assert not database.remove_edge(u, v)

    def test_remove_vertex(self, db):
        graph, database = db
        v = max(graph.vertices(), key=graph.degree)
        neighbors = database.neighbors(v)
        assert database.remove_vertex(v)
        assert not database.has_vertex(v)
        for u in neighbors:
            assert not database.has_edge(u, v)
        assert not database.remove_vertex(v)

    def test_new_vertex_triggers_capacity_rebuild(self, db):
        graph, database = db
        giant = 1 << 20  # far beyond the current I'
        database.add_vertex(giant)
        assert database.index_rebuilds == 1
        assert database.add_edge(giant, 1)
        assert database.has_edge(giant, 1)
        assert not database.has_edge(giant, 2)

    def test_churn_stays_consistent(self, db):
        graph, database = db
        work = graph.copy()
        rng = random.Random(163)
        vertices = sorted(work.vertices())
        for _ in range(300):
            u, v = rng.sample(vertices, 2)
            if rng.random() < 0.5:
                if work.add_edge(u, v):
                    database.add_edge(u, v)
            elif work.has_edge(u, v):
                work.remove_edge(u, v)
                database.remove_edge(u, v)
        for _ in range(3000):
            u, v = rng.sample(vertices, 2)
            assert database.has_edge(u, v) == work.has_edge(u, v)


class TestStats:
    def test_counters_exposed(self, db):
        _, database = db
        database.has_edge(1, 2)
        assert database.query_stats.total >= 1
        assert database.storage_stats.disk_writes > 0
        assert database.index_memory_bytes() > 0

    def test_context_manager(self, tmp_path):
        graph = powerlaw_graph(50, avg_degree=6, seed=164)
        with VendGraphDB(tmp_path / "ctx.log", k=2) as database:
            database.load_graph(graph)
            assert database.num_vertices == 50
