"""Tests for the benchmark harness and table rendering."""

import pytest

from repro.bench import (
    FIGURE_METHODS,
    SOLUTION_FACTORIES,
    Table,
    bench_pairs,
    bench_scale,
    format_bytes,
    format_seconds,
    load_dataset,
    make_solution,
    paper_id_bits,
    results_dir,
    timed,
)
from repro.graph import erdos_renyi_graph


class TestTable:
    def test_render_alignment(self):
        table = Table("Title", ["A", "Blong"])
        table.add_row(1, "x")
        table.add_row("wider-cell", 2)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "A" in lines[2] and "Blong" in lines[2]
        assert len({len(line) for line in lines[4:6]}) <= 2

    def test_row_arity_checked(self):
        table = Table("T", ["A", "B"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_rendered(self):
        table = Table("T", ["A"])
        table.add_row(1)
        table.add_note("hello")
        assert "* hello" in table.render()

    def test_save_and_emit(self, tmp_path, capsys):
        table = Table("T", ["A"])
        table.add_row(42)
        path = table.save(tmp_path / "out" / "t.txt")
        assert path.read_text() == table.render()
        table.emit(tmp_path / "t2.txt")
        assert "42" in capsys.readouterr().out


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0K"
        assert format_bytes(5 * 1024 * 1024) == "5.0M"
        assert format_bytes(20 * 1024**3) == "20G"

    def test_format_seconds(self):
        assert format_seconds(5e-5) == "50us"
        assert format_seconds(0.02) == "20.0ms"
        assert format_seconds(3.5) == "3.50s"
        assert format_seconds(300) == "5.0min"


class TestHarness:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        monkeypatch.delenv("REPRO_BENCH_PAIRS", raising=False)
        assert bench_scale() == 0.5
        assert bench_pairs() == 20000
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        monkeypatch.setenv("REPRO_BENCH_PAIRS", "99")
        assert bench_scale() == 0.1
        assert bench_pairs() == 99

    def test_dataset_memoized(self):
        a = load_dataset("cage", scale=0.05)
        b = load_dataset("cage", scale=0.05)
        assert a is b

    def test_every_factory_builds_and_answers(self):
        graph = erdos_renyi_graph(60, 240, seed=95)
        for method in SOLUTION_FACTORIES:
            solution = make_solution(method, 2, graph)
            claim = solution.is_nonedge(1, 2)
            if claim:
                assert not graph.has_edge(1, 2), method

    def test_figure_methods_are_registered(self):
        assert set(FIGURE_METHODS) <= set(SOLUTION_FACTORIES)

    def test_paper_id_bits(self):
        assert paper_id_bits("gsh") == 30
        with pytest.raises(KeyError):
            paper_id_bits("nope")

    def test_id_bits_reaches_hybrid(self):
        graph = erdos_renyi_graph(50, 150, seed=96)
        solution = make_solution("hybrid", 2, graph, id_bits=20)
        assert solution.id_bits == 20
        # Non-hybrid methods ignore the hint without failing.
        make_solution("SBF", 2, graph, id_bits=20)

    def test_results_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path / "r"))
        assert results_dir() == tmp_path / "r"
        assert (tmp_path / "r").is_dir()

    def test_timed(self):
        value, elapsed = timed(lambda: 7)
        assert value == 7
        assert elapsed >= 0


class TestBarChart:
    def test_render_shape(self):
        from repro.bench import BarChart

        chart = BarChart("Fig. X", width=10, unit="s")
        chart.add_group("as-sk", [("hybrid", 1.0), ("SBF", 0.5)])
        text = chart.render()
        assert text.startswith("Fig. X")
        assert "hybrid |##########| 1s" in text
        assert "SBF    |#####.....| 0.5s" in text

    def test_empty_chart(self):
        from repro.bench import BarChart

        assert "(no data)" in BarChart("T").render()

    def test_clamps_to_max(self):
        from repro.bench import BarChart

        chart = BarChart("T", width=10, max_value=1.0)
        chart.add_group("g", [("a", 5.0)])
        assert "|##########|" in chart.render()

    def test_invalid_inputs(self):
        import pytest

        from repro.bench import BarChart

        with pytest.raises(ValueError):
            BarChart("T", width=2)
        with pytest.raises(ValueError):
            BarChart("T").add_group("g", [])

    def test_save(self, tmp_path):
        from repro.bench import BarChart

        chart = BarChart("T")
        chart.add_group("g", [("a", 1)])
        path = chart.save(tmp_path / "chart.txt")
        assert path.read_text() == chart.render()
