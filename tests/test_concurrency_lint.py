"""Tests for the concurrency-contract analyzer (repro.devtools.concurrency).

Each rule R007–R012 has a paired bad/good fixture under
``tests/fixtures/lint/concurrency/``; the bad file must produce
exactly the expected (rule, line) findings and the corrected file
none.  The suite also pins the acceptance criteria: the repo's own
``src/`` tree passes ``lint --concurrency`` clean, reasonless pragmas
are flagged as ``R000-style``, and the static lock graph resolves the
inheritance/wrapper chain (``ReplicatedShard`` around ``GraphStore``).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools import lint_paths
from repro.devtools.concurrency import find_cycle, static_lock_edges

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CONC = FIXTURES / "concurrency"
SRC = Path(__file__).parent.parent / "src"


def findings_of(path: Path) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in lint_paths([path], concurrency=True)]


@pytest.mark.parametrize("fixture, expected", [
    ("r007_bad.py", [("R007", 15), ("R007", 25)]),
    ("r008_bad.py", [("R008", 15)]),
    ("r009_bad.py", [("R009", 11)]),
    ("r010_bad.py", [("R010", 11)]),
    ("r011_bad.py", [("R011", 6)]),
    ("r012_bad.py", [("R012", 15)]),
])
def test_bad_fixture_fires_exact_rules_and_lines(fixture, expected):
    assert findings_of(CONC / fixture) == expected


@pytest.mark.parametrize("fixture", [
    "r007_good.py", "r008_good.py", "r009_good.py",
    "r010_good.py", "r011_good.py", "r012_good.py",
])
def test_good_fixture_is_silent(fixture):
    assert findings_of(CONC / fixture) == []


def test_concurrency_rules_are_opt_in():
    # The classic ruleset must not grow new failures on old callers.
    assert lint_paths([CONC / "r012_bad.py"]) == []


def test_repo_src_tree_passes_concurrency_lint():
    findings = lint_paths([SRC], concurrency=True)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_static_lock_graph_is_acyclic_and_resolves_wrappers():
    edges = static_lock_edges([SRC])
    assert find_cycle(edges) is None
    # The walker must see *through* the segment union type
    # (GraphStore | ReplicatedShard) to the LRU cache the plain store
    # owns — the inheritance/wrapper chain of the storage layer.
    assert ("ShardedGraphStore._lock", "LRUCache._lock") in edges
    assert ("ParallelEdgeQueryEngine._book_lock",
            "MetricsRegistry._lock") in edges


# ---------------------------------------------------------------- pragmas


def test_reasonless_pragma_is_flagged_not_honoured():
    # The bare pragma still waives R011 on its line (grandfathered
    # behaviour), but the pragma itself becomes an R000-style finding.
    assert findings_of(FIXTURES / "pragma_reasonless.py") == \
        [("R000-style", 5)]


def test_pragma_with_reason_waives_concurrency_rule(tmp_path):
    src = tmp_path / "waived.py"
    src.write_text(
        "def same_object(a, b):\n"
        "    return id(a) == id(b)"
        "  # lint: disable=R011 (callers hold both refs)\n"
    )
    assert findings_of(src) == []


def test_pragma_on_multiline_statement_goes_on_the_reported_line(tmp_path):
    # Findings anchor to the sub-expression's physical line, not the
    # statement's first line — so must the pragma.
    src = tmp_path / "multiline.py"
    src.write_text(
        "def check(a, b):\n"
        "    return (\n"
        "        id(a) == id(b)"
        "  # lint: disable=R011 (both refs pinned by the caller)\n"
        "    )\n"
    )
    assert findings_of(src) == []
    misplaced = tmp_path / "misplaced.py"
    misplaced.write_text(
        "def check(a, b):"
        "  # lint: disable=R011 (wrong line: finding is 3 lines down)\n"
        "    return (\n"
        "        id(a) == id(b)\n"
        "    )\n"
    )
    assert findings_of(misplaced) == [("R011", 3)]


# -------------------------------------------------------------------- CLI


def test_cli_concurrency_flag(capsys):
    assert cli_main(["lint", "--concurrency", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out
    assert cli_main(["lint", "--concurrency",
                     str(CONC / "r012_bad.py")]) == 1
    assert "R012" in capsys.readouterr().out


def test_cli_json_format(capsys):
    assert cli_main(["lint", "--concurrency", "--format", "json",
                     str(CONC / "r009_bad.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [(f["rule"], f["line"]) for f in payload] == [("R009", 11)]
    assert set(payload[0]) == {"path", "line", "col", "rule", "message"}

    assert cli_main(["lint", "--format", "json",
                     str(CONC / "r009_good.py")]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_cli_github_format(capsys):
    assert cli_main(["lint", "--concurrency", "--format", "github",
                     str(CONC / "r008_bad.py")]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "line=15," in out and "title=R008::" in out
