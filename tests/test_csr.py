"""Tests for the CSR snapshot."""

from repro.graph import CSRGraph, Graph, erdos_renyi_graph

from .conftest import all_pairs, paper_example_graph


class TestCSR:
    def test_counts(self):
        g = paper_example_graph()
        csr = CSRGraph(g)
        assert csr.num_vertices == g.num_vertices
        assert csr.num_edges == g.num_edges

    def test_edge_queries_match(self):
        g = erdos_renyi_graph(80, 400, seed=110)
        csr = CSRGraph(g)
        for u, v in all_pairs(g):
            assert csr.has_edge(u, v) == g.has_edge(u, v)

    def test_unknown_vertices(self):
        csr = CSRGraph(Graph([(1, 2)]))
        assert not csr.has_edge(1, 99)
        assert not csr.has_edge(99, 1)

    def test_neighbors_and_degree(self):
        g = paper_example_graph()
        csr = CSRGraph(g)
        for v in g.vertices():
            assert csr.neighbors(v).tolist() == g.sorted_neighbors(v)
            assert csr.degree(v) == g.degree(v)

    def test_non_contiguous_ids(self):
        g = Graph([(10, 500), (500, 9000)])
        csr = CSRGraph(g)
        assert csr.has_edge(10, 500)
        assert not csr.has_edge(10, 9000)

    def test_triangle_count_matches_reference(self):
        g = erdos_renyi_graph(60, 300, seed=111)
        csr = CSRGraph(g)
        expected = sum(
            len(g.neighbors(u) & g.neighbors(v)) for u, v in g.edges()
        ) // 3
        assert csr.triangle_count() == expected

    def test_memory_accounting(self):
        g = erdos_renyi_graph(50, 200, seed=112)
        csr = CSRGraph(g)
        assert csr.memory_bytes() >= 2 * g.num_edges * 8
