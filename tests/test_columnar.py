"""Tests for the columnar batch NDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HybPlusVend, HybridVend
from repro.core.columnar import ColumnarIndex
from repro.graph import erdos_renyi_graph, powerlaw_graph
from repro.workloads import common_neighbor_pairs, random_pairs

from .conftest import all_pairs


@pytest.fixture(scope="module", params=[HybridVend, HybPlusVend])
def built(request):
    graph = powerlaw_graph(250, avg_degree=10, seed=130)
    solution = request.param(k=4)
    solution.build(graph)
    return graph, solution, ColumnarIndex(solution)


class TestAgreement:
    def test_matches_scalar_on_all_pairs(self, built):
        graph, solution, snapshot = built
        pairs = list(all_pairs(graph))[:20000]
        batch = snapshot.query_pairs(pairs)
        for (u, v), claim in zip(pairs, batch):
            assert claim == solution.is_nonedge(u, v), (u, v)

    def test_matches_scalar_on_workloads(self, built):
        graph, solution, snapshot = built
        for pairs in (
            random_pairs(graph, 5000, seed=131),
            common_neighbor_pairs(graph, 5000, seed=132),
        ):
            batch = snapshot.query_pairs(pairs)
            scalar = [solution.is_nonedge(u, v) for u, v in pairs]
            assert batch.tolist() == scalar

    def test_self_and_unknown_pairs_false(self, built):
        _, _, snapshot = built
        result = snapshot.query_pairs([(1, 1), (1, 10**7), (10**7, 1)])
        assert result.tolist() == [False, False, False]

    def test_empty_batch(self, built):
        _, _, snapshot = built
        assert snapshot.query_pairs([]).tolist() == []

    def test_misaligned_arrays_rejected(self, built):
        _, _, snapshot = built
        with pytest.raises(ValueError):
            snapshot.query_batch(np.array([1, 2]), np.array([3]))


class TestSnapshotLifecycle:
    def test_requires_built_index(self):
        with pytest.raises(ValueError):
            ColumnarIndex(HybridVend(k=2))

    def test_counts_and_memory(self, built):
        graph, solution, snapshot = built
        assert snapshot.num_codes == solution.num_codes
        assert snapshot.memory_bytes() > 0

    def test_snapshot_is_isolated_from_maintenance(self, built):
        """Post-snapshot maintenance does not change batch answers."""
        graph, solution, snapshot = built
        pairs = random_pairs(graph, 500, seed=133)
        before = snapshot.query_pairs(pairs).tolist()
        work = graph.copy()
        u, v = next(
            (a, b) for a, b in pairs if not work.has_edge(a, b)
        )
        work.add_edge(u, v)
        solution.insert_edge(u, v, work.sorted_neighbors)
        assert snapshot.query_pairs(pairs).tolist() == before


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), k=st.sampled_from([1, 2, 4]))
def test_columnar_scalar_equivalence_property(seed, k):
    """For arbitrary graphs, the columnar NDF equals the scalar NDF."""
    graph = erdos_renyi_graph(40, 150, seed=seed)
    solution = HybridVend(k=k)
    solution.build(graph)
    snapshot = ColumnarIndex(solution)
    pairs = list(all_pairs(graph))
    batch = snapshot.query_pairs(pairs)
    scalar = [solution.is_nonedge(u, v) for u, v in pairs]
    assert batch.tolist() == scalar
