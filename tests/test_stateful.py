"""Stateful property test: the hybrid index tracks an evolving graph.

A hypothesis rule machine mutates a live graph through every
maintenance operation (edge insert/delete, vertex insert/delete) in
arbitrary interleavings and continuously checks the one-sided NDF
contract: no pair with an edge is ever reported as an NEpair.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import HybridVend
from repro.graph import erdos_renyi_graph


class HybridMaintenanceMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 1000))
    def setup(self, seed):
        self.graph = erdos_renyi_graph(24, 60, seed=seed)
        self.vend = HybridVend(k=2, id_bits=8)
        self.vend.build(self.graph)
        self.rng = random.Random(seed)
        self.next_vertex = 25

    def _fetch(self, v):
        return self.graph.sorted_neighbors(v)

    def _pick_pair(self, seed):
        rng = random.Random(seed)
        vertices = sorted(self.graph.vertices())
        if len(vertices) < 2:
            return None
        return tuple(rng.sample(vertices, 2))

    @rule(seed=st.integers(0, 10**6))
    def insert_edge(self, seed):
        pair = self._pick_pair(seed)
        if pair and self.graph.add_edge(*pair):
            self.vend.insert_edge(*pair, self._fetch)

    @rule(seed=st.integers(0, 10**6))
    def delete_edge(self, seed):
        edges = sorted(self.graph.edges())
        if not edges:
            return
        u, v = edges[seed % len(edges)]
        self.graph.remove_edge(u, v)
        self.vend.delete_edge(u, v, self._fetch)

    @rule()
    def insert_vertex(self):
        v = self.next_vertex
        if v.bit_length() > 8:
            return
        self.next_vertex += 1
        self.graph.add_vertex(v)
        self.vend.insert_vertex(v)

    @rule(seed=st.integers(0, 10**6))
    def delete_vertex(self, seed):
        vertices = sorted(self.graph.vertices())
        if len(vertices) <= 4:
            return
        v = vertices[seed % len(vertices)]
        # Scrub the index first so reconstruction fetches still see v's
        # edges; then drop the vertex from the graph.
        self.vend.delete_vertex(v, self._fetch)
        self.graph.remove_vertex(v)

    @invariant()
    def no_false_positives(self):
        for u, v in self.graph.edges():
            assert not self.vend.is_nonedge(u, v), (
                f"edge ({u}, {v}) claimed as NEpair"
            )


HybridMaintenanceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestHybridMaintenance = HybridMaintenanceMachine.TestCase
