"""Fault-injection tests: retries, degraded mode, torn-write crashes.

The fault seed comes from ``$REPRO_FAULT_SEED`` (CI sweeps a small
matrix of seeds); every assertion here must hold for *any* seed —
probabilistic behaviors use rates of 0.0/1.0 or enough retries that
the failure probability is negligible (< 2^-50).
"""

import dataclasses
import time

import pytest

from repro.apps.edge_query import EdgeQueryEngine
from repro.graph import Graph
from repro.storage import (
    DiskKVStore,
    FaultConfig,
    FaultInjectingKVStore,
    GraphStore,
    InjectedIOError,
    InMemoryKVStore,
    SimulatedCrashError,
)
from repro.storage.faults import FAULT_SEED_ENV


def test_from_env_reads_seed(monkeypatch):
    monkeypatch.setenv(FAULT_SEED_ENV, "17")
    config = FaultConfig.from_env(read_error_rate=0.25)
    assert config.seed == 17
    assert config.read_error_rate == 0.25
    monkeypatch.delenv(FAULT_SEED_ENV)
    assert FaultConfig.from_env().seed == 0


def test_clean_passthrough(tmp_path):
    config = FaultConfig.from_env()
    with FaultInjectingKVStore(DiskKVStore(tmp_path / "db.log"), config) as store:
        store.put(1, b"hello")
        store.put(2, b"world")
        assert store.get(1) == b"hello"
        assert store.get_many([1, 2]) == {1: b"hello", 2: b"world"}
        assert store.delete(2)
        assert len(store) == 1 and 1 in store
        assert sorted(store.keys()) == [1]
        assert not store.degraded
        assert store.fault_stats.retries == 0
        assert store.stats.disk_writes == 3


def test_read_retries_eventually_succeed(tmp_path):
    config = FaultConfig.from_env(read_error_rate=0.5, max_retries=64)
    inner = DiskKVStore(tmp_path / "db.log")
    store = FaultInjectingKVStore(inner, config)
    for key in range(25):
        inner.put(key, bytes([key]) * 8)
    for key in range(25):
        assert store.get(key) == bytes([key]) * 8
    # 25 reads at a 50% fault rate: the odds of zero injections are
    # 2^-25 per seed — retries must have happened, and answers were
    # still exact.
    assert store.fault_stats.injected_read_errors > 0
    assert store.fault_stats.retries > 0
    assert store.degraded
    store.reset_degraded()
    assert not store.degraded
    store.close()


def test_exhausted_retries_raise_and_degrade(tmp_path):
    config = FaultConfig.from_env(read_error_rate=1.0, max_retries=2)
    inner = DiskKVStore(tmp_path / "db.log")
    inner.put(1, b"x")
    store = FaultInjectingKVStore(inner, config)
    with pytest.raises(InjectedIOError):
        store.get(1)
    assert store.fault_stats.retries == 2
    assert store.fault_stats.gave_up == 1
    assert store.degraded
    store.close()


def test_write_retries_keep_store_consistent(tmp_path):
    path = tmp_path / "db.log"
    config = FaultConfig.from_env(write_error_rate=0.5, max_retries=64)
    store = FaultInjectingKVStore(DiskKVStore(path), config)
    for key in range(25):
        store.put(key, bytes([key % 251]) * 16)
    store.delete(0)
    assert store.fault_stats.injected_write_errors > 0
    store.close()
    with DiskKVStore(path) as reopened:  # every committed write recovers
        assert 0 not in reopened
        for key in range(1, 25):
            assert reopened.get(key) == bytes([key % 251]) * 16


def _sleeps_for(config) -> list[float]:
    """Drive a read to exhaustion, capturing every backoff delay."""
    inner = InMemoryKVStore()
    inner.put(1, b"x")
    store = FaultInjectingKVStore(inner, config)
    slept: list[float] = []
    original = store._backoff_delay

    def capture(try_no):
        delay = original(try_no)
        slept.append(delay)
        return delay

    store._backoff_delay = capture
    store._sleep = lambda _seconds: None
    with pytest.raises(InjectedIOError):
        store.get(1)
    assert len(slept) == config.max_retries
    return slept


def test_backoff_waits_between_retries(tmp_path):
    config = FaultConfig.from_env(
        read_error_rate=1.0, max_retries=2,
        backoff_base=0.01, backoff_factor=2.0, jitter=False,
    )
    inner = DiskKVStore(tmp_path / "db.log")
    inner.put(1, b"x")
    store = FaultInjectingKVStore(inner, config)
    start = time.perf_counter()
    with pytest.raises(InjectedIOError):
        store.get(1)
    assert time.perf_counter() - start >= 0.03  # 0.01 + 0.02
    store.close()


def test_backoff_is_capped_by_backoff_max():
    config = FaultConfig.from_env(
        read_error_rate=1.0, max_retries=8,
        backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05,
        jitter=False,
    )
    slept = _sleeps_for(config)
    # Uncapped the schedule would reach 0.01 * 2**7 = 1.28s; every
    # sleep must now sit at min(schedule, cap).
    assert slept == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05, 0.05, 0.05]


def test_backoff_jitter_stays_within_envelope_and_varies():
    config = FaultConfig.from_env(
        seed=5, read_error_rate=1.0, max_retries=8,
        backoff_base=0.01, backoff_factor=2.0, backoff_max=0.05,
    )
    slept = _sleeps_for(config)
    schedule = [min(0.01 * 2.0 ** n, 0.05) for n in range(8)]
    for actual, bound in zip(slept, schedule):
        assert 0.0 <= actual <= bound
    # Full jitter must actually decorrelate: sleeps are not all equal
    # to the deterministic schedule (probability ~0 for a real RNG).
    assert slept != schedule


def test_backoff_jitter_is_seed_deterministic():
    def run(seed):
        return _sleeps_for(FaultConfig(
            seed=seed, read_error_rate=1.0, max_retries=5,
            backoff_base=0.001, backoff_factor=2.0,
        ))

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_jitter_draws_do_not_perturb_fault_dice():
    """Enabling backoff must not change *which* operations fail."""
    def failure_pattern(backoff_base):
        inner = InMemoryKVStore()
        inner.put(1, b"x")
        store = FaultInjectingKVStore(inner, FaultConfig(
            seed=11, read_error_rate=0.5, max_retries=0,
            backoff_base=backoff_base,
        ))
        store._sleep = lambda _s: None
        pattern = []
        for _ in range(64):
            try:
                store.get(1)
                pattern.append(True)
            except InjectedIOError:
                pattern.append(False)
        return pattern

    assert failure_pattern(0.0) == failure_pattern(0.01)


def test_latency_injection(tmp_path):
    config = FaultConfig.from_env(read_latency=0.01)
    inner = DiskKVStore(tmp_path / "db.log")
    inner.put(1, b"x")
    store = FaultInjectingKVStore(inner, config)
    start = time.perf_counter()
    assert store.get(1) == b"x"
    assert time.perf_counter() - start >= 0.01
    store.close()


@pytest.mark.parametrize("seed_offset", range(8))
def test_torn_write_crash_never_corrupts_committed_data(tmp_path, seed_offset):
    """The acceptance scenario: kill-9 mid-put.  After reopen the store
    returns exactly the pre-crash committed values; the torn record is
    truncated away, never served short.  Eight seed offsets make the
    random cut land both inside the frame header and inside the
    payload."""
    path = tmp_path / "db.log"
    committed = {key: bytes([key]) * 48 for key in range(6)}
    inner = DiskKVStore(path)
    for key, value in committed.items():
        inner.put(key, value)
    inner.flush()
    committed_size = path.stat().st_size

    base = FaultConfig.from_env(torn_write_rate=1.0)
    config = dataclasses.replace(base, seed=base.seed + seed_offset)
    store = FaultInjectingKVStore(inner, config)
    with pytest.raises(SimulatedCrashError):
        store.put(99, b"Z" * 48)
    assert store.fault_stats.torn_writes == 1
    assert store.degraded
    # The "process" is dead: every further operation refuses.
    with pytest.raises(SimulatedCrashError):
        store.get(1)
    with pytest.raises(SimulatedCrashError):
        store.put(5, b"after-death")
    # Some prefix of the record reached disk.
    assert path.stat().st_size > committed_size

    with DiskKVStore(path) as recovered:
        assert 99 not in recovered
        assert recovered.get_many(list(committed)) == committed
        recovered.put(100, b"life-goes-on")
    assert path.stat().st_size > committed_size
    with DiskKVStore(path) as recovered:
        assert recovered.get(100) == b"life-goes-on"


def test_torn_write_ignored_for_inmemory_backend():
    config = FaultConfig.from_env(torn_write_rate=1.0)
    store = FaultInjectingKVStore(InMemoryKVStore(), config)
    store.put(1, b"no file to tear")
    assert store.get(1) == b"no file to tear"
    assert store.fault_stats.torn_writes == 0


def test_compact_fault_leaves_inner_usable(tmp_path):
    config = FaultConfig.from_env(write_error_rate=1.0, max_retries=1)
    inner = DiskKVStore(tmp_path / "db.log")
    inner.put(1, b"a" * 64)
    inner.put(1, b"b" * 64)
    store = FaultInjectingKVStore(inner, config)
    with pytest.raises(InjectedIOError):
        store.compact()
    assert inner.get(1) == b"b" * 64
    assert inner.compact() > 0  # the real compaction still works
    assert inner.get(1) == b"b" * 64
    store.close()


def test_degraded_surfaces_through_graphstore_and_engine(tmp_path):
    graph = Graph([(1, 2), (1, 3), (2, 3), (3, 4)])
    inner = DiskKVStore(tmp_path / "g.log")
    faulty = FaultInjectingKVStore(
        inner, FaultConfig.from_env(read_error_rate=0.5, max_retries=64),
    )
    store = GraphStore(kv=faulty)
    store.bulk_load(graph)
    assert not store.degraded or faulty.fault_stats.retries > 0

    engine = EdgeQueryEngine(store)
    for _ in range(25):  # zero injections across 25 reads: p = 2^-25
        assert engine.has_edge(1, 2)
    assert engine.has_edge_batch([(1, 2), (2, 4)]).tolist() == [True, False]
    assert store.degraded
    assert engine.stats.degraded
    # degraded is derived from the store at read time: clearing the
    # engine's counters cannot hide a store that is still failing.
    engine.stats.reset()
    assert engine.stats.degraded
    faulty.reset_degraded()
    assert not engine.stats.degraded
    store.close()


def test_plain_backends_never_degraded(tmp_path):
    assert not GraphStore().degraded
    with GraphStore(tmp_path / "g.log") as store:
        store.bulk_load(Graph([(1, 2)]))
        engine = EdgeQueryEngine(store)
        assert engine.has_edge(1, 2)
        assert not store.degraded
        assert not engine.stats.degraded
