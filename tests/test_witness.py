"""Tests for the runtime lock-order witness (repro.devtools.witness).

Covers the recording semantics (nesting, object-scoped re-entrancy,
same-name instances), the wrapper veneer, and the contract that ties
the dynamic half to the static half: any interleaving in which every
thread respects a single total lock order is accepted by the witness —
its observed edges united with that order's edges stay acyclic.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.concurrency import find_cycle
from repro.devtools.witness import (LockOrderWitness, _WitnessedLock,
                                    get_witness, wrap_lock)


def make_witness() -> LockOrderWitness:
    return LockOrderWitness(enabled=True)


def test_nested_acquisition_records_one_edge():
    w = make_witness()
    a, b = object(), object()
    w.notify_acquire("A._lock", a)
    w.notify_acquire("B._lock", b)
    assert w.edges() == {("A._lock", "B._lock")}
    w.notify_release("B._lock", b)
    w.notify_release("A._lock", a)
    # Disjoint (non-nested) acquisitions add nothing.
    w.notify_acquire("B._lock", b)
    w.notify_release("B._lock", b)
    assert w.edges() == {("A._lock", "B._lock")}


def test_reentrancy_is_object_scoped():
    w = make_witness()
    lock = object()
    w.notify_acquire("A._lock", lock)
    w.notify_acquire("A._lock", lock)  # re-entry: same object
    assert w.edges() == set()
    w.notify_release("A._lock", lock)
    w.notify_release("A._lock", lock)
    assert w._held() == []


def test_same_name_different_instance_records_no_self_edge():
    # Offline reshard nests the target store's lock inside the
    # source's: two instances of one class, no orderable edge.
    w = make_witness()
    src, dst = object(), object()
    w.notify_acquire("ShardedGraphStore._lock", src)
    w.notify_acquire("ShardedGraphStore._lock", dst)
    assert w.edges() == set()


def test_edges_are_per_thread():
    w = make_witness()
    a, b = object(), object()
    w.notify_acquire("A._lock", a)

    def other():
        w.notify_acquire("B._lock", b)
        w.notify_release("B._lock", b)

    t = threading.Thread(target=other)
    t.start()
    t.join()
    # The other thread held nothing: no A -> B edge.
    assert w.edges() == set()


def test_check_reports_combined_cycle():
    w = make_witness()
    a, b = object(), object()
    w.notify_acquire("A._lock", a)
    w.notify_acquire("B._lock", b)
    assert w.check({("C._lock", "A._lock")}) is None
    cycle = w.check({("B._lock", "A._lock")})
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert {"A._lock", "B._lock"} <= set(cycle)


def test_reset_clears_observations():
    w = make_witness()
    w.notify_acquire("A._lock", object())
    w.notify_acquire("B._lock", object())
    assert w.edges()
    w.reset()
    assert w.edges() == set()


# ------------------------------------------------------------- the wrapper


def test_wrap_lock_is_identity_when_disabled():
    witness = get_witness()
    if witness.enabled:
        pytest.skip("REPRO_LOCK_WITNESS=1: wrap_lock intentionally wraps")
    raw = threading.Lock()
    assert wrap_lock(raw, "X._lock") is raw


def test_witnessed_lock_forwards_and_reports():
    w = make_witness()
    outer = object()
    lock = _WitnessedLock(threading.Lock(), "Inner._lock", w)
    w.notify_acquire("Outer._lock", outer)
    with lock:
        assert lock.locked()
    assert not lock.locked()
    assert w.edges() == {("Outer._lock", "Inner._lock")}
    # Manual protocol balances the held stack too.
    assert lock.acquire()
    lock.release()
    w.notify_release("Outer._lock", outer)
    assert w._held() == []


def test_witnessed_rlock_reentry_records_nothing():
    w = make_witness()
    lock = _WitnessedLock(threading.RLock(), "A._lock", w)
    with lock:
        with lock:
            pass
    assert w.edges() == set()


# --------------------------------------------- static/dynamic consistency


@st.composite
def ordered_interleavings(draw):
    """Acquisition traces where every thread respects lock order
    L0 < L1 < ... < L{n-1} (ascending, properly nested)."""
    n = draw(st.integers(min_value=2, max_value=6))
    threads = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=n - 1),
                 unique=True, min_size=1, max_size=4).map(sorted),
        min_size=1, max_size=4))
    return n, threads


@given(ordered_interleavings())
@settings(max_examples=80, deadline=None)
def test_order_respecting_interleavings_never_form_a_cycle(trace):
    n, threads = trace
    w = make_witness()
    static_edges = {(f"L{i}._lock", f"L{j}._lock")
                    for i in range(n) for j in range(i + 1, n)}
    locks = [object() for _ in range(n)]

    def run(plan):
        for i in plan:
            w.notify_acquire(f"L{i}._lock", locks[i])
        for i in reversed(plan):
            w.notify_release(f"L{i}._lock", locks[i])

    workers = [threading.Thread(target=run, args=(plan,))
               for plan in threads]
    for t in workers:
        t.start()
    for t in workers:
        t.join()

    assert w.edges() <= static_edges
    assert w.check(static_edges) is None
    assert find_cycle(w.edges() | static_edges) is None
