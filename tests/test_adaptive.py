"""Adaptive hot-cache tuner: skew estimation, budgets, mode switching.

The tuner's three outputs — skew estimate, byte budget, maintenance
mode — are each pinned here with controlled inputs: synthetic access
samples with known Zipf exponents, caches with known entry sizes, and
a fake clock driving the update-rate measurement.
"""

import numpy as np
import pytest

from repro.storage.hotcache import HotSetCache
from repro.storage.tuning import (
    AdaptiveTuner,
    _coverage_rank,
    estimate_skew,
)


def _zipf_sample(n, universe, skew, seed=0):
    rng = np.random.default_rng(seed)
    weights = np.arange(1, universe + 1, dtype=np.float64) ** -skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(n))


class TestSkewEstimator:
    def test_separates_uniform_from_zipfian(self):
        uniform, _ = estimate_skew(_zipf_sample(4000, 500, 0.0))
        skewed, _ = estimate_skew(_zipf_sample(4000, 500, 1.2))
        assert uniform < 0.35
        assert skewed > 0.8
        assert skewed > uniform + 0.4

    def test_recovers_exponent_roughly(self):
        for true_skew in (0.8, 1.0, 1.4):
            est, _ = estimate_skew(_zipf_sample(8000, 300, true_skew,
                                                seed=3))
            assert abs(est - true_skew) < 0.4, (true_skew, est)

    def test_degenerate_samples_report_zero(self):
        assert estimate_skew(np.zeros(0, dtype=np.int64)) == (0.0, 0)
        assert estimate_skew(np.array([5, 5, 5])) == (0.0, 1)
        # All frequencies equal: no slope to fit.
        skew, distinct = estimate_skew(np.array([1, 2, 3, 4]))
        assert skew == 0.0 and distinct == 4


class TestCoverageRank:
    def test_uniform_needs_the_whole_universe(self):
        assert _coverage_rank(0.0, 1000, 0.9) >= 900

    def test_skewed_needs_a_small_head(self):
        head = _coverage_rank(1.5, 100000, 0.9)
        assert head < 10000

    def test_monotone_in_coverage(self):
        ranks = [_coverage_rank(1.0, 10000, c) for c in (0.5, 0.7, 0.9)]
        assert ranks == sorted(ranks)


def _warmed_cache(entry_bytes=256, entries=32, skew=1.2):
    cache = HotSetCache(1 << 20)
    blob = np.arange(entry_bytes // 4, dtype=np.uint32).view(np.uint8)
    for k in range(entries):
        cache.admit_one(k, blob.copy(), entry_bytes)
    for chunk in range(8):
        cache.observe(_zipf_sample(2000, 400, skew, seed=chunk))
    return cache


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class TestBudgetResize:
    def test_resize_applied_and_split(self):
        caches = [_warmed_cache(), _warmed_cache()]
        tuner = AdaptiveTuner(caches, min_bytes=1 << 10,
                              max_bytes=1 << 26, clock=FakeClock())
        decision = tuner.tick()
        assert decision.applied
        assert decision.skew > 0.5
        assert caches[0].capacity_bytes == caches[1].capacity_bytes
        total = sum(c.capacity_bytes for c in caches)
        assert abs(total - decision.budget_bytes) < len(caches)
        assert tuner.stats.resizes == 1

    def test_hysteresis_suppresses_small_moves(self):
        caches = [_warmed_cache()]
        tuner = AdaptiveTuner(caches, min_bytes=1 << 10,
                              max_bytes=1 << 26, clock=FakeClock())
        first = tuner.tick()
        assert first.applied
        # Same telemetry, same target: the second tick's move is ~0,
        # inside the hysteresis band, so no churn.
        second = tuner.tick()
        assert not second.applied
        assert tuner.stats.resizes == 1

    def test_budget_clamped_to_bounds(self):
        caches = [_warmed_cache(entry_bytes=64, entries=4, skew=0.0)]
        tuner = AdaptiveTuner(caches, min_bytes=1 << 12, max_bytes=1 << 13,
                              clock=FakeClock())
        decision = tuner.tick()
        assert 1 << 12 <= decision.budget_bytes <= 1 << 13

    def test_empty_sample_never_resizes(self):
        cache = HotSetCache(4096)
        tuner = AdaptiveTuner([cache], clock=FakeClock())
        decision = tuner.tick()
        assert not decision.applied
        assert cache.capacity_bytes == 4096


class TestMaintenanceMode:
    def test_mode_flips_with_measured_update_rate(self):
        clock = FakeClock()
        mutations = {"count": 0}
        tuner = AdaptiveTuner([_warmed_cache()],
                              mutation_counter=lambda: mutations["count"],
                              rebuild_threshold=50.0, clock=clock)
        assert tuner.tick().maintenance_mode == "hooks"
        # 1000 mutations over 2 seconds = 500/s > 50/s: rebuild.
        mutations["count"] += 1000
        clock.advance(2.0)
        decision = tuner.tick()
        assert decision.update_rate == pytest.approx(500.0)
        assert decision.maintenance_mode == "rebuild"
        assert tuner.maintenance_mode == "rebuild"
        # Quiet period drops the rate back below threshold: hooks.
        clock.advance(10.0)
        assert tuner.tick().maintenance_mode == "hooks"
        assert tuner.stats.mode_switches == 2

    def test_gauges_exported(self):
        tuner = AdaptiveTuner([_warmed_cache()], clock=FakeClock())
        tuner.tick()
        snap = tuner.stats.snapshot()
        for gauge in ("skew_estimate", "budget_bytes", "update_rate",
                      "hit_rate", "rebuild_mode"):
            assert any(gauge in name for name in snap), (gauge, snap)
        assert tuner.stats.ticks == 1


class TestBackgroundThread:
    def test_start_stop_ticks(self):
        tuner = AdaptiveTuner([_warmed_cache()])
        tuner.start(interval=0.01)
        import time
        deadline = time.monotonic() + 2.0
        while tuner.stats.ticks == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        tuner.stop()
        assert tuner.stats.ticks >= 1
        ticks = tuner.stats.ticks
        import time as _t
        _t.sleep(0.05)
        assert tuner.stats.ticks == ticks  # really stopped

    def test_context_manager_stops(self):
        with AdaptiveTuner([_warmed_cache()]) as tuner:
            tuner.start(interval=0.01)
        assert tuner._thread is None
