"""Tests for the VEND invariant linter (repro.devtools.linter).

Each rule R001–R006 has a paired bad/good fixture under
``tests/fixtures/lint/``; the bad file must produce exactly the
expected (rule, line) findings and the corrected file none.  The suite
also pins the acceptance criterion that the repo's own ``src/`` tree
lints clean.
"""

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools import Finding, lint_paths

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC = Path(__file__).parent.parent / "src"


def findings_of(path: Path) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in lint_paths([path])]


@pytest.mark.parametrize("fixture, expected", [
    ("core/r001_bad.py", [("R001", 11), ("R001", 15), ("R001", 22)]),
    ("r002_bad.py", [("R002", 14), ("R002", 14)]),
    ("r003_bad.py", [("R003", 17), ("R003", 20), ("R003", 23)]),
    ("r004_bad.py", [("R004", 9), ("R004", 10), ("R004", 11), ("R004", 12)]),
    ("r005_bad.py", [("R005", 13), ("R005", 21), ("R005", 28)]),
    ("r006_bad.py", [("R006", 10), ("R006", 11), ("R006", 12)]),
])
def test_bad_fixture_fires_exact_rules_and_lines(fixture, expected):
    assert findings_of(FIXTURES / fixture) == expected


@pytest.mark.parametrize("fixture", [
    "core/r001_good.py", "r002_good.py", "r003_good.py",
    "r004_good.py", "r005_good.py", "r006_good.py",
])
def test_good_fixture_is_silent(fixture):
    assert findings_of(FIXTURES / fixture) == []


def test_pragma_waives_the_flagged_line():
    assert findings_of(FIXTURES / "core" / "pragma_waiver.py") == []


def test_pragma_only_waives_the_named_rule(tmp_path):
    bad = tmp_path / "core" / "wrong_pragma.py"
    bad.parent.mkdir()
    bad.write_text(
        "import numpy as np\n"
        "\n"
        "def f(values):\n"
        "    return np.asarray(values)  # lint: disable=R004 (wrong rule)\n"
    )
    assert findings_of(bad) == [("R001", 4)]


def test_r001_only_applies_to_hot_paths(tmp_path):
    cold = tmp_path / "viz" / "plots.py"
    cold.parent.mkdir()
    cold.write_text("import numpy as np\n\nx = np.asarray([1])\n")
    assert findings_of(cold) == []


def test_rule_subset_filter():
    findings = lint_paths([FIXTURES / "r005_bad.py"], rules={"R004"})
    assert findings == []


def test_inherited_interface_satisfies_r002(tmp_path):
    source = tmp_path / "derived.py"
    source.write_text(
        "def register_solution(cls):\n"
        "    return cls\n"
        "\n"
        "class BaseImpl:\n"
        "    supports_maintenance = False\n"
        "    def build(self, g):\n"
        "        self._invalidate_batch()\n"
        "    def _invalidate_batch(self):\n"
        "        pass\n"
        "    def is_nonedge(self, u, v):\n"
        "        return False\n"
        "    def is_nonedge_batch(self, us, vs=None):\n"
        "        return []\n"
        "    def memory_bytes(self):\n"
        "        return 0\n"
        "\n"
        "@register_solution\n"
        "class Derived(BaseImpl):\n"
        "    name = 'derived'\n"
    )
    assert findings_of(source) == []


def test_syntax_error_is_reported_not_raised(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert findings_of(broken) == [("R000", 1)]


def test_finding_format_is_clickable():
    finding = Finding("src/x.py", 3, 7, "R001", "msg")
    assert finding.format() == "src/x.py:3:7: R001 msg"


def test_repo_src_tree_lints_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_lint_exit_codes(capsys):
    assert cli_main(["lint", str(SRC)]) == 0
    assert "clean" in capsys.readouterr().out
    assert cli_main(["lint", str(FIXTURES / "r005_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "R005" in out and "finding" in out
