"""Tests for the SIMD register model and the Stream VByte codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import (
    GROUP_SIZE,
    SHUFFLE_ZERO,
    data_length,
    decode,
    decode_group_scalar,
    decode_group_simd,
    encode,
    encode_group,
    lanes,
    simd_any,
    simd_compare_eq,
    simd_compare_gt,
    simd_compare_lt,
    simd_count_lt,
    simd_prefix_sum,
    simd_shuffle_bytes,
)


class TestRegisterOps:
    def test_lanes_padding(self):
        reg = lanes([1, 2], width=4)
        assert reg.tolist() == [1, 2, 0, 0]
        assert reg.dtype == np.uint32

    def test_lanes_overflow(self):
        with pytest.raises(ValueError):
            lanes([1, 2, 3], width=2)

    def test_compare_eq(self):
        reg = lanes([5, 7, 5, 9])
        assert simd_compare_eq(reg, 5).tolist() == [True, False, True, False]

    def test_compare_lt_gt(self):
        reg = lanes([1, 5, 9, 5])
        assert simd_compare_lt(reg, 5).tolist() == [True, False, False, False]
        assert simd_compare_gt(reg, 5).tolist() == [False, False, True, False]

    def test_any(self):
        assert simd_any(np.array([False, True]))
        assert not simd_any(np.array([False, False]))

    def test_count_lt_active_lanes(self):
        reg = lanes([10, 20, 0, 0])  # two padded lanes
        assert simd_count_lt(reg, 15, active=2) == 1
        assert simd_count_lt(reg, 15, active=4) == 3  # padding would lie
        assert simd_count_lt(reg, 15, active=0) == 0

    def test_shuffle_gather_and_zero(self):
        data = np.arange(16, dtype=np.uint8)
        mask = np.array([3, 1, SHUFFLE_ZERO, 0], dtype=np.uint8)
        assert simd_shuffle_bytes(data, mask).tolist() == [3, 1, 0, 0]

    def test_prefix_sum_reconstructs_deltas(self):
        deltas = lanes([100, 5, 7, 3])
        assert simd_prefix_sum(deltas).tolist() == [100, 105, 112, 115]

    def test_prefix_sum_width_8(self):
        reg = lanes([1] * 8)
        assert simd_prefix_sum(reg).tolist() == list(range(1, 9))


class TestStreamVByte:
    def test_encode_group_lengths(self):
        control, chunk = encode_group([1, 300, 70000, 2**31])
        assert ((control >> 0) & 3) + 1 == 1
        assert ((control >> 2) & 3) + 1 == 2
        assert ((control >> 4) & 3) + 1 == 3
        assert ((control >> 6) & 3) + 1 == 4
        assert len(chunk) == 10
        assert data_length(control) == 10

    def test_zero_takes_one_byte(self):
        control, chunk = encode_group([0])
        assert len(chunk) == 1
        assert decode_group_scalar(control, chunk, active=1) == [0]

    def test_group_size_limits(self):
        with pytest.raises(ValueError):
            encode_group([])
        with pytest.raises(ValueError):
            encode_group([1, 2, 3, 4, 5])

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            encode_group([2**32])
        with pytest.raises(ValueError):
            encode_group([-1])

    def test_delta_requires_ascending(self):
        with pytest.raises(ValueError):
            encode_group([5, 3], delta=True)

    def test_simd_matches_scalar(self):
        values = [12, 260, 100000, 4000000000]
        control, chunk = encode_group(values)
        simd = decode_group_simd(control, chunk).tolist()
        scalar = decode_group_scalar(control, chunk)
        assert simd == scalar == values

    def test_delta_roundtrip_group(self):
        values = [20, 322, 410, 521]
        control, chunk = encode_group(values, delta=True)
        # Deltas are smaller, so the payload shrinks (paper Fig. 6 point).
        raw_control, raw_chunk = encode_group(values)
        assert len(chunk) <= len(raw_chunk)
        assert decode_group_simd(control, chunk, delta=True).tolist()[:4] == values

    def test_full_sequence_roundtrip(self):
        values = [4, 5, 14, 16, 17, 20, 50, 81, 129, 201, 322, 410, 521]
        for delta in (False, True):
            for simd in (False, True):
                controls, chunk = encode(values, delta=delta)
                assert decode(controls, chunk, len(values),
                              delta=delta, simd=simd) == values

    def test_partial_last_group(self):
        values = [7, 8, 9, 10, 11]  # 4 + 1
        controls, chunk = encode(values)
        assert len(controls) == 2
        assert decode(controls, chunk, 5) == values

    def test_empty_sequence(self):
        controls, chunk = encode([])
        assert controls == b"" and chunk == b""
        assert decode(controls, chunk, 0) == []

    def test_data_length_partial(self):
        control, _ = encode_group([1, 300])
        assert data_length(control, 1) == 1
        assert data_length(control, 2) == 3
        with pytest.raises(ValueError):
            data_length(control, 5)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=25))
def test_streamvbyte_roundtrip_property(values):
    """encode → decode is the identity for any uint32 sequence."""
    controls, chunk = encode(values)
    assert decode(controls, chunk, len(values), simd=True) == values
    assert decode(controls, chunk, len(values), simd=False) == values


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=25))
def test_streamvbyte_delta_roundtrip_property(values):
    """Delta coding round-trips for any ascending sequence."""
    values = sorted(values)
    controls, chunk = encode(values, delta=True)
    assert decode(controls, chunk, len(values), delta=True, simd=True) == values


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=GROUP_SIZE))
def test_group_simd_scalar_agree(values):
    """The LUT/shuffle decoder always agrees with the scalar decoder."""
    control, chunk = encode_group(values)
    simd = decode_group_simd(control, chunk).tolist()[:len(values)]
    scalar = decode_group_scalar(control, chunk, active=len(values))
    assert simd == scalar == values
