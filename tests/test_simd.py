"""Tests for the SIMD register model and the Stream VByte codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import (
    BLOB_GROUP,
    BLOB_MULTI,
    BLOB_SINGLE,
    GROUP_SIZE,
    SHUFFLE_ZERO,
    blob_count,
    blob_layout,
    data_length,
    decode,
    decode_blob,
    decode_blobs_packed,
    decode_group_scalar,
    decode_group_simd,
    encode,
    encode_blob,
    encode_group,
    lanes,
    leb128_decode,
    leb128_encode,
    simd_any,
    simd_compare_eq,
    simd_compare_gt,
    simd_compare_lt,
    simd_count_lt,
    simd_prefix_sum,
    simd_shuffle_bytes,
)

#: Sorted uint32 sequences, i.e. legal adjacency blobs.
ascending_u32 = st.lists(
    st.integers(0, 2**32 - 1), min_size=1, max_size=40,
).map(sorted)


class TestRegisterOps:
    def test_lanes_padding(self):
        reg = lanes([1, 2], width=4)
        assert reg.tolist() == [1, 2, 0, 0]
        assert reg.dtype == np.uint32

    def test_lanes_overflow(self):
        with pytest.raises(ValueError):
            lanes([1, 2, 3], width=2)

    def test_compare_eq(self):
        reg = lanes([5, 7, 5, 9])
        assert simd_compare_eq(reg, 5).tolist() == [True, False, True, False]

    def test_compare_lt_gt(self):
        reg = lanes([1, 5, 9, 5])
        assert simd_compare_lt(reg, 5).tolist() == [True, False, False, False]
        assert simd_compare_gt(reg, 5).tolist() == [False, False, True, False]

    def test_any(self):
        assert simd_any(np.array([False, True]))
        assert not simd_any(np.array([False, False]))

    def test_count_lt_active_lanes(self):
        reg = lanes([10, 20, 0, 0])  # two padded lanes
        assert simd_count_lt(reg, 15, active=2) == 1
        assert simd_count_lt(reg, 15, active=4) == 3  # padding would lie
        assert simd_count_lt(reg, 15, active=0) == 0

    def test_shuffle_gather_and_zero(self):
        data = np.arange(16, dtype=np.uint8)
        mask = np.array([3, 1, SHUFFLE_ZERO, 0], dtype=np.uint8)
        assert simd_shuffle_bytes(data, mask).tolist() == [3, 1, 0, 0]

    def test_prefix_sum_reconstructs_deltas(self):
        deltas = lanes([100, 5, 7, 3])
        assert simd_prefix_sum(deltas).tolist() == [100, 105, 112, 115]

    def test_prefix_sum_width_8(self):
        reg = lanes([1] * 8)
        assert simd_prefix_sum(reg).tolist() == list(range(1, 9))


class TestStreamVByte:
    def test_encode_group_lengths(self):
        control, chunk = encode_group([1, 300, 70000, 2**31])
        assert ((control >> 0) & 3) + 1 == 1
        assert ((control >> 2) & 3) + 1 == 2
        assert ((control >> 4) & 3) + 1 == 3
        assert ((control >> 6) & 3) + 1 == 4
        assert len(chunk) == 10
        assert data_length(control) == 10

    def test_zero_takes_one_byte(self):
        control, chunk = encode_group([0])
        assert len(chunk) == 1
        assert decode_group_scalar(control, chunk, active=1) == [0]

    def test_group_size_limits(self):
        with pytest.raises(ValueError):
            encode_group([])
        with pytest.raises(ValueError):
            encode_group([1, 2, 3, 4, 5])

    def test_value_too_wide(self):
        with pytest.raises(ValueError):
            encode_group([2**32])
        with pytest.raises(ValueError):
            encode_group([-1])

    def test_delta_requires_ascending(self):
        with pytest.raises(ValueError):
            encode_group([5, 3], delta=True)

    def test_simd_matches_scalar(self):
        values = [12, 260, 100000, 4000000000]
        control, chunk = encode_group(values)
        simd = decode_group_simd(control, chunk).tolist()
        scalar = decode_group_scalar(control, chunk)
        assert simd == scalar == values

    def test_delta_roundtrip_group(self):
        values = [20, 322, 410, 521]
        control, chunk = encode_group(values, delta=True)
        # Deltas are smaller, so the payload shrinks (paper Fig. 6 point).
        raw_control, raw_chunk = encode_group(values)
        assert len(chunk) <= len(raw_chunk)
        assert decode_group_simd(control, chunk, delta=True).tolist()[:4] == values

    def test_full_sequence_roundtrip(self):
        values = [4, 5, 14, 16, 17, 20, 50, 81, 129, 201, 322, 410, 521]
        for delta in (False, True):
            for simd in (False, True):
                controls, chunk = encode(values, delta=delta)
                assert decode(controls, chunk, len(values),
                              delta=delta, simd=simd) == values

    def test_partial_last_group(self):
        values = [7, 8, 9, 10, 11]  # 4 + 1
        controls, chunk = encode(values)
        assert len(controls) == 2
        assert decode(controls, chunk, 5) == values

    def test_empty_sequence(self):
        controls, chunk = encode([])
        assert controls == b"" and chunk == b""
        assert decode(controls, chunk, 0) == []

    def test_data_length_partial(self):
        control, _ = encode_group([1, 300])
        assert data_length(control, 1) == 1
        assert data_length(control, 2) == 3
        with pytest.raises(ValueError):
            data_length(control, 5)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=25))
def test_streamvbyte_roundtrip_property(values):
    """encode → decode is the identity for any uint32 sequence."""
    controls, chunk = encode(values)
    assert decode(controls, chunk, len(values), simd=True) == values
    assert decode(controls, chunk, len(values), simd=False) == values


@settings(max_examples=200, deadline=None)
@given(st.lists(st.integers(0, 2**31), min_size=1, max_size=25))
def test_streamvbyte_delta_roundtrip_property(values):
    """Delta coding round-trips for any ascending sequence."""
    values = sorted(values)
    controls, chunk = encode(values, delta=True)
    assert decode(controls, chunk, len(values), delta=True, simd=True) == values


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=GROUP_SIZE))
def test_group_simd_scalar_agree(values):
    """The LUT/shuffle decoder always agrees with the scalar decoder."""
    control, chunk = encode_group(values)
    simd = decode_group_simd(control, chunk).tolist()[:len(values)]
    scalar = decode_group_scalar(control, chunk, active=len(values))
    assert simd == scalar == values


def test_delta_restarts_per_group():
    """``encode(delta=True)`` restarts the delta base at each group of 4.

    Group 2's first lane must hold its absolute value (delta from 0),
    not the delta from group 1's last value — the property that lets
    ``decode`` start mid-stream at any group boundary.
    """
    values = [100, 101, 102, 103, 1000, 1001, 1002, 1003]
    controls, chunk = encode(values, delta=True)
    split = data_length(controls[0])
    second = decode(controls[1:], chunk[split:], 4, delta=True)
    assert second == values[4:]


class TestBlobCodec:
    def test_layout_selection(self):
        assert blob_layout(1) == BLOB_SINGLE
        assert blob_layout(2) == blob_layout(4) == BLOB_GROUP
        assert blob_layout(5) == BLOB_MULTI
        with pytest.raises(ValueError):
            blob_layout(0)

    def test_single_is_minimal_le_bytes(self):
        assert encode_blob([0]) == b"\x00"
        assert encode_blob([0x1234]) == b"\x34\x12"
        assert encode_blob([2**32 - 1]) == b"\xff\xff\xff\xff"

    def test_non_ascending_raises(self):
        with pytest.raises(ValueError):
            encode_blob([5, 3])
        with pytest.raises(ValueError):
            encode_blob([1, 2, 10, 9, 20])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            encode_blob([-1])
        with pytest.raises(ValueError):
            encode_blob([1, 2**32])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            encode_blob([])

    def test_boundary_u32_max(self):
        """2^32-1 survives every layout (the widest 4-byte lane)."""
        top = 2**32 - 1
        for values in ([top], [top - 1, top], [0, 1, top],
                       [top - 5, top - 4, top - 3, top - 2, top - 1, top]):
            payload = encode_blob(values)
            layout = blob_layout(len(values))
            assert blob_count(layout, payload) == len(values)
            assert decode_blob(layout, payload).tolist() == values

    def test_blob_count_rejects_truncation(self):
        values = list(range(100, 160))
        payload = encode_blob(values)
        layout = blob_layout(len(values))
        with pytest.raises(ValueError):
            blob_count(layout, payload[:-1])
        with pytest.raises(ValueError):
            blob_count(BLOB_SINGLE, b"")
        with pytest.raises(ValueError):
            blob_count(BLOB_SINGLE, b"\x00" * 5)

    def test_delta_is_continuous_across_groups(self):
        """Blob deltas never restart: 8 near-equal values stay 1-byte
        lanes in group 2 (a per-group restart would need 4 wide lanes).
        """
        values = [10_000_000 + i for i in range(8)]
        payload = encode_blob(values)
        # 1 count byte + 2 control bytes + 3-byte first delta
        # (10,000,000) + 7 one-byte deltas; a restart at group 2 would
        # make lane 4 another 3-byte absolute value.
        assert len(payload) == 1 + 2 + 3 + 7


@settings(max_examples=200, deadline=None)
@given(ascending_u32)
def test_blob_roundtrip_property(values):
    """encode_blob → decode_blob is the identity for sorted uint32."""
    payload = encode_blob(values)
    layout = blob_layout(len(values))
    assert blob_count(layout, payload) == len(values)
    assert decode_blob(layout, payload).tolist() == values


@settings(max_examples=100, deadline=None)
@given(st.lists(ascending_u32, min_size=1, max_size=12))
def test_blobs_packed_bulk_matches_scalar(blob_values):
    """The vectorized bulk decoder agrees with per-blob decoding when
    many blobs of mixed layouts are packed into one byte stream."""
    payloads = [encode_blob(v) for v in blob_values]
    layouts = np.array([blob_layout(len(v)) for v in blob_values],
                      dtype=np.int64)
    counts = np.array([len(v) for v in blob_values], dtype=np.int64)
    sizes = np.array([len(p) for p in payloads], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    src = np.frombuffer(b"".join(payloads), dtype=np.uint8)
    bulk = decode_blobs_packed(src, offsets, sizes, counts, layouts)
    scalar = np.concatenate(
        [decode_blob(int(la), p) for la, p in zip(layouts, payloads)])
    assert np.array_equal(bulk, scalar)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_leb128_roundtrip(value):
    buf = leb128_encode(value)
    decoded, consumed = leb128_decode(buf)
    assert decoded == value and consumed == len(buf)
