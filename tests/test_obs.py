"""Tests for the observability subsystem (repro.obs) — DESIGN.md §10.

Covers the metrics registry (families, labels, snapshot/diff, JSON and
Prometheus export), the span tracer, the stats views, and — the
headline bugfix — receipt-scoped I/O attribution: two engines sharing
one store, with maintenance traffic interleaved, must each book
exactly the I/O their own queries caused.
"""

import json
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import EdgeQueryEngine, VendGraphDB
from repro.core import HybPlusVend
from repro.graph import Graph, erdos_renyi_graph
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    QueryStats,
    ReadReceipt,
    StorageStats,
    Tracer,
)
from repro.storage import GraphStore
from repro.workloads import random_pairs


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", "help")
        b = registry.counter("repro_test_total")
        assert a is b

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_test_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_name").labels(**{"0bad": "x"})

    def test_labels_get_or_create_ignores_order(self):
        counter = MetricsRegistry().counter("repro_test_total")
        one = counter.labels(a="1", b="2")
        two = counter.labels(b="2", a="1")
        assert one is two
        one.inc(3)
        assert counter.value(a="1", b="2") == 3

    def test_counter_rejects_negative_increments(self):
        series = MetricsRegistry().counter("repro_test_total").labels(x="y")
        with pytest.raises(ValueError):
            series.inc(-1)

    def test_scope_allocates_fresh_values(self):
        registry = MetricsRegistry()
        assert registry.scope("store") == "store0"
        assert registry.scope("store") == "store1"
        assert registry.scope("engine") == "engine0"

    def test_snapshot_and_diff(self):
        registry = MetricsRegistry()
        series = registry.counter("repro_test_total").labels(store="s0")
        before = registry.snapshot()
        series.inc(5)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta == {'repro_test_total{store="s0"}': 5}

    def test_diff_drops_zero_deltas(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").labels(x="1").inc(2)
        registry.counter("repro_b_total").labels(x="1")
        before = registry.snapshot()
        registry.counter("repro_b_total").labels(x="1").inc(1)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert list(delta) == ['repro_b_total{x="1"}']

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").labels(x="1").inc(2)
        hist = registry.histogram("repro_lat_seconds")
        hist.observe(0.01, x="1")
        registry.reset()
        assert all(v == 0 for v in registry.snapshot().values())

    def test_histogram_bucket_placement(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds",
                                  buckets=(0.001, 0.01, 0.1))
        series = hist.labels(x="1")
        for value in (0.0005, 0.005, 0.05, 5.0):
            series.observe(value)
        cumulative = series.cumulative_buckets()
        assert cumulative == [(0.001, 1), (0.01, 2), (0.1, 3),
                              (float("inf"), 4)]
        assert series.count == 4
        assert series.total == pytest.approx(5.0555)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_reads_total", "reads").labels(
            store="s0").inc(7)
        registry.gauge("repro_entries", "entries").labels(cache="c0").set(3)
        registry.histogram("repro_lat_seconds", "latency",
                           buckets=(0.01, 0.1)).labels(
            engine="e0").observe(0.05)
        return registry

    def test_json_round_trips_and_has_all_families(self):
        doc = json.loads(json.dumps(self._populated().to_json()))
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["repro_reads_total"]["type"] == "counter"
        assert by_name["repro_reads_total"]["series"][0]["value"] == 7
        assert by_name["repro_entries"]["type"] == "gauge"
        hist = by_name["repro_lat_seconds"]
        assert hist["series"][0]["buckets"] == [["0.01", 0], ["0.1", 1],
                                                ["+Inf", 1]]
        assert hist["series"][0]["count"] == 1

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_reads_total reads" in lines
        assert "# TYPE repro_reads_total counter" in lines
        assert 'repro_reads_total{store="s0"} 7' in lines
        assert "# TYPE repro_entries gauge" in lines
        assert 'repro_lat_seconds_bucket{engine="e0",le="0.1"} 1' in lines
        assert 'repro_lat_seconds_bucket{engine="e0",le="+Inf"} 1' in lines
        assert 'repro_lat_seconds_count{engine="e0"} 1' in lines
        # Every non-comment line is `name{labels} value`.
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*='
            r'"[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? \S+$'
        )
        for line in lines:
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").labels(name='a"b\\c\nd').inc(1)
        text = registry.to_prometheus()
        assert r'name="a\"b\\c\nd"' in text


class TestTracer:
    def test_disabled_tracer_hands_out_null_spans(self):
        tracer = Tracer()
        assert tracer.span("query") is tracer.span("other")
        with tracer.span("query"):
            pass
        assert not tracer.traces

    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("query", engine="e0"):
            with tracer.span("ndf_filter"):
                pass
            with tracer.span("storage_get"):
                with tracer.span("cache"):
                    pass
        assert len(tracer.traces) == 1
        root = tracer.traces[0]
        assert root.name == "query"
        assert root.labels == {"engine": "e0"}
        assert [c.name for c in root.children] == ["ndf_filter",
                                                   "storage_get"]
        assert [c.name for c in root.children[1].children] == ["cache"]
        assert root.duration_seconds >= 0
        assert "query [engine=e0]" in root.format()

    def test_bounded_trace_buffer(self):
        tracer = Tracer(max_traces=3)
        tracer.enabled = True
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.traces] == ["op2", "op3", "op4"]

    def test_exception_unwind_closes_the_span(self):
        tracer = Tracer()
        tracer.enabled = True
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                with tracer.span("storage_get"):
                    raise RuntimeError("boom")
        assert len(tracer.traces) == 1
        assert tracer.traces[0].name == "query"
        assert not tracer._stack

    def test_to_json_limit(self):
        tracer = Tracer()
        tracer.enabled = True
        for i in range(4):
            with tracer.span(f"op{i}"):
                pass
        assert [t["name"] for t in tracer.to_json(limit=2)] == ["op2", "op3"]


class TestReadReceipt:
    def test_counting_and_merge(self):
        receipt = ReadReceipt()
        receipt.count_cache_hit()
        receipt.count_disk_read(64)
        assert (receipt.cache_hits, receipt.disk_reads,
                receipt.bytes_read) == (1, 1, 64)
        assert receipt.served == 2
        other = ReadReceipt()
        other.count_disk_read(10)
        receipt.merge(other)
        assert receipt.disk_reads == 2
        assert receipt.bytes_read == 74


class TestStatsViews:
    def test_fields_read_live_series(self):
        registry = MetricsRegistry()
        stats = StorageStats(registry=registry)
        assert stats.disk_reads == 0
        stats.inc("disk_reads", 3)
        assert stats.disk_reads == 3
        assert registry.counter("repro_storage_disk_reads_total").value(
            store=stats.scope) == 3

    def test_legacy_attribute_write_routes_to_series(self):
        stats = StorageStats(registry=MetricsRegistry())
        stats.disk_reads = 9
        assert stats.disk_reads == 9

    def test_unknown_field_raises(self):
        stats = StorageStats(registry=MetricsRegistry())
        with pytest.raises(AttributeError):
            stats.not_a_field  # noqa: B018

    def test_reset_only_touches_own_scope(self):
        registry = MetricsRegistry()
        first = StorageStats(registry=registry)
        second = StorageStats(registry=registry)
        first.inc("disk_reads", 2)
        second.inc("disk_reads", 5)
        first.reset()
        assert first.disk_reads == 0
        assert second.disk_reads == 5

    def test_snapshot_diff(self):
        stats = StorageStats(registry=MetricsRegistry())
        before = stats.snapshot()
        stats.inc("disk_reads")
        stats.inc("bytes_read", 128)
        delta = stats.diff(before)
        assert delta["disk_reads"] == 1
        assert delta["bytes_read"] == 128
        assert delta["disk_writes"] == 0

    def test_query_stats_degraded_is_derived_from_store(self):
        class FakeStore:
            degraded = False

        store = FakeStore()
        stats = QueryStats(store=store, registry=MetricsRegistry())
        assert not stats.degraded
        store.degraded = True
        assert stats.degraded
        stats.reset()  # cannot clear a condition it does not own
        assert stats.degraded
        store.degraded = False
        assert not stats.degraded


def _loaded_store(cache_bytes: int = 0) -> tuple[Graph, GraphStore]:
    graph = erdos_renyi_graph(80, 240, seed=9)
    store = GraphStore(cache_bytes=cache_bytes)
    store.bulk_load(graph)
    return graph, store


class TestAttribution:
    """The headline bugfix: receipt-scoped per-engine accounting."""

    def test_serial_interleave_books_io_to_the_right_engine(self):
        graph, store = _loaded_store(cache_bytes=1 << 16)
        engine_a = EdgeQueryEngine(store)
        engine_b = EdgeQueryEngine(store)
        edges = sorted(graph.edges())[:20]
        maintenance = ReadReceipt()
        # Tight interleave: a query from A, a maintenance fetch, a
        # query from B — the exact pattern the old diff-the-shared-
        # globals accounting misattributed.
        for u, v in edges:
            assert engine_a.has_edge(u, v)
            store.get_neighbors(u, receipt=maintenance)
            assert engine_b.has_edge(u, v)
        for engine in (engine_a, engine_b):
            stats = engine.stats
            assert stats.executed == len(edges)
            # Scalar path: one storage get per executed query, each
            # either cache- or disk-served — exactly, not at-least.
            assert stats.cache_served + stats.disk_served == stats.executed
        assert maintenance.served == len(edges)
        # The maintenance fetches warmed the cache for nobody's books
        # but their own: totals across all three actors equal the
        # store's real I/O.
        served = (engine_a.stats.cache_served + engine_a.stats.disk_served
                  + engine_b.stats.cache_served + engine_b.stats.disk_served
                  + maintenance.served)
        assert served == 3 * len(edges)

    def test_threaded_engines_never_steal_each_others_io(self):
        graph, store = _loaded_store(cache_bytes=0)
        engine_a = EdgeQueryEngine(store)
        engine_b = EdgeQueryEngine(store)
        edges = sorted(graph.edges())[:40]
        maintenance = ReadReceipt()
        barrier = threading.Barrier(3)
        errors: list[Exception] = []

        def run(task):
            try:
                barrier.wait()
                task()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        def query_loop(engine):
            return lambda: [engine.has_edge(u, v) for u, v in edges]

        def maintenance_loop():
            for u, _ in edges:
                store.get_neighbors(u, receipt=maintenance)

        threads = [threading.Thread(target=run, args=(t,))
                   for t in (query_loop(engine_a), query_loop(engine_b),
                             maintenance_loop)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No cache: every get is a physical read.  Whatever the
        # interleaving, each engine's books must equal its own load.
        for engine in (engine_a, engine_b):
            assert engine.stats.executed == len(edges)
            assert engine.stats.disk_served == len(edges)
            assert engine.stats.cache_served == 0
        assert maintenance.disk_reads == len(edges)

    def test_batched_path_accounts_deduplicated_io(self):
        graph, store = _loaded_store(cache_bytes=0)
        engine = EdgeQueryEngine(store)
        edges = sorted(graph.edges())[:30]
        answers = engine.has_edge_batch(edges)
        assert answers.all()
        stats = engine.stats
        assert stats.executed == len(edges)
        unique_sources = len({u for u, _ in edges})
        # Dedup means the batch paid one read per distinct left
        # endpoint — and the receipt booked exactly those.
        assert stats.disk_served == unique_sources
        assert stats.cache_served + stats.disk_served <= stats.executed

    def test_database_maintenance_reads_stay_out_of_query_books(self):
        graph = erdos_renyi_graph(60, 180, seed=3)
        db = VendGraphDB(k=6, cache_bytes=1 << 16)
        db.load_graph(graph)
        for u, v in sorted(graph.edges())[:10]:
            db.has_edge(u, v)
        query_before = db.query_stats.snapshot()
        reads_before = db.maintenance_reads
        db.rebuild_index()
        # Every stored vertex was fetched for re-encoding; none of that
        # I/O leaked into the engine's counters.
        assert db.maintenance_reads - reads_before == graph.num_vertices
        assert db.db_stats.maintenance_disk_reads <= db.maintenance_reads
        assert db.index_rebuilds == 1
        assert db.query_stats.diff(query_before) == {
            name: 0 for name in query_before
        }


_PROP_GRAPH = erdos_renyi_graph(50, 150, seed=21)
_PROP_STORE = GraphStore(cache_bytes=1 << 16)
_PROP_STORE.bulk_load(_PROP_GRAPH)
_PROP_FILTER = HybPlusVend(k=6)
_PROP_FILTER.build(_PROP_GRAPH)
_PROP_PAIRS = random_pairs(_PROP_GRAPH, 200, seed=21)


class TestCounterInvariants:
    @given(
        indices=st.lists(st.integers(0, len(_PROP_PAIRS) - 1), max_size=60),
        batch=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_filtered_plus_executed_equals_total(self, indices, batch):
        engine = EdgeQueryEngine(_PROP_STORE, _PROP_FILTER)
        pairs = [_PROP_PAIRS[i] for i in indices]
        if batch and pairs:
            engine.has_edge_batch(pairs)
        else:
            for u, v in pairs:
                engine.has_edge(u, v)
        stats = engine.stats
        assert stats.total == len(pairs)
        assert stats.filtered + stats.executed == stats.total
        assert stats.cache_served + stats.disk_served <= stats.executed
        if not batch:
            # Scalar path never dedups: provenance is exact per query.
            assert stats.cache_served + stats.disk_served == stats.executed
        assert stats.positives <= stats.executed


class TestExactExposition:
    """Regression: ``%g`` rendering corrupted large/precise values."""

    def test_large_counter_exports_exactly(self):
        registry = MetricsRegistry()
        value = 2**24 + 12_345_679  # %g would render 2.91229e+07
        registry.counter("repro_big_total").labels(store="s0").inc(value)
        text = registry.to_prometheus()
        assert f'repro_big_total{{store="s0"}} {value}' in text
        assert "e+" not in text

    def test_integer_counters_never_use_scientific_notation(self):
        registry = MetricsRegistry()
        for exp in (24, 31, 53, 60):
            registry.counter("repro_pow_total").labels(
                e=str(exp)).inc(2**exp + 1)
        for line in registry.to_prometheus().splitlines():
            if line.startswith("repro_pow_total"):
                value = line.rsplit(" ", 1)[1]
                assert value == str(int(value))

    def test_float_sum_exports_full_precision(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_t_seconds", buckets=(1.0,))
        series = hist.labels(engine="e0")
        for value in (0.1, 0.2, 1e-9):
            series.observe(value)
        text = registry.to_prometheus()
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("repro_t_seconds_sum"))
        exported = float(line.rsplit(" ", 1)[1])
        assert exported == 0.1 + 0.2 + 1e-9  # bit-exact round trip

    def test_float_counter_round_trips_via_repr(self):
        registry = MetricsRegistry()
        elapsed = 12345.678912345678
        registry.counter("repro_el_seconds_total").labels(
            engine="e0").inc(elapsed)
        text = registry.to_prometheus()
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("repro_el_seconds_total"))
        assert float(line.rsplit(" ", 1)[1]) == elapsed


class TestScrapeConsistency:
    """A scrape racing live updates must see coherent histograms."""

    def _parse(self, text):
        samples = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            samples[name] = float(value)
        return samples

    def test_threaded_hammer_never_sees_count_ahead_of_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_h_seconds", buckets=(0.5, 1.5))
        series = hist.labels(engine="e0")
        stop = threading.Event()
        failures = []

        def observer():
            while not stop.is_set():
                series.observe(1.0)

        def scraper():
            while not stop.is_set():
                samples = self._parse(registry.to_prometheus())
                count = samples['repro_h_seconds_count{engine="e0"}']
                total = samples['repro_h_seconds_sum{engine="e0"}']
                inf = samples['repro_h_seconds_bucket{engine="e0",le="+Inf"}']
                mid = samples['repro_h_seconds_bucket{engine="e0",le="1.5"}']
                # Every observation is exactly 1.0, so a coherent
                # snapshot has sum == count == every cumulative bucket
                # from le=1.5 up.  Any drift is a torn scrape.
                if not (total == count == inf == mid):
                    failures.append((total, count, mid, inf))

        threads = [threading.Thread(target=observer) for _ in range(3)]
        threads += [threading.Thread(target=scraper) for _ in range(2)]
        for t in threads:
            t.start()
        import time as _time
        _time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert series.count > 1000, "hammer made no progress"
        assert not failures, f"torn scrapes observed: {failures[:5]}"

    def test_snapshot_histogram_fields_are_coherent(self):
        registry = MetricsRegistry()
        series = registry.histogram("repro_s_seconds",
                                    buckets=(1.0,)).labels(x="0")
        series.observe(2.0)
        snap = registry.snapshot()
        assert snap['repro_s_seconds_sum{x="0"}'] == 2.0
        assert snap['repro_s_seconds_count{x="0"}'] == 1
