"""The fuzz harness's own tests: schema-driven generation, the shadow
ground truth, end-to-end runs, and proof that a planted soundness bug
is actually detected (a fuzzer that cannot fail is not a fuzzer).
"""

from __future__ import annotations

import json

import pytest

from repro.apps import VendGraphDB
from repro.devtools.fuzz import (
    DEFAULT_UNIVERSE,
    FuzzReport,
    PoisonedFilter,
    ShadowGraph,
    _corruptions,
    check_exact_metrics,
    run_fuzz,
    strategy_for,
    valid_mutation_ops,
)
from repro.graph import Graph
from repro.server import ServerConfig, serve_in_thread
from repro.server.schemas import (
    ENDPOINTS,
    MUTATIONS_REQUEST,
    NEIGHBORS_REQUEST,
    PROBE_REQUEST,
    check_mutation_op,
    validate,
)


def empty_db(**kwargs) -> VendGraphDB:
    kwargs.setdefault("k", 3)
    db = VendGraphDB(**kwargs)
    db.load_graph(Graph())
    return db


# -- schema-driven generation ------------------------------------------------


class TestStrategies:
    @pytest.mark.parametrize("schema", [PROBE_REQUEST, NEIGHBORS_REQUEST,
                                        MUTATIONS_REQUEST])
    def test_generated_payloads_satisfy_their_schema(self, schema):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        vertex_ids = st.integers(min_value=0, max_value=9)

        @settings(max_examples=50, database=None, deadline=None)
        @given(payload=strategy_for(schema, vertex_ids))
        def check(payload):
            assert validate(schema, payload) == []

        check()

    def test_valid_mutation_ops_pass_cross_field_rules(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        vertex_ids = st.integers(min_value=0, max_value=9)

        @settings(max_examples=50, database=None, deadline=None)
        @given(op=valid_mutation_ops(vertex_ids))
        def check(op):
            from repro.server.schemas import MUTATION_OP
            assert validate(MUTATION_OP, op) == []
            assert check_mutation_op(op) == []

        check()

    def test_unknown_schema_type_raises(self):
        with pytest.raises(ValueError):
            strategy_for({"type": "quaternion"})

    def test_every_corruption_is_actually_invalid(self):
        """Each corruption must fail parsing, schema validation, or the
        cross-field rules — otherwise the fuzzer would book a spurious
        ``bad_status`` when the server rightly answers 200."""
        for path, body in _corruptions(DEFAULT_UNIVERSE):
            schema = ENDPOINTS[("POST", path)]
            try:
                doc = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue  # unparseable: invalid by definition
            errors = validate(schema, doc)
            if not errors and path == "/v1/mutations":
                for op in doc["ops"]:
                    errors.extend(check_mutation_op(op))
            assert errors, f"corruption {body[:60]!r} validates cleanly"


# -- the shadow --------------------------------------------------------------


class TestShadowGraph:
    def test_mirrors_edge_and_vertex_ops(self):
        shadow = ShadowGraph()
        shadow.apply({"op": "add_edge", "u": 1, "v": 2})
        shadow.apply({"op": "add_edge", "u": 2, "v": 3})
        assert shadow.has_edge(1, 2) and shadow.has_edge(2, 1)
        assert not shadow.has_edge(1, 3)
        shadow.apply({"op": "remove_vertex", "v": 2})
        assert not shadow.has_edge(1, 2)
        assert not shadow.has_edge(3, 2)
        assert sorted(shadow.edges()) == []

    def test_remove_edge_is_idempotent(self):
        shadow = ShadowGraph()
        shadow.apply({"op": "remove_edge", "u": 5, "v": 6})
        assert not shadow.has_edge(5, 6)

    def test_rejects_unknown_verbs(self):
        with pytest.raises(ValueError):
            ShadowGraph().apply({"op": "detonate", "v": 1})


# -- report semantics --------------------------------------------------------


class TestFuzzReport:
    def test_ok_flips_on_any_bucket(self):
        report = FuzzReport(seed=0)
        assert report.ok
        report.book("false_no_edge", "edge (1, 2) denied")
        assert not report.ok
        assert "1 false no-edge" in report.summary()
        assert "edge (1, 2) denied" in report.details()

    def test_booking_is_capped(self):
        report = FuzzReport(seed=0)
        for i in range(100):
            report.book("server_errors", f"boom {i}", cap=25)
        assert len(report.server_errors) == 25


# -- end to end --------------------------------------------------------------


class TestRunFuzz:
    def test_clean_server_fuzzes_clean(self):
        db = empty_db(shards=2)
        handle = serve_in_thread(db, ServerConfig())
        try:
            host, port = handle.address
            report = run_fuzz(host, port, seed=11, examples=10,
                              clients=6, per_client=6, universe=10,
                              check_metrics=True)
            assert report.ok, report.details()
            assert report.examples == 10
            assert report.requests > 50
        finally:
            handle.stop()
            db.close()

    def test_poisoned_filter_is_caught(self):
        """Plant the exact bug class the harness exists for — a filter
        that falsely certifies one real edge as a non-edge — and
        assert the fuzz run reports it as a false no-edge verdict."""
        db = empty_db()
        handle = serve_in_thread(db, ServerConfig())
        try:
            host, port = handle.address
            db.add_vertex(1)
            db.add_vertex(2)
            db.add_edge(1, 2)
            shadow = ShadowGraph()
            shadow.apply({"op": "add_edge", "u": 1, "v": 2})
            db._engine.nonedge_filter = PoisonedFilter(db.vend, (1, 2))
            report = run_fuzz(host, port, seed=5, examples=0,
                              clients=4, per_client=12, universe=4,
                              shadow=shadow)
            assert not report.ok
            assert report.false_no_edge, report.summary()
            assert any(pair in report.false_no_edge[0]
                       for pair in ("(1, 2)", "(2, 1)"))
        finally:
            handle.stop()
            db.close()

    def test_sequential_phase_alone_catches_poison(self):
        db = empty_db()
        handle = serve_in_thread(db, ServerConfig())
        try:
            host, port = handle.address
            db.add_vertex(0)
            db.add_vertex(1)
            db.add_edge(0, 1)
            shadow = ShadowGraph()
            shadow.apply({"op": "add_edge", "u": 0, "v": 1})
            db._engine.nonedge_filter = PoisonedFilter(db.vend, (0, 1))
            report = run_fuzz(host, port, seed=9, examples=15,
                              clients=0, per_client=0, universe=3,
                              shadow=shadow)
            assert report.false_no_edge
        finally:
            handle.stop()
            db.close()

    def test_check_metrics_flags_drift(self):
        """check_exact_metrics books nothing against an honest server
        (covered above); here its parser survives an empty target."""
        report = FuzzReport(seed=0)
        db = empty_db()
        handle = serve_in_thread(db, ServerConfig())
        try:
            host, port = handle.address
            check_exact_metrics(host, port, report, probes=3)
            assert report.ok, report.details()
        finally:
            handle.stop()
            db.close()

    def test_seed_determinism_of_sequential_phase(self):
        """Same seed → same request count and example count (the CI
        replay contract); the graph the run leaves behind is equal."""
        outcomes = []
        for _ in range(2):
            db = empty_db()
            handle = serve_in_thread(db, ServerConfig())
            try:
                host, port = handle.address
                shadow = ShadowGraph()
                report = run_fuzz(host, port, seed=21, examples=12,
                                  clients=0, per_client=0, universe=8,
                                  shadow=shadow)
                assert report.ok, report.details()
                outcomes.append((report.examples, report.requests,
                                 sorted(shadow.edges())))
            finally:
                handle.stop()
                db.close()
        assert outcomes[0] == outcomes[1]
