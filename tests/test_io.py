"""Tests for edge-list I/O."""

import pytest

from repro.graph import DiGraph, Graph, read_edge_list, write_edge_list


class TestRoundtrip:
    def test_undirected_roundtrip(self, tmp_path):
        g = Graph([(1, 2), (2, 3), (5, 9)])
        path = tmp_path / "g.txt"
        lines = write_edge_list(g, path)
        assert lines == 3
        back = read_edge_list(path)
        assert sorted(back.edges()) == sorted(g.edges())

    def test_directed_roundtrip(self, tmp_path):
        g = DiGraph([(1, 2), (2, 1), (3, 1)])
        path = tmp_path / "d.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, directed=True)
        assert sorted(back.edges()) == sorted(g.edges())

    def test_header_comment_written(self, tmp_path):
        g = Graph([(1, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert path.read_text().startswith("# |V|=2 |E|=1")


class TestParsing:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("# comment\n% also comment\n\n1 2\n2 3\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("1 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 1

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("1 2 0.5\n")
        g = read_edge_list(path)
        assert g.has_edge(1, 2)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("1 2\njust-one-token\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)

    def test_duplicate_edges_collapse(self, tmp_path):
        path = tmp_path / "in.txt"
        path.write_text("1 2\n2 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 1
