"""Tests for the runtime soundness auditor (repro.devtools.audit).

Covers the three differential checks — zero false no-edge verdicts,
scalar/batch agreement, post-maintenance validity — on healthy
solutions, and proves the auditor *catches* a deliberately broken
solution (a false no-edge verdict) and a stale-snapshot solution
(maintenance that forgets to invalidate the batch cache).
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import HybridVend, PartialVend, available_solutions, create_solution
from repro.core.base import endpoint_arrays
from repro.devtools import SoundnessAuditor
from repro.graph import powerlaw_graph


@pytest.fixture(scope="module")
def graph():
    return powerlaw_graph(150, 6.0, seed=3)


@pytest.fixture(scope="module")
def auditor(graph):
    return SoundnessAuditor(graph, seed=3, pairs=400, updates=25,
                            scalar_sample=120)


class FalseNonedgeSolution(PartialVend):
    """Deliberately unsound: certifies one real edge as an NEpair."""

    name = "broken-partial"
    supports_maintenance = False

    def __init__(self, k, poisoned_edge, int_bits=32):
        super().__init__(k, int_bits)
        self._poisoned = tuple(sorted(poisoned_edge))

    def _is_poisoned(self, u, v):
        return tuple(sorted((u, v))) == self._poisoned

    def is_nonedge(self, u, v):
        if self._is_poisoned(u, v):
            return True
        return super().is_nonedge(u, v)

    def is_nonedge_batch(self, pairs_u, pairs_v=None):
        us, vs = endpoint_arrays(pairs_u, pairs_v)
        result = np.asarray(super().is_nonedge_batch(us, vs), dtype=bool)
        pu, pv = self._poisoned
        result |= ((us == pu) & (vs == pv)) | ((us == pv) & (vs == pu))
        return result


class ForgetfulHybrid(HybridVend):
    """Maintenance mutates codes but never drops the batch snapshot."""

    name = "forgetful-hybrid"

    def insert_edge(self, u, v, fetch):
        snapshot = self._batch_index
        super().insert_edge(u, v, fetch)
        self._batch_index = snapshot  # lint: disable=R003 (test double)

    def delete_edge(self, u, v, fetch):
        snapshot = self._batch_index
        super().delete_edge(u, v, fetch)
        self._batch_index = snapshot  # lint: disable=R003 (test double)


def test_every_registered_solution_is_sound(graph, auditor):
    for name in available_solutions():
        report = auditor.audit(create_solution(name, k=5))
        assert report.ok, report.summary() + "\n" + "\n".join(
            v.format() for v in report.violations
        )
        assert report.edges_checked > 0
        assert report.pairs_checked > 0


def test_dynamic_solutions_audit_through_hooks(auditor):
    report = auditor.audit(HybridVend(k=5))
    assert report.ok
    assert report.maintenance_mode == "hooks"
    assert report.inserts_applied == 25
    assert report.deletes_applied > 0


def test_static_solutions_audit_through_rebuild(auditor):
    report = auditor.audit(PartialVend(k=5))
    assert report.ok
    assert report.maintenance_mode == "rebuild"
    assert report.inserts_applied == 25


def test_partial_detects_nonedges_at_all(auditor):
    # Guard against a vacuous audit: the workload must contain pairs
    # the solution actually certifies.
    report = auditor.audit(PartialVend(k=5))
    assert report.detections > 0


def test_auditor_catches_false_nonedge(graph, auditor):
    edge = sorted(graph.edges())[0]
    report = auditor.audit(FalseNonedgeSolution(5, edge), maintenance=False)
    assert not report.ok
    assert any(v.check == "false-nonedge" for v in report.violations)
    assert any(tuple(sorted(v.pair)) == tuple(edge)
               for v in report.violations)


def test_auditor_catches_stale_batch_snapshot(graph, auditor):
    report = auditor.audit(ForgetfulHybrid(k=5))
    assert not report.ok
    assert any(v.phase == "maintenance" and
               v.check in ("false-nonedge", "batch-mismatch")
               for v in report.violations)


def test_maintenance_skip_flag(auditor):
    report = auditor.audit(PartialVend(k=5), maintenance=False)
    assert report.ok
    assert report.maintenance_mode == "skipped"
    assert report.inserts_applied == 0


def test_auditor_does_not_mutate_callers_graph(graph):
    before = graph.num_edges
    SoundnessAuditor(graph, seed=1, pairs=100, updates=10,
                     scalar_sample=50).audit(PartialVend(k=5))
    assert graph.num_edges == before


def test_violation_cap(graph):
    edge = sorted(graph.edges())[0]
    auditor = SoundnessAuditor(graph, seed=3, pairs=200, updates=5,
                               scalar_sample=50, max_violations=3)
    report = auditor.audit(FalseNonedgeSolution(5, edge), maintenance=False)
    assert len(report.violations) <= 3


def test_cli_audit_sweep(capsys):
    code = cli_main([
        "audit", "--vertices", "120", "--avg-degree", "5",
        "--pairs", "200", "--updates", "10", "--k", "4", "--seed", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "all" in out and "sound" in out
    for name in available_solutions():
        assert name in out


def test_cli_audit_single_solution(capsys):
    code = cli_main([
        "audit", "--solutions", "partial", "--vertices", "100",
        "--avg-degree", "4", "--pairs", "100", "--updates", "5", "--k", "4",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "partial" in out
