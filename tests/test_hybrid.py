"""Tests for the hybrid VEND solution — encoding, NDF, NT-size, maintenance."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hybrid import HybridVend, IdCapacityError
from repro.graph import Graph, erdos_renyi_graph, powerlaw_graph

from .conftest import all_pairs, assert_no_false_positives, paper_example_graph


def build_hybrid(graph, k=2, **kwargs):
    solution = HybridVend(k=k, **kwargs)
    solution.build(graph)
    return solution


class TestLayout:
    def test_layout_fields(self):
        g = erdos_renyi_graph(100, 400, seed=0)
        s = build_hybrid(g, k=2)
        assert s.id_bits == 7  # 100 < 128
        assert s.k_star >= 1
        # Core codes must leave at least one hash bit at max block size.
        assert s._slot_bits(s.k_star) >= 1

    def test_id_bits_override(self):
        g = erdos_renyi_graph(50, 200, seed=0)
        s = build_hybrid(g, k=2, id_bits=16)
        assert s.id_bits == 16

    def test_id_bits_too_small(self):
        g = erdos_renyi_graph(300, 900, seed=0)
        with pytest.raises(ValueError):
            build_hybrid(g, k=2, id_bits=4)

    def test_id_bits_above_int_bits(self):
        g = erdos_renyi_graph(10, 20, seed=0)
        with pytest.raises(ValueError):
            build_hybrid(g, k=1, id_bits=64)

    def test_k_too_small_for_ids(self):
        g = Graph([(1, 2)])
        with pytest.raises(ValueError):
            HybridVend(k=1, int_bits=8, id_bits=8).build(g)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            HybridVend(k=0)

    def test_memory_is_k_times_i_per_vertex(self):
        g = erdos_renyi_graph(64, 256, seed=1)
        s = build_hybrid(g, k=4)
        assert s.memory_bytes() == 64 * 4 * 32 // 8


class TestEncodingRoundtrip:
    def test_decodable_roundtrip(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        # Vertices 5 and 8 peel early and must be decodable.
        assert s.is_decodable(5)
        assert s.decoded_ids(5) == [3]
        assert s.is_decodable(8)
        assert s.decoded_ids(8) == [3, 7]

    def test_decoded_ids_requires_decodable(self):
        g = powerlaw_graph(200, avg_degree=12, seed=2)
        s = build_hybrid(g, k=2, id_bits=8)
        core = [v for v in g.vertices() if not s.is_decodable(v)]
        assert core, "expected a non-empty core at this density"
        with pytest.raises(ValueError):
            s.decoded_ids(core[0])

    def test_every_vertex_has_a_code(self):
        g = powerlaw_graph(150, avg_degree=6, seed=3)
        s = build_hybrid(g, k=2)
        assert s.num_codes == g.num_vertices


class TestSoundnessAndScore:
    @pytest.mark.parametrize("k", [2, 4])
    def test_no_false_positives_powerlaw(self, k):
        g = powerlaw_graph(200, avg_degree=8, seed=4)
        s = build_hybrid(g, k=k)
        detected = assert_no_false_positives(s, g)
        assert detected > 0

    def test_no_false_positives_dense_er(self):
        g = erdos_renyi_graph(80, 1200, seed=5)
        s = build_hybrid(g, k=2)
        assert_no_false_positives(s, g)

    def test_detects_most_nepairs_when_sparse(self):
        g = powerlaw_graph(300, avg_degree=6, seed=6)
        s = build_hybrid(g, k=4)
        nepairs = sum(
            1 for u, v in all_pairs(g) if not g.has_edge(u, v)
        )
        detected = sum(
            1 for u, v in all_pairs(g)
            if not g.has_edge(u, v) and s.is_nonedge(u, v)
        )
        assert detected / nepairs > 0.8

    def test_self_pair_is_never_nonedge(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        assert not s.is_nonedge(3, 3)

    def test_unknown_vertex_returns_false(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        assert not s.is_nonedge(1, 999)

    def test_larger_k_never_hurts_much(self):
        """Score should broadly increase with k (paper Table I trend)."""
        g = powerlaw_graph(250, avg_degree=10, seed=7)
        scores = []
        for k in (2, 4, 8):
            s = build_hybrid(g, k=k)
            pairs = [(u, v) for u, v in all_pairs(g) if not g.has_edge(u, v)]
            detected = sum(1 for u, v in pairs if s.is_nonedge(u, v))
            scores.append(detected / len(pairs))
        assert scores[-1] >= scores[0]


class TestNTSize:
    def test_nt_size_matches_brute_force(self):
        g = powerlaw_graph(120, avg_degree=8, seed=8)
        s = build_hybrid(g, k=2)
        max_id = g.max_vertex_id
        for v in list(g.vertices())[:40]:
            code = s.code_of(v)
            brute = sum(
                1 for w in range(1, max_id + 1) if s.ne_test(w, code)
            )
            assert s.nt_size(code) == brute, f"NT mismatch at vertex {v}"

    def test_nt_size_decodable(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        code = s.code_of(8)  # decodable, 2 ids
        assert s.nt_size(code) == g.max_vertex_id - 2


class TestMaintenanceInsert:
    def test_insert_known_edge_is_noop(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        fetch = g.sorted_neighbors
        before = {v: s.code_of(v).value for v in g.vertices()}
        # (3, 5) already fails the NDF (it is an edge), so nothing changes.
        s.insert_edge(3, 5, fetch)
        after = {v: s.code_of(v).value for v in g.vertices()}
        assert before == after
        assert s.stats.inserts_noop == 1

    def test_insert_into_unfilled_decodable(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        assert s.is_nonedge(5, 8)
        g.add_edge(5, 8)
        s.insert_edge(5, 8, g.sorted_neighbors)
        assert not s.is_nonedge(5, 8)
        assert s.stats.inserts_fast == 1

    def test_insert_new_vertex_edge(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        g.add_vertex(9)
        g.add_edge(9, 1)
        s.insert_edge(9, 1, g.sorted_neighbors)
        assert not s.is_nonedge(9, 1)

    def test_vertex_id_capacity(self):
        g = paper_example_graph()  # max id 8 -> I' = 4
        s = build_hybrid(g, k=2)
        with pytest.raises(IdCapacityError):
            s.insert_vertex(1 << 30)

    def test_insert_sequence_stays_sound(self):
        g = erdos_renyi_graph(60, 300, seed=10)
        s = build_hybrid(g, k=2)
        rng = random.Random(0)
        vertices = sorted(g.vertices())
        for _ in range(120):
            u, v = rng.sample(vertices, 2)
            if g.add_edge(u, v):
                s.insert_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(s, g)


class TestMaintenanceDelete:
    def test_delete_restores_detection_for_decodable(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        g.remove_edge(5, 3)
        s.delete_edge(5, 3, g.sorted_neighbors)
        assert s.is_nonedge(5, 3)

    def test_delete_sequence_stays_sound(self):
        g = erdos_renyi_graph(60, 400, seed=11)
        s = build_hybrid(g, k=2)
        rng = random.Random(1)
        edges = list(g.edges())
        rng.shuffle(edges)
        for u, v in edges[:150]:
            g.remove_edge(u, v)
            s.delete_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(s, g)

    def test_delete_vertex(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        neighbors = list(g.sorted_neighbors(3))
        fetch = g.sorted_neighbors
        s.delete_vertex(3, fetch)
        g.remove_vertex(3)
        assert_no_false_positives(s, g)
        # 3 is gone from the index entirely.
        assert not s.is_nonedge(3, 1)
        assert neighbors  # sanity: it had neighbors to scrub

    def test_delete_missing_vertex_is_noop(self):
        g = paper_example_graph()
        s = build_hybrid(g, k=2)
        s.delete_vertex(999, g.sorted_neighbors)


class TestMixedWorkload:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_churn_soundness(self, seed):
        """Interleaved inserts/deletes never create a false positive."""
        g = erdos_renyi_graph(50, 250, seed=seed)
        s = build_hybrid(g, k=2)
        rng = random.Random(seed)
        vertices = sorted(g.vertices())
        for _ in range(200):
            u, v = rng.sample(vertices, 2)
            if rng.random() < 0.5:
                if g.add_edge(u, v):
                    s.insert_edge(u, v, g.sorted_neighbors)
            else:
                if g.has_edge(u, v):
                    # Remove from the index first: the fetch during
                    # reconstruction must not see the deleted edge.
                    g.remove_edge(u, v)
                    s.delete_edge(u, v, g.sorted_neighbors)
        assert_no_false_positives(s, g)

    def test_alpha_demotion_tracked(self):
        """Filling decodable codes eventually forces α demotions."""
        g = erdos_renyi_graph(40, 80, seed=3)
        s = build_hybrid(g, k=1, id_bits=8)
        rng = random.Random(3)
        vertices = sorted(g.vertices())
        for _ in range(400):
            u, v = rng.sample(vertices, 2)
            if g.add_edge(u, v):
                s.insert_edge(u, v, g.sorted_neighbors)
        assert s.stats.inserts_rebuild > 0
        assert_no_false_positives(s, g)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    k=st.sampled_from([1, 2, 4]),
    ops=st.lists(st.tuples(st.booleans(), st.integers(0, 10**6)),
                 max_size=40),
)
def test_hybrid_maintenance_property(seed, k, ops):
    """Arbitrary update sequences keep the NDF sound (no false positives)."""
    g = erdos_renyi_graph(30, 100, seed=seed)
    s = HybridVend(k=k)
    s.build(g)
    rng = random.Random(seed)
    vertices = sorted(g.vertices())
    for is_insert, op_seed in ops:
        op_rng = random.Random(op_seed)
        u, v = op_rng.sample(vertices, 2)
        if is_insert:
            if g.add_edge(u, v):
                s.insert_edge(u, v, g.sorted_neighbors)
        elif g.has_edge(u, v):
            g.remove_edge(u, v)
            s.delete_edge(u, v, g.sorted_neighbors)
    for u, v in all_pairs(g):
        if g.has_edge(u, v):
            assert not s.is_nonedge(u, v)
