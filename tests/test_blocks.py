"""Tests for block selection (the NT-size machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    BLOCK_EMPTY,
    BLOCK_LEFT,
    BLOCK_MIDDLE,
    BLOCK_RIGHT,
    BlockChoice,
    count_hash_misses,
    residue_counts_upto,
    select_block,
)


def brute_nt(neighbors, max_id, choice, slot_bits):
    """Reference NT-size: simulate the NE-test for every universe ID."""
    members = choice.members(neighbors)
    m = slot_bits(choice.size)
    slot = set()
    member_set = set(members)
    for x in neighbors:
        if x not in member_set:
            slot.add(x % m)
    passed = 0
    for probe in range(1, max_id + 1):
        if choice.kind == BLOCK_LEFT:
            in_range = probe <= members[-1]
        elif choice.kind == BLOCK_RIGHT:
            in_range = probe >= members[0]
        elif choice.kind == BLOCK_MIDDLE:
            in_range = members[0] <= probe <= members[-1]
        else:
            in_range = False
        if in_range:
            passed += probe not in member_set
        else:
            passed += (probe % m) not in slot
    return passed


class TestResidueCounts:
    def test_small_exact(self):
        # x in [1, 10] mod 4: residues 1,2,3,0,1,2,3,0,1,2
        assert residue_counts_upto(10, 4).tolist() == [2, 3, 3, 2]

    def test_zero_and_negative(self):
        assert residue_counts_upto(0, 5).tolist() == [0] * 5
        assert residue_counts_upto(-3, 5).tolist() == [0] * 5

    def test_sums_to_y(self):
        for y in (1, 7, 63, 64, 65, 1000):
            for m in (1, 2, 7, 64):
                assert residue_counts_upto(y, m).sum() == y


class TestCountHashMisses:
    def test_no_range(self):
        zero = np.array([True, False, True])
        # IDs 1..9 with residues mod 3; free residues are 0 and 2.
        expected = sum(1 for x in range(1, 10) if x % 3 in (0, 2))
        assert count_hash_misses(zero, 9) == expected

    def test_excluded_range(self):
        zero = np.array([True, True])
        # All residues free; exclude [3, 5] -> 10 - 3 = 7 IDs.
        assert count_hash_misses(zero, 10, 3, 5) == 7


class TestSelectBlock:
    def test_empty_neighbors_rejected(self):
        with pytest.raises(ValueError):
            select_block([], 100, lambda t: 32, 4)

    def test_infeasible_layout_rejected(self):
        with pytest.raises(ValueError):
            select_block([1, 2, 3], 100, lambda t: 0, 2)

    def test_single_neighbor_gives_empty_block(self):
        choice = select_block([5], 100, lambda t: 32, 4)
        assert choice.kind == BLOCK_EMPTY
        assert choice.size == 0

    def test_members_view(self):
        choice = BlockChoice(BLOCK_MIDDLE, 1, 2, 0)
        assert choice.members([10, 20, 30, 40]) == [20, 30]

    @pytest.mark.parametrize("budget", [None, 4])
    def test_nt_value_matches_brute_force(self, budget):
        neighbors = [3, 9, 17, 40, 41, 55, 90, 120]
        max_id = 150

        def slot_bits(t):
            return 64 - 8 * t

        choice = select_block(neighbors, max_id, slot_bits, max_size=4,
                              budget=budget)
        assert choice.nt_size == brute_nt(neighbors, max_id, choice,
                                          slot_bits)

    def test_exhaustive_is_optimal_over_all_windows(self):
        neighbors = [2, 5, 9, 21, 22, 23, 70]
        max_id = 100

        def slot_bits(t):
            return 40 - 6 * t

        best = select_block(neighbors, max_id, slot_bits, max_size=3,
                            budget=None)
        # Enumerate every candidate by hand and check none beats it.
        for size in range(0, 4):
            if slot_bits(size) < 1:
                continue
            if size == 0:
                starts = [0]
            else:
                starts = range(len(neighbors) - size + 1)
            for start in starts:
                if size == 0:
                    cand = BlockChoice(BLOCK_EMPTY, 0, 0, 0)
                elif start == 0:
                    cand = BlockChoice(BLOCK_LEFT, start, size, 0)
                elif start == len(neighbors) - size:
                    cand = BlockChoice(BLOCK_RIGHT, start, size, 0)
                else:
                    cand = BlockChoice(BLOCK_MIDDLE, start, size, 0)
                nt = brute_nt(neighbors, max_id, cand, slot_bits) \
                    if size else brute_nt(neighbors, max_id, cand, slot_bits)
                assert nt <= best.nt_size, (cand, nt, best)

    def test_shortlist_close_to_exhaustive(self):
        rng = np.random.default_rng(1)
        neighbors = sorted(rng.choice(
            np.arange(1, 2000), size=60, replace=False).tolist())

        def slot_bits(t):
            return 200 - 12 * t

        exact = select_block(neighbors, 2000, slot_bits, max_size=8,
                             budget=None)
        short = select_block(neighbors, 2000, slot_bits, max_size=8,
                             budget=8)
        assert short.nt_size >= 0.95 * exact.nt_size


@settings(max_examples=60, deadline=None)
@given(
    neighbors=st.sets(st.integers(1, 300), min_size=1, max_size=25),
    max_size=st.integers(1, 6),
    budget=st.sampled_from([None, 2, 8]),
)
def test_select_block_nt_always_exact(neighbors, max_size, budget):
    """Whatever window wins, its reported NT equals the brute force."""
    neighbors = sorted(neighbors)
    max_id = 300

    def slot_bits(t):
        return 48 - 7 * t

    choice = select_block(neighbors, max_id, slot_bits,
                          max_size=max_size, budget=budget)
    assert choice.nt_size == brute_nt(neighbors, max_id, choice, slot_bits)
